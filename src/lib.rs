//! # uxm — Managing Uncertainty of XML Schema Matching
//!
//! Umbrella crate re-exporting the full reproduction of Cheng, Gong, Cheung,
//! *"Managing Uncertainty of XML Schema Matching"*, ICDE 2010.
//!
//! The pipeline, end to end:
//!
//! 1. [`xml`] — XML schema and document trees (the substrate).
//! 2. [`matching`] — a COMA++-style matcher producing a scored
//!    correspondence set (a *schema matching*) between two schemas.
//! 3. [`assignment`] — turns a schema matching into its top-*h* possible
//!    mappings via ranked bipartite assignment (Murty/Pascoal), accelerated
//!    by connected-component partitioning (the paper's §V contribution).
//! 4. [`core`] — the *block tree* compressing the possible-mapping set, and
//!    probabilistic twig query (PTQ / top-k PTQ) evaluation over it.
//! 5. [`twig`] — the twig-pattern query engine used underneath PTQ.
//! 6. [`datagen`] — synthetic e-commerce datasets reproducing the paper's
//!    Table II workloads.
//!
//! ```
//! use uxm::prelude::*;
//!
//! // Two tiny purchase-order schemas.
//! let source = Schema::parse_outline("Order(Buyer(Name) Item(Price))").unwrap();
//! let target = Schema::parse_outline("PO(Vendor(ContactName) Line(UnitPrice))").unwrap();
//!
//! // Match them and derive possible mappings.
//! let matching = Matcher::default().match_schemas(&source, &target);
//! let mappings = PossibleMappings::top_h(&matching, 8);
//!
//! // Open a query session: the engine builds the block tree plus interned
//! // labels, relevance bitsets, and a rewrite cache — once.
//! let doc = Document::generate(&source, &DocGenConfig::small(), 7);
//! let engine = QueryEngine::build(mappings, doc, &BlockTreeConfig::default());
//!
//! // Ask typed queries through the one entry point; the planner picks
//! // the evaluation strategy from engine statistics.
//! let q = TwigPattern::parse("PO//ContactName").unwrap();
//! let answers = engine.run(&Query::ptq(q.clone())).unwrap();
//! for ans in &answers.answers {
//!     assert!(ans.probability > 0.0);
//! }
//! let top1 = engine.run(&Query::topk(q, 1)).unwrap();
//! assert!(top1.len() <= answers.len());
//! ```
//!
//! The legacy free functions (`ptq_basic`, `ptq_with_tree`, `topk_ptq`, …)
//! remain available as deprecated shims and return identical results;
//! `uxm::core::api` documents the migration.

pub use uxm_assignment as assignment;
pub use uxm_core as core;
pub use uxm_datagen as datagen;
pub use uxm_matching as matching;
pub use uxm_twig as twig;
pub use uxm_xml as xml;

/// One-stop imports for the common pipeline.
pub mod prelude {
    pub use uxm_assignment::{
        bipartite::Bipartite, murty::murty_top_h, partition::partition_top_h,
    };
    pub use uxm_core::{
        api::{Answer, EvaluatorHint, Granularity, Query, QueryOptions, QueryResponse},
        block_tree::{BlockTree, BlockTreeConfig},
        engine::QueryEngine,
        error::UxmError,
        keyword::{KeywordAnswer, KeywordError},
        mapping::{Mapping, PossibleMappings},
        ptq::PtqAnswer,
        registry::{BatchQuery, EngineRegistry, RegistryConfig},
        server::{Server, ServerConfig, ServerHandle},
    };
    // Legacy one-shot entry points (deprecated shims over the engine).
    #[allow(deprecated)]
    pub use uxm_core::{
        keyword::keyword_query, ptq::ptq_basic, ptq_tree::ptq_with_tree, topk::topk_ptq,
    };
    pub use uxm_datagen::datasets::{Dataset, DatasetId};
    pub use uxm_matching::{matcher::Matcher, SchemaMatching};
    pub use uxm_twig::pattern::TwigPattern;
    pub use uxm_xml::{docgen::DocGenConfig, document::Document, schema::Schema};
}
