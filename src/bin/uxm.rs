//! `uxm` — command-line front end for the uncertain-schema-matching
//! pipeline.
//!
//! ```text
//! uxm match     <source.outline> <target.outline> [--strategy c|f] [--threshold X]
//! uxm mappings  <source.outline> <target.outline> [--h N]
//! uxm query     <source.outline> <target.outline> <doc.xml> <twig> [--h N] [--k N] [--tau X] [--mode label|node]
//! uxm keyword   <source.outline> <target.outline> <doc.xml> <term...> [--h N] [--tau X]
//! uxm registry  save <name> <source.outline> <target.outline> <doc.xml> --dir D [--h N] [--tau X]
//! uxm registry  list --dir D
//! uxm batch     <requests.txt> --dir D [--budget BYTES]
//! uxm gen-doc   <schema.outline> [--nodes N] [--seed N]
//! uxm dataset   <D1..D10>
//! ```
//!
//! Schema files use the outline syntax (`Order(Buyer(Name) Item*(Price))`).
//! Query-serving commands build one [`QueryEngine`] session and evaluate
//! through it. The serving commands (`registry`, `batch`) manage engine
//! *snapshots* — one file per (schema pair, document) session — behind an
//! [`EngineRegistry`]: `registry save` persists a session, `batch` lazily
//! hydrates the engines a request file names and answers the whole batch
//! (concurrently when built with `--features parallel`).

use std::process::ExitCode;
use uxm::core::block_tree::BlockTreeConfig;
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::core::ptq::PtqResult;
use uxm::core::registry::{BatchQuery, EngineRegistry, RegistryConfig, Response};
use uxm::core::semantics::{expected_count, match_probabilities};
use uxm::core::stats::o_ratio;
use uxm::core::storage::decode_engine_snapshot_parts;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::matching::Matcher;
use uxm::twig::TwigPattern;
use uxm::xml::{parse_document, DocGenConfig, Document, Schema};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let result = match command.as_str() {
        "match" => cmd_match(&args[1..]),
        "mappings" => cmd_mappings(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "keyword" => cmd_keyword(&args[1..]),
        "registry" => cmd_registry(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "gen-doc" => cmd_gen_doc(&args[1..]),
        "dataset" => cmd_dataset(&args[1..]),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  uxm match    <source.outline> <target.outline> [--strategy c|f] [--threshold X]\n  \
         uxm mappings <source.outline> <target.outline> [--h N]\n  \
         uxm query    <source.outline> <target.outline> <doc.xml> <twig> [--h N] [--k N] [--tau X] [--mode label|node]\n  \
         uxm keyword  <source.outline> <target.outline> <doc.xml> <term...> [--h N] [--tau X]\n  \
         uxm registry save <name> <source.outline> <target.outline> <doc.xml> --dir D [--h N] [--tau X]\n  \
         uxm registry list --dir D\n  \
         uxm batch    <requests.txt> --dir D [--budget BYTES]\n  \
         uxm gen-doc  <schema.outline> [--nodes N] [--seed N]\n  \
         uxm dataset  <D1..D10>"
    );
    ExitCode::from(2)
}

/// `(name, value)` pairs collected from `--flag value` options.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Splits positional arguments from `--flag value` options.
fn parse_args(args: &[String]) -> Result<(Vec<&str>, Flags<'_>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

/// Loads a schema from an outline file, or from an XSD when the file ends
/// in `.xsd` (or its content starts with an XML prolog / `<`).
fn load_schema(path: &str) -> Result<Schema, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trimmed = text.trim();
    if path.ends_with(".xsd") || trimmed.starts_with('<') {
        Schema::from_xsd(trimmed).map_err(|e| format!("{path}: {e}"))
    } else {
        Schema::parse_outline(trimmed).map_err(|e| format!("{path}: {e}"))
    }
}

fn matcher_from(flags: &[(&str, &str)]) -> Result<Matcher, String> {
    let mut matcher = match flag(flags, "strategy") {
        Some("f") => Matcher::fragment(),
        Some("c") | None => Matcher::context(),
        Some(other) => return Err(format!("unknown strategy {other:?} (use c or f)")),
    };
    if let Some(t) = flag(flags, "threshold") {
        matcher.threshold = t.parse().map_err(|_| "bad --threshold".to_string())?;
    }
    Ok(matcher)
}

fn cmd_match(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt] = pos.as_slice() else {
        return Err("match needs <source.outline> <target.outline>".into());
    };
    let source = load_schema(src)?;
    let target = load_schema(tgt)?;
    let matching = matcher_from(&flags)?.match_schemas(&source, &target);
    println!(
        "{} correspondences between {} ({} elements) and {} ({} elements):",
        matching.capacity(),
        src,
        source.len(),
        tgt,
        target.len()
    );
    for c in matching.correspondences() {
        println!(
            "  {:<40} ~ {:<40} {:.2}",
            source.path(c.source),
            target.path(c.target),
            c.score
        );
    }
    Ok(())
}

fn cmd_mappings(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt] = pos.as_slice() else {
        return Err("mappings needs <source.outline> <target.outline>".into());
    };
    let h: usize = flag(&flags, "h")
        .map_or(Ok(10), str::parse)
        .map_err(|_| "bad --h")?;
    let source = load_schema(src)?;
    let target = load_schema(tgt)?;
    let matching = matcher_from(&flags)?.match_schemas(&source, &target);
    let pm = PossibleMappings::top_h(&matching, h);
    println!(
        "top-{} possible mappings (o-ratio {:.2}):",
        pm.len(),
        o_ratio(&pm)
    );
    for (id, m) in pm.iter() {
        println!("mapping {:?}: score {:.2}, p = {:.4}", id, m.score, m.prob);
        for &(s, t) in &m.pairs {
            println!("    {} ~ {}", source.path(s), target.path(t));
        }
    }
    Ok(())
}

/// Builds the query-session engine shared by `query` and `keyword`.
fn engine_from(
    flags: &[(&str, &str)],
    src: &str,
    tgt: &str,
    doc_path: &str,
) -> Result<QueryEngine, String> {
    let h: usize = flag(flags, "h")
        .map_or(Ok(50), str::parse)
        .map_err(|_| "bad --h")?;
    let tau: f64 = flag(flags, "tau")
        .map_or(Ok(0.2), str::parse)
        .map_err(|_| "bad --tau")?;
    let source = load_schema(src)?;
    let target = load_schema(tgt)?;
    let xml = std::fs::read_to_string(doc_path).map_err(|e| format!("{doc_path}: {e}"))?;
    let doc = parse_document(&xml).map_err(|e| format!("{doc_path}: {e}"))?;
    let matching = matcher_from(flags)?.match_schemas(&source, &target);
    let pm = PossibleMappings::top_h(&matching, h);
    Ok(QueryEngine::build(
        pm,
        doc,
        &BlockTreeConfig {
            tau,
            ..BlockTreeConfig::default()
        },
    ))
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt, doc_path, query] = pos.as_slice() else {
        return Err("query needs <source.outline> <target.outline> <doc.xml> <twig>".into());
    };
    let q = TwigPattern::parse(query).map_err(|e| format!("query: {e}"))?;
    let engine = engine_from(&flags, src, tgt, doc_path)?;

    let result: PtqResult = match (flag(&flags, "mode"), flag(&flags, "k")) {
        (Some("node"), Some(_)) => {
            return Err("--k with --mode node is not supported; drop one".into());
        }
        (Some("node"), None) => {
            // block-tree node-mode evaluation
            let r = engine.ptq_with_tree_nodes(&q);
            debug_assert_eq!(
                {
                    let mut a = engine.ptq_nodes(&q);
                    a.normalize();
                    a
                },
                {
                    let mut b = r.clone();
                    b.normalize();
                    b
                }
            );
            r
        }
        (_, Some(k)) => {
            let k: usize = k.parse().map_err(|_| "bad --k")?;
            engine.topk(&q, k)
        }
        _ => engine.ptq_with_tree(&q),
    };

    let doc = engine.document();
    println!(
        "query {q} over {} mappings: {} relevant, expected match count {:.2}",
        engine.mappings().len(),
        result.len(),
        expected_count(&result)
    );
    for (m, p) in match_probabilities(&result).into_iter().take(20) {
        let leaf = *m.nodes.last().expect("non-empty match");
        let text = doc.text(leaf).unwrap_or("");
        println!("  p = {:.3}  {} {}", p, doc.path(leaf), text);
    }
    Ok(())
}

fn cmd_keyword(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt, doc_path, terms @ ..] = pos.as_slice() else {
        return Err("keyword needs <source.outline> <target.outline> <doc.xml> <term...>".into());
    };
    let engine = engine_from(&flags, src, tgt, doc_path)?;
    let answers = engine.keyword(terms).map_err(|e| e.to_string())?;
    let doc = engine.document();
    println!(
        "keywords {:?} over {} mappings: {} relevant",
        terms,
        engine.mappings().len(),
        answers.len()
    );
    for a in answers.iter().take(20) {
        let paths: Vec<String> = a.slcas.iter().map(|&n| doc.path(n)).collect();
        println!("  p = {:.3}  {:?}", a.probability, paths);
    }
    Ok(())
}

/// `uxm registry save|list` — manage the on-disk engine-snapshot set.
fn cmd_registry(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_args(args)?;
    let dir = flag(&flags, "dir").ok_or("registry needs --dir <snapshot-dir>")?;
    match pos.as_slice() {
        ["save", name, src, tgt, doc_path] => {
            let registry = EngineRegistry::new().snapshot_dir(dir);
            let engine = registry.insert(*name, engine_from(&flags, src, tgt, doc_path)?);
            let path = registry.save(name).map_err(|e| e.to_string())?;
            println!(
                "saved {name:?} to {} ({} bytes on disk, ~{} KiB resident): \
                 |M|={}, {} doc nodes, {} c-blocks",
                path.display(),
                std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                engine.approx_bytes() / 1024,
                engine.mappings().len(),
                engine.document().len(),
                engine.tree().block_count(),
            );
            Ok(())
        }
        ["list"] => {
            let mut entries: Vec<_> = std::fs::read_dir(dir)
                .map_err(|e| format!("{dir}: {e}"))?
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "uxm"))
                .map(|e| e.path())
                .collect();
            entries.sort();
            println!("{} snapshot(s) in {dir}:", entries.len());
            for path in entries {
                let name = path.file_stem().unwrap_or_default().to_string_lossy();
                let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
                // Parts-level decode: listing should not pay for session
                // state (symbol tables, bitsets) it never queries.
                match decode_engine_snapshot_parts(&bytes) {
                    Ok(snap) => println!(
                        "  {name:<24} {:>9} bytes  |M|={:<4} doc={:<6} blocks={:<4} {} -> {}",
                        bytes.len(),
                        snap.mappings.len(),
                        snap.document.len(),
                        snap.tree.block_count(),
                        snap.mappings.source.name,
                        snap.mappings.target.name,
                    ),
                    Err(e) => println!("  {name:<24} UNREADABLE: {e}"),
                }
            }
            Ok(())
        }
        _ => Err(
            "registry needs: save <name> <source> <target> <doc.xml> --dir D, or list --dir D"
                .into(),
        ),
    }
}

/// Parses one request line of a batch file:
/// `<engine> ptq <twig>` | `<engine> basic <twig>` |
/// `<engine> topk <k> <twig>` | `<engine> keyword <term...>`.
fn parse_request_line(line: &str, lineno: usize) -> Result<BatchQuery, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}");
    let mut parts = line.split_whitespace();
    let engine = parts.next().ok_or_else(|| err("missing engine name"))?;
    let kind = parts.next().ok_or_else(|| err("missing request kind"))?;
    let parse_twig = |s: Option<&str>| -> Result<TwigPattern, String> {
        let s = s.ok_or_else(|| err("missing twig pattern"))?;
        TwigPattern::parse(s).map_err(|e| err(&format!("bad twig {s:?}: {e}")))
    };
    // Twig-shaped requests take exactly one pattern token; anything after
    // it is a mistake (e.g. a pattern accidentally split by a space), not
    // something to silently drop.
    let done = |q: BatchQuery, mut rest: std::str::SplitWhitespace<'_>| match rest.next() {
        None => Ok(q),
        Some(extra) => Err(err(&format!("unexpected trailing token {extra:?}"))),
    };
    match kind {
        "ptq" => {
            let q = parse_twig(parts.next())?;
            done(BatchQuery::ptq(engine, q), parts)
        }
        "basic" => {
            let q = parse_twig(parts.next())?;
            done(BatchQuery::basic(engine, q), parts)
        }
        "topk" => {
            let k: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("topk needs <k> <twig>"))?;
            let q = parse_twig(parts.next())?;
            done(BatchQuery::topk(engine, q, k), parts)
        }
        "keyword" => {
            let terms: Vec<String> = parts.map(str::to_string).collect();
            if terms.is_empty() {
                return Err(err("keyword needs at least one term"));
            }
            Ok(BatchQuery::keyword(engine, terms))
        }
        other => Err(err(&format!(
            "unknown request kind {other:?} (ptq | basic | topk | keyword)"
        ))),
    }
}

/// `uxm batch` — answer a request file against a snapshot directory.
fn cmd_batch(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_args(args)?;
    let [requests_path] = pos.as_slice() else {
        return Err("batch needs <requests.txt> --dir D".into());
    };
    let dir = flag(&flags, "dir").ok_or("batch needs --dir <snapshot-dir>")?;
    let budget: usize = flag(&flags, "budget")
        .map_or(Ok(0), str::parse)
        .map_err(|_| "bad --budget")?;
    let text =
        std::fs::read_to_string(requests_path).map_err(|e| format!("{requests_path}: {e}"))?;
    let queries = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|(i, l)| parse_request_line(l, i + 1))
        .collect::<Result<Vec<_>, _>>()?;

    let registry = EngineRegistry::with_config(RegistryConfig {
        memory_budget: budget,
    })
    .snapshot_dir(dir);
    let start = std::time::Instant::now();
    let answers = registry.batch(&queries);
    let elapsed = start.elapsed().as_secs_f64();

    let mut failures = 0usize;
    for (q, a) in queries.iter().zip(&answers) {
        match a {
            Ok(Response::Ptq(r)) => println!(
                "{:<16} {} -> {} answers, expected count {:.2}",
                q.engine,
                q.request,
                r.len(),
                expected_count(r)
            ),
            Ok(Response::Keyword(ans)) => {
                println!("{:<16} {} -> {} answers", q.engine, q.request, ans.len())
            }
            Err(e) => {
                failures += 1;
                println!("{:<16} {} -> error: {e}", q.engine, q.request);
            }
        }
    }
    println!(
        "{} request(s) in {elapsed:.3}s ({:.0} req/s), {} engine(s) resident (~{} KiB), {failures} failed",
        queries.len(),
        queries.len() as f64 / elapsed.max(1e-9),
        registry.len(),
        registry.resident_bytes() / 1024,
    );
    if failures > 0 {
        return Err(format!("{failures} request(s) failed"));
    }
    Ok(())
}

fn cmd_gen_doc(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_args(args)?;
    let [schema_path] = pos.as_slice() else {
        return Err("gen-doc needs <schema.outline>".into());
    };
    let nodes: usize = flag(&flags, "nodes")
        .map_or(Ok(200), str::parse)
        .map_err(|_| "bad --nodes")?;
    let seed: u64 = flag(&flags, "seed")
        .map_or(Ok(42), str::parse)
        .map_err(|_| "bad --seed")?;
    let schema = load_schema(schema_path)?;
    let doc = Document::generate(
        &schema,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 4,
            text_prob: 0.9,
        },
        seed,
    );
    println!("{}", uxm::xml::writer::to_xml_pretty(&doc, 2));
    Ok(())
}

fn cmd_dataset(args: &[String]) -> Result<(), String> {
    let (pos, _) = parse_args(args)?;
    let [name] = pos.as_slice() else {
        return Err("dataset needs an id (D1..D10)".into());
    };
    let id = DatasetId::all()
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let d = Dataset::load(id);
    let (s, t, cap, o) = id.paper_row();
    println!("{}: |S|={s} |T|={t}", id.name());
    println!("  paper:    capacity {cap}, o-ratio {o:.2}");
    let pm = PossibleMappings::top_h(&d.matching, 100);
    println!(
        "  measured: capacity {}, o-ratio {:.2} (|M|=100)",
        d.capacity(),
        o_ratio(&pm)
    );
    Ok(())
}
