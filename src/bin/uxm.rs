//! `uxm` — command-line front end for the uncertain-schema-matching
//! pipeline.
//!
//! ```text
//! uxm match     <source.outline> <target.outline> [--strategy c|f] [--threshold X]
//! uxm mappings  <source.outline> <target.outline> [--h N]
//! uxm query     <source.outline> <target.outline> <doc.xml> <twig>
//!               [--h N] [--k N] [--agg count|sum|min|max] [--tau X]
//!               [--mode label|node] [--hint auto|naive|block-tree|compiled]
//!               [--min-p X] [--granularity mapping|distinct] [--json]
//! uxm explain   <source.outline> <target.outline> <doc.xml> <twig>
//!               [--h N] [--k N] [--tau X] [--mode label|node]
//!               [--hint auto|naive|block-tree|compiled] [--json]
//! uxm keyword   <source.outline> <target.outline> <doc.xml> <term...> [--h N] [--tau X] [--json]
//! uxm registry  save <name> <source.outline> <target.outline> <doc.xml> --dir D [--h N] [--tau X]
//!               [--snapshot-version 1|2|3]
//! uxm registry  list --dir D
//! uxm stats     <engine> --dir D
//! uxm batch     <requests.txt> --dir D [--budget BYTES] [--json]
//! uxm serve     --dir D [--addr IP:PORT] [--workers N] [--budget BYTES] [--queue N]
//!               [--per-client N] [--retry-after-ms MS] [--keep-alive-ms MS] [--thrash N]
//!               [--shards N]
//! uxm gen-doc   <schema.outline> [--nodes N] [--seed N]
//! uxm dataset   <D1..D10>
//! ```
//!
//! Schema files use the outline syntax (`Order(Buyer(Name) Item*(Price))`).
//! Every query-serving command speaks the unified query surface of
//! [`uxm::core::api`]: arguments build a typed [`Query`], evaluation goes
//! through [`QueryEngine::run`], failures are [`UxmError`]s reported with
//! a nonzero exit code, and `--json` emits the canonical wire format —
//! the same bytes the registry consumes. `uxm explain` builds the same
//! query but prints the plan and the compiled bytecode program instead
//! of evaluating it (see `docs/execution.md`). `uxm batch` files carry one
//! request per line, either as canonical JSON
//! (`{"engine":...,"query":{...}}`, see [`BatchQuery::to_json`]) or in
//! the legacy text form (`<engine> ptq <twig>` …). `uxm serve` puts the
//! same snapshot directory behind the threaded HTTP/JSON server of
//! [`uxm::core::server`] (see `docs/serving.md`).

use std::process::ExitCode;
use uxm::core::api::{EvaluatorHint, Granularity, Query};
use uxm::core::block_tree::BlockTreeConfig;
use uxm::core::engine::QueryEngine;
use uxm::core::error::UxmError;
use uxm::core::mapping::PossibleMappings;
use uxm::core::registry::{BatchQuery, EngineRegistry, RegistryConfig};
use uxm::core::router::{Router, RouterConfig};
use uxm::core::server::{Server, ServerConfig};
use uxm::core::stats::o_ratio;
use uxm::core::storage::{decode_engine_snapshot, decode_engine_snapshot_parts, snapshot_version};
use uxm::core::AggFunc;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::matching::Matcher;
use uxm::twig::TwigPattern;
use uxm::xml::{parse_document, DocGenConfig, Document, Schema};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "match" => cmd_match(&args[1..]),
        "mappings" => cmd_mappings(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "keyword" => cmd_keyword(&args[1..]),
        "registry" => cmd_registry(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "gen-doc" => cmd_gen_doc(&args[1..]),
        "dataset" => cmd_dataset(&args[1..]),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(UxmError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, UxmError::Usage(_)) {
                usage();
            }
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage:\n  uxm match    <source.outline> <target.outline> [--strategy c|f] [--threshold X]\n  \
         uxm mappings <source.outline> <target.outline> [--h N]\n  \
         uxm query    <source.outline> <target.outline> <doc.xml> <twig> [--h N] [--k N] [--tau X]\n               \
         [--agg count|sum|min|max] [--mode label|node] [--hint auto|naive|block-tree|compiled]\n               \
         [--min-p X] [--granularity mapping|distinct] [--json]\n  \
         uxm explain  <source.outline> <target.outline> <doc.xml> <twig> [--h N] [--k N] [--tau X]\n               \
         [--mode label|node] [--hint auto|naive|block-tree|compiled] [--json]\n  \
         uxm keyword  <source.outline> <target.outline> <doc.xml> <term...> [--h N] [--tau X] [--json]\n  \
         uxm registry save <name> <source.outline> <target.outline> <doc.xml> --dir D [--h N] [--tau X]\n               \
         [--snapshot-version 1|2|3]\n  \
         uxm registry list --dir D\n  \
         uxm stats    <engine> --dir D\n  \
         uxm batch    <requests.txt> --dir D [--budget BYTES] [--json]\n  \
         uxm serve    --dir D [--addr IP:PORT] [--workers N] [--budget BYTES] [--queue N]\n               \
         [--per-client N] [--retry-after-ms MS] [--keep-alive-ms MS] [--thrash N] [--shards N]\n  \
         uxm gen-doc  <schema.outline> [--nodes N] [--seed N]\n  \
         uxm dataset  <D1..D10>"
    );
}

/// `(name, value)` pairs collected from `--flag value` options.
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Flags that take no value.
const BOOL_FLAGS: [&str; 1] = ["json"];

/// Splits positional arguments from `--flag value` options (boolean
/// flags record `"true"` without consuming a value).
fn parse_args(args: &[String]) -> Result<(Vec<&str>, Flags<'_>), UxmError> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.push((name, "true"));
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| UxmError::Usage(format!("--{name} needs a value")))?;
            flags.push((name, value.as_str()));
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

/// Parses `--name` as a `T`, with a default when absent.
fn parse_flag<T: std::str::FromStr>(
    flags: &[(&str, &str)],
    name: &str,
    default: T,
) -> Result<T, UxmError> {
    match flag(flags, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| UxmError::Usage(format!("bad --{name} value {v:?}"))),
    }
}

/// Loads a schema from an outline file, or from an XSD when the file ends
/// in `.xsd` (or its content starts with an XML prolog / `<`).
fn load_schema(path: &str) -> Result<Schema, UxmError> {
    let text = std::fs::read_to_string(path).map_err(|e| UxmError::io(path, e))?;
    let trimmed = text.trim();
    if path.ends_with(".xsd") || trimmed.starts_with('<') {
        Schema::from_xsd(trimmed).map_err(|e| UxmError::Input(format!("{path}: {e}")))
    } else {
        Schema::parse_outline(trimmed).map_err(|e| UxmError::Input(format!("{path}: {e}")))
    }
}

fn matcher_from(flags: &[(&str, &str)]) -> Result<Matcher, UxmError> {
    let mut matcher = match flag(flags, "strategy") {
        Some("f") => Matcher::fragment(),
        Some("c") | None => Matcher::context(),
        Some(other) => {
            return Err(UxmError::Usage(format!(
                "unknown strategy {other:?} (use c or f)"
            )))
        }
    };
    matcher.threshold = parse_flag(flags, "threshold", matcher.threshold)?;
    Ok(matcher)
}

fn cmd_match(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt] = pos.as_slice() else {
        return Err(UxmError::Usage(
            "match needs <source.outline> <target.outline>".into(),
        ));
    };
    let source = load_schema(src)?;
    let target = load_schema(tgt)?;
    let matching = matcher_from(&flags)?.match_schemas(&source, &target);
    println!(
        "{} correspondences between {} ({} elements) and {} ({} elements):",
        matching.capacity(),
        src,
        source.len(),
        tgt,
        target.len()
    );
    for c in matching.correspondences() {
        println!(
            "  {:<40} ~ {:<40} {:.2}",
            source.path(c.source),
            target.path(c.target),
            c.score
        );
    }
    Ok(())
}

fn cmd_mappings(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt] = pos.as_slice() else {
        return Err(UxmError::Usage(
            "mappings needs <source.outline> <target.outline>".into(),
        ));
    };
    let h: usize = parse_flag(&flags, "h", 10)?;
    let source = load_schema(src)?;
    let target = load_schema(tgt)?;
    let matching = matcher_from(&flags)?.match_schemas(&source, &target);
    let pm = PossibleMappings::top_h(&matching, h);
    println!(
        "top-{} possible mappings (o-ratio {:.2}):",
        pm.len(),
        o_ratio(&pm)
    );
    for (id, m) in pm.iter() {
        println!("mapping {:?}: score {:.2}, p = {:.4}", id, m.score, m.prob);
        for &(s, t) in m.pairs {
            println!("    {} ~ {}", source.path(s), target.path(t));
        }
    }
    Ok(())
}

/// Builds the query-session engine shared by `query` and `keyword`.
fn engine_from(
    flags: &[(&str, &str)],
    src: &str,
    tgt: &str,
    doc_path: &str,
) -> Result<QueryEngine, UxmError> {
    let h: usize = parse_flag(flags, "h", 50)?;
    let tau: f64 = parse_flag(flags, "tau", 0.2)?;
    let source = load_schema(src)?;
    let target = load_schema(tgt)?;
    let xml = std::fs::read_to_string(doc_path).map_err(|e| UxmError::io(doc_path, e))?;
    let doc = parse_document(&xml).map_err(|e| UxmError::Input(format!("{doc_path}: {e}")))?;
    let matching = matcher_from(flags)?.match_schemas(&source, &target);
    let pm = PossibleMappings::top_h(&matching, h);
    Ok(QueryEngine::build(
        pm,
        doc,
        &BlockTreeConfig {
            tau,
            ..BlockTreeConfig::default()
        },
    ))
}

/// The shared `--hint` / `--min-p` / `--granularity` option handling.
fn apply_options(mut query: Query, flags: &[(&str, &str)]) -> Result<Query, UxmError> {
    match flag(flags, "hint") {
        None | Some("auto") => {}
        Some("naive") => query = query.with_evaluator(EvaluatorHint::Naive),
        Some("block-tree") | Some("tree") => query = query.with_evaluator(EvaluatorHint::BlockTree),
        Some("compiled") => query = query.with_evaluator(EvaluatorHint::Compiled),
        Some(other) => {
            return Err(UxmError::Usage(format!(
                "unknown hint {other:?} (auto | naive | block-tree | compiled)"
            )))
        }
    }
    match flag(flags, "granularity") {
        None | Some("mapping") => {}
        Some("distinct") => query = query.with_granularity(Granularity::Distinct),
        Some(other) => {
            return Err(UxmError::Usage(format!(
                "unknown granularity {other:?} (mapping | distinct)"
            )))
        }
    }
    if let Some(p) = flag(flags, "min-p") {
        let p: f64 = p
            .parse()
            .map_err(|_| UxmError::Usage(format!("bad --min-p value {p:?}")))?;
        query = query.with_min_probability(p);
    }
    Ok(query)
}

/// Builds the twig-shaped query `query` and `explain` share from the
/// `--mode` / `--k` / `--agg` flags.
fn twig_query_from(pattern: TwigPattern, flags: &[(&str, &str)]) -> Result<Query, UxmError> {
    if let Some(name) = flag(flags, "agg") {
        let func = AggFunc::from_wire(name).ok_or_else(|| {
            UxmError::Usage(format!(
                "bad --agg value {name:?} (count | sum | min | max)"
            ))
        })?;
        if flag(flags, "k").is_some() || flag(flags, "mode").is_some() {
            return Err(UxmError::Usage(
                "--agg cannot be combined with --k or --mode".into(),
            ));
        }
        return Ok(Query::aggregate(pattern, func));
    }
    match (flag(flags, "mode"), flag(flags, "k")) {
        (Some("node"), Some(_)) => Err(UxmError::Usage(
            "--k with --mode node is not supported; drop one".into(),
        )),
        (Some("node"), None) => Ok(Query::ptq_nodes(pattern)),
        (Some("label") | None, Some(k)) => {
            let k: usize = k
                .parse()
                .map_err(|_| UxmError::Usage(format!("bad --k value {k:?}")))?;
            Ok(Query::topk(pattern, k))
        }
        (Some("label") | None, None) => Ok(Query::ptq(pattern)),
        (Some(other), _) => Err(UxmError::Usage(format!(
            "unknown mode {other:?} (label | node)"
        ))),
    }
}

fn cmd_query(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt, doc_path, query_text] = pos.as_slice() else {
        return Err(UxmError::Usage(
            "query needs <source.outline> <target.outline> <doc.xml> <twig>".into(),
        ));
    };
    let pattern = TwigPattern::parse(query_text)?;
    let query = apply_options(twig_query_from(pattern, &flags)?, &flags)?;
    let engine = engine_from(&flags, src, tgt, doc_path)?;
    let response = engine.run(&query)?;

    if flag(&flags, "json").is_some() {
        println!("{}", response.to_json_string());
        return Ok(());
    }
    let doc = engine.document();
    if let Some(agg) = &response.aggregate {
        let show = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |v| format!("{v}"));
        println!(
            "{query} over {} mappings: marginal {} ({} row(s), plan {} ({}))",
            engine.mappings().len(),
            show(agg.marginal),
            agg.rows.len(),
            response.stats.plan.evaluator,
            response.stats.plan.reason,
        );
        for r in &agg.rows {
            println!(
                "  mapping {:<4} p = {:.3}  {}",
                r.mapping.0,
                r.probability,
                show(r.value)
            );
        }
        return Ok(());
    }
    println!(
        "{query} over {} mappings: {} answer(s) ({} relevant), plan {} ({}), \
         expected match count {:.2}",
        engine.mappings().len(),
        response.len(),
        response.stats.relevant,
        response.stats.plan.evaluator,
        response.stats.plan.reason,
        response.expected_count()
    );
    for (m, p) in response.match_probabilities().into_iter().take(20) {
        let Some(&leaf) = m.nodes.last() else {
            continue;
        };
        let text = doc.text(leaf).unwrap_or("");
        println!("  p = {:.3}  {} {}", p, doc.path(leaf), text);
    }
    Ok(())
}

/// `uxm explain` — print the plan and the compiled bytecode program for
/// a query without running it (see `docs/execution.md`).
fn cmd_explain(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt, doc_path, query_text] = pos.as_slice() else {
        return Err(UxmError::Usage(
            "explain needs <source.outline> <target.outline> <doc.xml> <twig>".into(),
        ));
    };
    let pattern = TwigPattern::parse(query_text)?;
    let query = apply_options(twig_query_from(pattern, &flags)?, &flags)?;
    let engine = engine_from(&flags, src, tgt, doc_path)?;
    let explain = engine.explain(&query)?;
    if flag(&flags, "json").is_some() {
        println!("{}", explain.to_json());
        return Ok(());
    }
    println!("{query}");
    print!("{explain}");
    Ok(())
}

fn cmd_keyword(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let [src, tgt, doc_path, terms @ ..] = pos.as_slice() else {
        return Err(UxmError::Usage(
            "keyword needs <source.outline> <target.outline> <doc.xml> <term...>".into(),
        ));
    };
    let query = apply_options(
        Query::keyword(terms.iter().map(|t| t.to_string()).collect()),
        &flags,
    )?;
    let engine = engine_from(&flags, src, tgt, doc_path)?;
    let response = engine.run(&query)?;
    if flag(&flags, "json").is_some() {
        println!("{}", response.to_json_string());
        return Ok(());
    }
    let doc = engine.document();
    println!(
        "keywords {:?} over {} mappings: {} answer(s)",
        terms,
        engine.mappings().len(),
        response.len()
    );
    for a in response.answers.iter().take(20) {
        let paths: Vec<String> = a
            .matches
            .iter()
            .filter_map(|m| m.nodes.first().map(|&n| doc.path(n)))
            .collect();
        println!("  p = {:.3}  {:?}", a.probability, paths);
    }
    Ok(())
}

/// `uxm registry save|list` — manage the on-disk engine-snapshot set.
fn cmd_registry(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let dir = flag(&flags, "dir")
        .ok_or_else(|| UxmError::Usage("registry needs --dir <snapshot-dir>".into()))?;
    match pos.as_slice() {
        ["save", name, src, tgt, doc_path] => {
            let version = match flag(&flags, "snapshot-version") {
                Some(v) => v.parse::<u64>().map_err(|_| {
                    UxmError::Usage(format!("--snapshot-version must be 1, 2, or 3, got {v:?}"))
                })?,
                None => uxm::core::storage::SNAPSHOT_VERSION,
            };
            let registry = EngineRegistry::new().snapshot_dir(dir);
            let engine = registry.insert(*name, engine_from(&flags, src, tgt, doc_path)?);
            let path = registry.save_as(name, version)?;
            println!(
                "saved {name:?} to {} (snapshot v{version}, {} bytes on disk, ~{} KiB resident): \
                 |M|={}, {} doc nodes, {} c-blocks",
                path.display(),
                std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
                engine.approx_bytes() / 1024,
                engine.mappings().len(),
                engine.document().len(),
                engine.tree().block_count(),
            );
            Ok(())
        }
        ["list"] => {
            let mut entries: Vec<_> = std::fs::read_dir(dir)
                .map_err(|e| UxmError::io(dir, e))?
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "uxm"))
                .map(|e| e.path())
                .collect();
            entries.sort();
            println!("{} snapshot(s) in {dir}:", entries.len());
            for path in entries {
                let name = path.file_stem().unwrap_or_default().to_string_lossy();
                let bytes = std::fs::read(&path).map_err(|e| UxmError::io(path.display(), e))?;
                // Parts-level decode: listing should not pay for session
                // state (symbol tables, bitsets) it never queries.
                match decode_engine_snapshot_parts(&bytes) {
                    Ok(snap) => println!(
                        "  {name:<24} {:>9} bytes  |M|={:<4} doc={:<6} blocks={:<4} {} -> {}",
                        bytes.len(),
                        snap.mappings.len(),
                        snap.document.len(),
                        snap.tree.block_count(),
                        snap.mappings.source.name,
                        snap.mappings.target.name,
                    ),
                    Err(e) => println!("  {name:<24} UNREADABLE: {e}"),
                }
            }
            Ok(())
        }
        _ => Err(UxmError::Usage(
            "registry needs: save <name> <source> <target> <doc.xml> --dir D \
             [--snapshot-version 1|2|3], or list --dir D"
                .into(),
        )),
    }
}

/// `uxm stats <engine> --dir D` — decode one snapshot and report the
/// resident per-component footprint (the registry's LRU accounting).
fn cmd_stats(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let [name] = pos.as_slice() else {
        return Err(UxmError::Usage("stats needs <engine> --dir D".into()));
    };
    let dir = flag(&flags, "dir")
        .ok_or_else(|| UxmError::Usage("stats needs --dir <snapshot-dir>".into()))?;
    let path = std::path::Path::new(dir).join(format!("{name}.uxm"));
    let bytes = std::fs::read(&path).map_err(|e| UxmError::io(path.display(), e))?;
    let version = snapshot_version(&bytes)?;
    let start = std::time::Instant::now();
    let engine = decode_engine_snapshot(&bytes)?;
    let hydrate_us = start.elapsed().as_micros();
    let fp = engine.footprint();
    let total = fp.total().max(1);
    println!(
        "{name}: snapshot v{version}, {} bytes on disk -> {} bytes resident ({:.2}x), \
         cold hydration {:.2} ms",
        bytes.len(),
        fp.total(),
        fp.total() as f64 / bytes.len().max(1) as f64,
        hydrate_us as f64 / 1000.0,
    );
    println!(
        "  |M| = {} ({} pairs), {} doc nodes ({} labels, {} text bytes, {} attr bytes), {} c-blocks",
        engine.mappings().len(),
        engine.mappings().total_pairs(),
        engine.document().len(),
        engine.document().label_count(),
        engine.document().text_bytes(),
        engine.document().attr_bytes(),
        engine.tree().block_count(),
    );
    let row = |label: &str, bytes: usize| {
        println!(
            "  {label:<12} {bytes:>10} B  {:>5.1}%",
            100.0 * bytes as f64 / total as f64
        );
    };
    row("document", fp.document);
    row("mappings", fp.mappings);
    row("block-tree", fp.block_tree);
    row("schemas", fp.schemas);
    row("session", fp.session);
    row("path-index", fp.path_index);
    println!("  {:<12} {:>10} B", "total", fp.total());
    Ok(())
}

/// Parses one legacy text request line of a batch file:
/// `<engine> ptq <twig>` | `<engine> basic <twig>` |
/// `<engine> topk <k> <twig>` | `<engine> keyword <term...>`.
/// JSON lines (starting with `{`) are handled by
/// [`BatchQuery::from_json_str`] instead.
fn parse_request_line(line: &str, lineno: usize) -> Result<BatchQuery, UxmError> {
    let err = |msg: String| UxmError::Usage(format!("line {lineno}: {msg}"));
    let mut parts = line.split_whitespace();
    let engine = parts
        .next()
        .ok_or_else(|| err("missing engine name".into()))?;
    let kind = parts
        .next()
        .ok_or_else(|| err("missing request kind".into()))?;
    let parse_twig = |s: Option<&str>| -> Result<TwigPattern, UxmError> {
        let s = s.ok_or_else(|| err("missing twig pattern".into()))?;
        TwigPattern::parse(s).map_err(|e| err(format!("bad twig {s:?}: {e}")))
    };
    // Twig-shaped requests take exactly one pattern token; anything after
    // it is a mistake (e.g. a pattern accidentally split by a space), not
    // something to silently drop.
    let done = |q: BatchQuery, mut rest: std::str::SplitWhitespace<'_>| match rest.next() {
        None => Ok(q),
        Some(extra) => Err(err(format!("unexpected trailing token {extra:?}"))),
    };
    match kind {
        "ptq" => {
            let q = parse_twig(parts.next())?;
            done(BatchQuery::ptq(engine, q), parts)
        }
        "basic" => {
            let q = parse_twig(parts.next())?;
            done(BatchQuery::basic(engine, q), parts)
        }
        "topk" => {
            let k: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("topk needs <k> <twig>".into()))?;
            let q = parse_twig(parts.next())?;
            done(BatchQuery::topk(engine, q, k), parts)
        }
        "keyword" => {
            let terms: Vec<String> = parts.map(str::to_string).collect();
            if terms.is_empty() {
                return Err(err("keyword needs at least one term".into()));
            }
            Ok(BatchQuery::keyword(engine, terms))
        }
        other => Err(err(format!(
            "unknown request kind {other:?} (ptq | basic | topk | keyword)"
        ))),
    }
}

/// `uxm batch` — answer a request file against a snapshot directory.
fn cmd_batch(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let [requests_path] = pos.as_slice() else {
        return Err(UxmError::Usage("batch needs <requests.txt> --dir D".into()));
    };
    let dir = flag(&flags, "dir")
        .ok_or_else(|| UxmError::Usage("batch needs --dir <snapshot-dir>".into()))?;
    let budget: usize = parse_flag(&flags, "budget", 0)?;
    let as_json = flag(&flags, "json").is_some();
    let text =
        std::fs::read_to_string(requests_path).map_err(|e| UxmError::io(requests_path, e))?;
    let queries = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|(i, l)| {
            let line = l.trim();
            if line.starts_with('{') {
                BatchQuery::from_json_str(line).map_err(|e| match e {
                    // Prefix the line number inside the variant so the
                    // "wire format:" display prefix is not duplicated.
                    UxmError::Json(msg) => UxmError::Json(format!("line {}: {msg}", i + 1)),
                    other => UxmError::Json(format!("line {}: {other}", i + 1)),
                })
            } else {
                parse_request_line(line, i + 1)
            }
        })
        .collect::<Result<Vec<_>, _>>()?;

    let registry = EngineRegistry::with_config(RegistryConfig {
        memory_budget: budget,
        ..RegistryConfig::default()
    })
    .snapshot_dir(dir);
    let start = std::time::Instant::now();
    let answers = registry.batch(&queries);
    let elapsed = start.elapsed().as_secs_f64();

    let mut failures = 0usize;
    for (q, a) in queries.iter().zip(&answers) {
        match a {
            Ok(response) if as_json => {
                println!("{}", response.to_json_string());
            }
            Ok(response) => println!(
                "{:<16} {} -> {} answer(s), plan {}, expected count {:.2}",
                q.engine,
                q.query,
                response.len(),
                response.stats.plan.evaluator,
                response.expected_count()
            ),
            Err(e) => {
                failures += 1;
                if as_json {
                    let obj = uxm::core::json::Json::Obj(vec![(
                        "error".to_string(),
                        uxm::core::json::Json::Str(e.to_string()),
                    )]);
                    println!("{obj}");
                } else {
                    println!("{:<16} {} -> error: {e}", q.engine, q.query);
                }
            }
        }
    }
    if !as_json {
        println!(
            "{} request(s) in {elapsed:.3}s ({:.0} req/s), {} engine(s) resident (~{} KiB), {failures} failed",
            queries.len(),
            queries.len() as f64 / elapsed.max(1e-9),
            registry.len(),
            registry.resident_bytes() / 1024,
        );
    }
    if failures > 0 {
        return Err(UxmError::Batch { failed: failures });
    }
    Ok(())
}

/// `uxm serve` — the threaded HTTP/JSON query server over a snapshot
/// directory (see `uxm::core::server` and `docs/serving.md`). Engines
/// hydrate lazily on first request; the process serves until killed.
/// With `--shards N` the same directory is served by N shard
/// registries behind a consistent-hash router (see `docs/sharding.md`);
/// `--budget` is then the cluster total, split evenly per shard.
fn cmd_serve(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    if let Some(extra) = pos.first() {
        return Err(UxmError::Usage(format!(
            "serve takes no positional arguments, got {extra:?}"
        )));
    }
    let dir = flag(&flags, "dir")
        .ok_or_else(|| UxmError::Usage("serve needs --dir <snapshot-dir>".into()))?;
    let addr = flag(&flags, "addr").unwrap_or("127.0.0.1:8080");
    let workers: usize = parse_flag(&flags, "workers", 0)?;
    let budget: usize = parse_flag(&flags, "budget", 0)?;
    let defaults = ServerConfig::default();
    let queue: usize = parse_flag(&flags, "queue", defaults.queue_depth)?;
    let per_client: usize = parse_flag(&flags, "per-client", defaults.max_conns_per_client)?;
    let retry_after_ms: u64 = parse_flag(&flags, "retry-after-ms", defaults.retry_after_ms)?;
    let keep_alive_ms: u64 = parse_flag(
        &flags,
        "keep-alive-ms",
        defaults.keep_alive_timeout.as_millis() as u64,
    )?;
    let thrash: usize = parse_flag(&flags, "thrash", 0)?;
    let shards: usize = parse_flag(&flags, "shards", 0)?;

    let config = ServerConfig {
        workers,
        queue_depth: queue,
        max_conns_per_client: per_client,
        retry_after_ms,
        keep_alive_timeout: std::time::Duration::from_millis(keep_alive_ms),
        ..ServerConfig::default()
    };
    let registry_config = |memory_budget| RegistryConfig {
        memory_budget,
        thrash_evictions: thrash,
        ..RegistryConfig::default()
    };
    let banner = |local: std::net::SocketAddr, snapshots: &[String], shard_note: &str| {
        println!(
            "uxm serve on http://{local} — {} worker(s), {} snapshot(s) in {dir}{}{shard_note}",
            config.effective_workers(),
            snapshots.len(),
            if budget > 0 {
                format!(", budget {budget} bytes")
            } else {
                String::new()
            }
        );
        for name in snapshots {
            println!("  {name}");
        }
        println!(
            "admission: queue {queue}, per-client cap {per_client}, retry-after {retry_after_ms}ms{}",
            if thrash > 0 {
                format!(", thrash gate at {thrash} evictions")
            } else {
                String::new()
            }
        );
    };

    if shards > 0 {
        // Sharded: N registries behind the consistent-hash router. The
        // budget is the cluster total — each shard gets an even split.
        let router = Router::start(
            dir,
            RouterConfig {
                shards,
                registry: registry_config(budget / shards),
                shard_server: ServerConfig {
                    workers: 2,
                    queue_depth: queue,
                    max_conns_per_client: per_client,
                    retry_after_ms,
                    ..ServerConfig::default()
                },
                ..RouterConfig::default()
            },
        )?;
        let front = router.bind(addr, config.clone())?;
        let local = front.local_addr();
        let snapshots = router.known_names();
        banner(local, &snapshots, &format!(", {shards} shard(s)"));
        for (id, shard_addr) in router.shard_addrs() {
            println!("  shard {id} on {shard_addr}");
        }
        println!(
            "routes: POST /query/<engine>  POST /batch  POST /topk  POST /aggregate  GET /engines  GET /stats  GET /shards  GET /healthz"
        );
        front.start().wait();
        return Ok(());
    }

    let registry =
        std::sync::Arc::new(EngineRegistry::with_config(registry_config(budget)).snapshot_dir(dir));
    let snapshots = registry.snapshot_names();
    let server = Server::bind(std::sync::Arc::clone(&registry), addr, config.clone())?;
    let local = server.local_addr();
    banner(local, &snapshots, "");
    println!(
        "routes: POST /query/<engine>  POST /batch  POST /topk  POST /aggregate  GET /engines  GET /stats  GET /healthz"
    );
    server.start().wait();
    Ok(())
}

fn cmd_gen_doc(args: &[String]) -> Result<(), UxmError> {
    let (pos, flags) = parse_args(args)?;
    let [schema_path] = pos.as_slice() else {
        return Err(UxmError::Usage("gen-doc needs <schema.outline>".into()));
    };
    let nodes: usize = parse_flag(&flags, "nodes", 200)?;
    let seed: u64 = parse_flag(&flags, "seed", 42)?;
    let schema = load_schema(schema_path)?;
    let doc = Document::generate(
        &schema,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 4,
            text_prob: 0.9,
        },
        seed,
    );
    println!("{}", uxm::xml::writer::to_xml_pretty(&doc, 2));
    Ok(())
}

fn cmd_dataset(args: &[String]) -> Result<(), UxmError> {
    let (pos, _) = parse_args(args)?;
    let [name] = pos.as_slice() else {
        return Err(UxmError::Usage("dataset needs an id (D1..D10)".into()));
    };
    let id = DatasetId::all()
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| UxmError::Usage(format!("unknown dataset {name:?}")))?;
    let d = Dataset::load(id);
    let (s, t, cap, o) = id.paper_row();
    println!("{}: |S|={s} |T|={t}", id.name());
    println!("  paper:    capacity {cap}, o-ratio {o:.2}");
    let pm = PossibleMappings::top_h(&d.matching, 100);
    println!(
        "  measured: capacity {}, o-ratio {:.2} (|M|=100)",
        d.capacity(),
        o_ratio(&pm)
    );
    Ok(())
}
