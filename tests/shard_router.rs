//! Router-layer behavior the differential harness can't see: per-client
//! fairness across the internal hop, and rebalancing under live
//! traffic.
//!
//! * **Forwarded identity** — behind the router every shard-bound TCP
//!   connection's peer is the router itself on loopback, so shard-side
//!   per-client caps would bind to the hop, not the client. Shard
//!   servers therefore run with `trust_forwarded_client` and key
//!   admission on the `x-uxm-client` header the router forwards; these
//!   tests pin that at socket level (trusted rebinding, untrusted
//!   indifference, and 429 propagation through the front).
//! * **Rebalancing** — shard add/remove mid-traffic must keep every
//!   engine reachable (the shared snapshot directory means any shard
//!   can hydrate any engine, so there is no 404 window), and the
//!   router must still match a single registry at the new ring size.

use std::net::IpAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use uxm::core::api::Query;
use uxm::core::block_tree::BlockTreeConfig;
use uxm::core::engine::QueryEngine;
use uxm::core::json::Json;
use uxm::core::mapping::PossibleMappings;
use uxm::core::registry::EngineRegistry;
use uxm::core::router::{Router, RouterConfig};
use uxm::core::server::{Client, Server, ServerConfig};
use uxm::matching::Matcher;
use uxm::twig::TwigPattern;
use uxm::xml::{DocGenConfig, Document, Schema};

/// The small purchase-order fixture engine shared with the serving
/// tests.
fn small_engine(seed: u64) -> QueryEngine {
    let source = Schema::parse_outline(
        "Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity UnitPrice))",
    )
    .unwrap();
    let target =
        Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))").unwrap();
    let matching = Matcher::context().match_schemas(&source, &target);
    let pm = PossibleMappings::top_h(&matching, 12);
    let doc = Document::generate(&source, &DocGenConfig::small(), seed);
    QueryEngine::build(pm, doc, &BlockTreeConfig::default())
}

fn ip(s: &str) -> Option<IpAddr> {
    Some(s.parse().unwrap())
}

const QUERY_PATTERN: &str = "PO//Qty";

fn ptq() -> Query {
    Query::ptq(TwigPattern::parse(QUERY_PATTERN).unwrap())
}

/// A trusted server keys its per-client cap on the forwarded identity,
/// re-bound per request: the same connection can switch identities
/// (releasing the old slot), a second connection claiming a full
/// identity is refused with a 429 naming the real client, and a
/// different identity passes.
#[test]
fn trusted_server_caps_on_forwarded_identity() {
    let registry = Arc::new(EngineRegistry::new());
    registry.insert("po", small_engine(7));
    let handle = Server::bind(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            max_conns_per_client: 1,
            trust_forwarded_client: true,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .start();
    let addr = handle.addr();

    // First connection binds identity 10.0.0.1.
    let mut a = Client::connect(addr).unwrap();
    a.set_forward_client(ip("10.0.0.1"));
    let (status, _) = a.query("po", &ptq()).unwrap();
    assert_eq!(status, 200);

    // A second connection claiming the same identity is refused — and
    // the refusal names the forwarded client, not the loopback peer.
    let mut b = Client::connect(addr).unwrap();
    b.set_forward_client(ip("10.0.0.1"));
    let (status, body) = b.query("po", &ptq()).unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("\"kind\":\"rate-limited\""), "{body}");
    assert!(
        body.contains("10.0.0.1"),
        "refusal must name the client: {body}"
    );

    // A different identity has its own slot.
    let mut c = Client::connect(addr).unwrap();
    c.set_forward_client(ip("10.0.0.2"));
    let (status, _) = c.query("po", &ptq()).unwrap();
    assert_eq!(status, 200);

    // The first connection keeps serving, and re-binding it to a new
    // identity releases the old slot for others.
    a.set_forward_client(ip("10.0.0.3"));
    let (status, _) = a.query("po", &ptq()).unwrap();
    assert_eq!(status, 200);
    let mut d = Client::connect(addr).unwrap();
    d.set_forward_client(ip("10.0.0.1"));
    let (status, body) = d.query("po", &ptq()).unwrap();
    assert_eq!(status, 200, "released identity must be claimable: {body}");

    handle.shutdown();
}

/// An untrusted (default) server ignores the header entirely: the cap
/// keys on the TCP peer, so spoofed identities neither escape nor
/// consume per-identity slots.
#[test]
fn untrusted_server_ignores_forwarded_identity() {
    let registry = Arc::new(EngineRegistry::new());
    registry.insert("po", small_engine(7));
    let handle = Server::bind(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            max_conns_per_client: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .start();
    let addr = handle.addr();

    // Two loopback connections claiming distinct forwarded identities
    // still count against the one real peer…
    let mut a = Client::connect(addr).unwrap();
    a.set_forward_client(ip("10.0.0.1"));
    assert_eq!(a.query("po", &ptq()).unwrap().0, 200);
    let mut b = Client::connect(addr).unwrap();
    b.set_forward_client(ip("10.0.0.2"));
    assert_eq!(b.query("po", &ptq()).unwrap().0, 200);

    // …so the third loopback connection is shed at accept time no
    // matter what identity it claims.
    let mut c = Client::connect(addr).unwrap();
    c.set_forward_client(ip("10.0.0.3"));
    let outcome = c.query("po", &ptq());
    match outcome {
        Ok((status, body)) => {
            assert_eq!(status, 429, "{body}");
            assert!(body.contains("\"kind\":\"rate-limited\""), "{body}");
        }
        // The accept-time shed closes the connection; depending on
        // timing the client may see the reset before the 429 body.
        Err(e) => assert!(e.to_string().contains("i/o") || !e.to_string().is_empty()),
    }
    handle.shutdown();
}

/// The router forwards each front client's identity on the internal
/// hop: when that identity's slot on the owning shard is already held
/// (here, by a direct connection claiming loopback), the shard's typed
/// 429 — naming the real client — propagates through the front.
#[test]
fn router_forwards_client_identity_to_shards() {
    let dir = std::env::temp_dir().join(format!("uxm-shard-fwd-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let registry = EngineRegistry::new().snapshot_dir(&dir);
        for i in 0..4 {
            registry.insert(format!("e{i}"), small_engine(i));
        }
        registry.save_all().unwrap();
    }
    let router = Router::start(
        &dir,
        RouterConfig {
            shards: 2,
            shard_server: ServerConfig {
                workers: 2,
                max_conns_per_client: 1,
                ..ServerConfig::default()
            },
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let front = router
        .bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .start();

    // Pick any engine and find its owning shard's direct address.
    let engine = "e0";
    let owner = router.owner(engine);
    let shard_addr = router
        .shard_addrs()
        .into_iter()
        .find(|(id, _)| *id == owner)
        .map(|(_, addr)| addr)
        .unwrap();

    // Hold the front clients' identity (loopback) directly on the
    // owning shard. Shard servers trust the header, so this binds
    // 127.0.0.1's one slot. The connection must stay open.
    let mut holder = Client::connect(shard_addr).unwrap();
    holder.set_forward_client(ip("127.0.0.1"));
    let (status, _) = holder.query(engine, &ptq()).unwrap();
    assert_eq!(status, 200);

    // Through the front, the same identity is now over its cap on that
    // shard — the shard's 429 comes back verbatim, naming the client.
    let mut fc = Client::connect(front.addr()).unwrap();
    let (status, body) = fc.query(engine, &ptq()).unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("\"kind\":\"rate-limited\""), "{body}");
    assert!(body.contains("127.0.0.1"), "{body}");

    // A different identity was never the problem: release the slot and
    // the same front client passes.
    drop(holder);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let (status, body) = fc.query(engine, &ptq()).unwrap();
        if status == 200 {
            break;
        }
        assert_eq!(status, 429, "{body}");
        assert!(
            std::time::Instant::now() < deadline,
            "slot never released: {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    front.shutdown();
    router.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shard add/remove under live traffic: every engine stays reachable
/// throughout (no 404/503 window — any shard can hydrate any engine
/// from the shared snapshot directory, and requests racing a removal
/// are retried against the fresh ring), and afterwards the router
/// still matches a single registry at the new ring size.
#[test]
fn rebalance_mid_traffic_keeps_every_engine_reachable() {
    let dir = std::env::temp_dir().join(format!("uxm-shard-rebal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let names: Vec<String> = (0..8).map(|i| format!("e{i}")).collect();
    {
        let registry = EngineRegistry::new().snapshot_dir(&dir);
        for (i, name) in names.iter().enumerate() {
            registry.insert(name.clone(), small_engine(i as u64));
        }
        registry.save_all().unwrap();
    }
    let router = Router::start(
        &dir,
        RouterConfig {
            shards: 2,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let front = router
        .bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .start();
    let addr = front.addr();
    let first_id = router.shard_ids()[0];

    // Hammer every engine round-robin from three clients while the
    // ring is reshaped underneath them; any non-200 is a reachability
    // hole.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic: Vec<_> = (0..3)
        .map(|t| {
            let stop = Arc::clone(&stop);
            let names = names.clone();
            std::thread::spawn(move || -> Result<u64, String> {
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let query = ptq();
                let mut served = 0u64;
                let mut i = t; // offset the threads
                while !stop.load(Ordering::Relaxed) {
                    let name = &names[i % names.len()];
                    i += 1;
                    let (status, body) = client.query(name, &query).map_err(|e| e.to_string())?;
                    if status != 200 {
                        return Err(format!("{name} answered {status}: {body}"));
                    }
                    served += 1;
                }
                Ok(served)
            })
        })
        .collect();

    // Grow to 3 shards, shrink back to 2 (dropping an original shard),
    // with traffic in flight around both reshapes.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let added = router.add_shard().expect("add shard");
    assert_eq!(router.shard_count(), 3);
    std::thread::sleep(std::time::Duration::from_millis(400));
    router.remove_shard(first_id).expect("remove shard");
    assert_eq!(router.shard_count(), 2);
    assert!(router.shard_ids().contains(&added));
    std::thread::sleep(std::time::Duration::from_millis(400));

    stop.store(true, Ordering::Relaxed);
    let mut total = 0;
    for t in traffic {
        total += t.join().unwrap().expect("traffic thread saw a failure");
    }
    assert!(total > 0, "traffic threads never ran");

    // At the new ring size the router still matches a single registry
    // byte-exactly on the answers subtree.
    let single_registry = Arc::new(EngineRegistry::new().snapshot_dir(&dir));
    let single = Server::bind(
        single_registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .start();
    let mut sc = Client::connect(single.addr()).unwrap();
    let mut rc = Client::connect(addr).unwrap();
    let answers = |body: &str| {
        Json::parse(body)
            .unwrap()
            .get("answers")
            .map(|a| a.to_string())
            .unwrap_or_default()
    };
    for name in &names {
        let (s_status, s_body) = sc.query(name, &ptq()).unwrap();
        let (r_status, r_body) = rc.query(name, &ptq()).unwrap();
        assert_eq!((s_status, r_status), (200, 200), "{name}");
        assert_eq!(
            answers(&s_body),
            answers(&r_body),
            "{name} diverges post-rebalance"
        );
    }

    single.shutdown();
    front.shutdown();
    router.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
