//! The `QueryEngine` session layer must return results *identical* to the
//! legacy free-function paths — same answers, same order, same floats —
//! across the Table II datasets and the paper's query workload. The free
//! functions are themselves wrappers over the engine with a throwaway
//! session, so this pins (a) wrapper/engine agreement including all cache
//! interactions, and (b) warm-cache runs agreeing with cold runs.
//!
//! It also hosts the **planner differential suite**: `QueryEngine::run`
//! must return identical answers under every forced evaluator hint and
//! the auto plan, for every query kind, across all Table II datasets —
//! the guarantee that lets the planner treat evaluator choice as a pure
//! performance decision.
//!
//! This file is the designated *shim coverage*: it exercises the
//! deprecated legacy entry points on purpose, so the CI deprecation gate
//! (`RUSTFLAGS="-D deprecated"`) exempts it via this allow.
#![allow(deprecated)]

use uxm::core::api::{Answer, EvaluatorHint, Granularity, Query};
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::keyword::keyword_query;
use uxm::core::mapping::PossibleMappings;
use uxm::core::path_ptq::{ptq_basic_nodes, ptq_with_tree_nodes};
use uxm::core::ptq::ptq_basic;
use uxm::core::ptq_tree::ptq_with_tree;
use uxm::core::registry::{BatchQuery, EngineRegistry};
use uxm::core::topk::topk_ptq;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::xml::{DocGenConfig, Document, PathIndex};

/// Builds the session pieces for one dataset, sized to keep the full
/// sweep affordable in debug builds.
fn session(id: DatasetId, m: usize, nodes: usize) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, m);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0x0D0C,
    );
    let tree = BlockTree::build(
        &d.matching.target,
        &pm,
        &BlockTreeConfig {
            tau: 0.2,
            ..BlockTreeConfig::default()
        },
    );
    QueryEngine::new(pm, doc, tree)
}

/// Asserts every evaluator agrees between engine and legacy on `queries`,
/// and that a second (cache-warm) engine run is identical to the first.
fn assert_equivalent(engine: &QueryEngine, queries: &[usize], dataset: &str) {
    let all = paper_queries();
    let (pm, doc, tree) = (engine.mappings(), engine.document(), engine.tree());
    for &qi in queries {
        let q = &all[qi - 1];
        let label = format!("{dataset} Q{qi}");

        let basic = engine.ptq(q);
        assert_eq!(basic, ptq_basic(q, pm, doc), "{label}: ptq_basic");
        assert_eq!(basic, engine.ptq(q), "{label}: warm ptq");

        let tree_res = engine.ptq_with_tree(q);
        assert_eq!(
            tree_res,
            ptq_with_tree(q, pm, doc, tree),
            "{label}: ptq_with_tree"
        );
        assert_eq!(
            tree_res,
            engine.ptq_with_tree(q),
            "{label}: warm ptq_with_tree"
        );

        let top = engine.topk(q, 5);
        assert_eq!(top, topk_ptq(q, pm, doc, tree, 5), "{label}: topk_ptq");
    }
}

#[test]
fn engine_equals_legacy_on_small_datasets_full_workload() {
    for id in [
        DatasetId::D1,
        DatasetId::D2,
        DatasetId::D3,
        DatasetId::D4,
        DatasetId::D5,
    ] {
        let engine = session(id, 40, 800);
        assert_equivalent(&engine, &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10], id.name());
    }
}

#[test]
fn engine_equals_legacy_on_large_datasets_spot_queries() {
    for id in [
        DatasetId::D6,
        DatasetId::D7,
        DatasetId::D8,
        DatasetId::D9,
        DatasetId::D10,
    ] {
        let engine = session(id, 20, 400);
        assert_equivalent(&engine, &[2, 7, 10], id.name());
    }
}

/// The serving stack adds no semantics: for every request kind, the
/// registry batch path returns exactly what the engine returns, which
/// returns exactly what the legacy free functions return
/// (registry ≡ engine ≡ legacy).
#[test]
fn registry_batch_equals_engine_equals_legacy() {
    let registry = EngineRegistry::new();
    let all = paper_queries();
    // Two resident engines so the batch exercises cross-engine routing.
    for (name, id) in [("d4", DatasetId::D4), ("d7", DatasetId::D7)] {
        registry.insert(name, session(id, 20, 400));
    }
    for (name, id) in [("d4", DatasetId::D4), ("d7", DatasetId::D7)] {
        let legacy = session(id, 20, 400);
        let (pm, doc, tree) = (legacy.mappings(), legacy.document(), legacy.tree());
        let vocab = pm
            .target
            .label(pm.target.children(pm.target.root())[0])
            .to_string();
        for qi in [2usize, 7, 10] {
            let q = &all[qi - 1];
            let answers = registry.batch(&[
                BatchQuery::ptq(name, q.clone()),
                BatchQuery::basic(name, q.clone()),
                BatchQuery::topk(name, q.clone(), 5),
                BatchQuery::keyword(name, vec![vocab.clone(), "order".to_string()]),
            ]);
            let label = format!("{} Q{qi}", id.name());
            assert_eq!(
                answers[0].as_ref().unwrap().answers,
                legacy_as_answers(&ptq_with_tree(q, pm, doc, tree)),
                "{label}: registry ptq vs legacy"
            );
            assert_eq!(
                answers[1].as_ref().unwrap().answers,
                legacy_as_answers(&ptq_basic(q, pm, doc)),
                "{label}: registry basic vs legacy"
            );
            assert_eq!(
                answers[2].as_ref().unwrap().answers,
                legacy_as_answers(&topk_ptq(q, pm, doc, tree, 5)),
                "{label}: registry topk vs legacy"
            );
            let keyword_legacy: Vec<Answer> = keyword_query(&[vocab.as_str(), "order"], pm, doc)
                .unwrap()
                .into_iter()
                .map(|a| Answer {
                    probability: a.probability,
                    mappings: vec![a.mapping],
                    matches: a
                        .slcas
                        .into_iter()
                        .map(|n| uxm::twig::TwigMatch { nodes: vec![n] })
                        .collect(),
                })
                .collect();
            assert_eq!(
                answers[3].as_ref().unwrap().answers,
                keyword_legacy,
                "{label}: registry keyword vs legacy"
            );
        }
    }
}

/// Converts a legacy per-mapping result into the unified answer shape
/// (the exact transformation `run` performs at `Granularity::Mapping`).
fn legacy_as_answers(result: &uxm::core::ptq::PtqResult) -> Vec<Answer> {
    result
        .iter()
        .map(|a| Answer {
            probability: a.probability,
            mappings: vec![a.mapping],
            matches: a.matches.clone(),
        })
        .collect()
}

/// The planner differential suite: for every Table II dataset and every
/// query kind, `run()` answers are identical under the auto plan and
/// every pinned evaluator — including the compiled bytecode backend —
/// and equal to the legacy ground truth.
#[test]
fn run_is_plan_invariant_across_all_datasets() {
    let hints = [
        EvaluatorHint::Auto,
        EvaluatorHint::Naive,
        EvaluatorHint::BlockTree,
        EvaluatorHint::Compiled,
    ];
    let all = paper_queries();
    for id in DatasetId::all() {
        let engine = session(id, 20, 400);
        let (pm, doc) = (engine.mappings(), engine.document());
        for qi in [2usize, 7, 10] {
            let q = &all[qi - 1];
            let label = format!("{} Q{qi}", id.name());

            // Label granularity: auto and both pins agree with legacy.
            let expected = legacy_as_answers(&ptq_basic(q, pm, doc));
            for hint in hints {
                let got = engine
                    .run(&Query::ptq(q.clone()).with_evaluator(hint))
                    .unwrap();
                assert_eq!(got.answers, expected, "{label}: ptq {hint:?}");
            }

            // Node granularity: all hints agree with each other.
            let node_reference = engine.run(&Query::ptq_nodes(q.clone())).unwrap();
            for hint in hints {
                let got = engine
                    .run(&Query::ptq_nodes(q.clone()).with_evaluator(hint))
                    .unwrap();
                assert_eq!(
                    got.answers, node_reference.answers,
                    "{label}: ptq-nodes {hint:?}"
                );
            }

            // Top-k: all hints agree with each other and with legacy.
            let top_expected = legacy_as_answers(&topk_ptq(q, pm, doc, engine.tree(), 5));
            for hint in hints {
                let got = engine
                    .run(&Query::topk(q.clone(), 5).with_evaluator(hint))
                    .unwrap();
                assert_eq!(got.answers, top_expected, "{label}: topk {hint:?}");
            }

            // Distinct granularity: identical across plans, and its mass
            // matches the per-mapping mass.
            let distinct_reference = engine
                .run(&Query::ptq(q.clone()).with_granularity(Granularity::Distinct))
                .unwrap();
            for hint in hints {
                let got = engine
                    .run(
                        &Query::ptq(q.clone())
                            .with_granularity(Granularity::Distinct)
                            .with_evaluator(hint),
                    )
                    .unwrap();
                assert_eq!(
                    got.answers, distinct_reference.answers,
                    "{label}: distinct {hint:?}"
                );
            }
            let mapping_mass: f64 = expected.iter().map(|a| a.probability).sum();
            assert!(
                (distinct_reference.total_probability() - mapping_mass).abs() < 1e-9,
                "{label}: distinct mass"
            );
        }
    }
}

/// The response must name the evaluator it actually ran: pinned hints
/// are honored verbatim (plan *and* backend), and the auto plan always
/// picks one of the three.
#[test]
fn run_reports_the_pinned_evaluator() {
    use uxm::core::planner::{Evaluator, PlanReason};
    let engine = session(DatasetId::D4, 20, 400);
    let q = &paper_queries()[6];
    for (hint, expected) in [
        (EvaluatorHint::Naive, Evaluator::Naive),
        (EvaluatorHint::BlockTree, Evaluator::BlockTree),
        (EvaluatorHint::Compiled, Evaluator::Compiled),
    ] {
        let got = engine
            .run(&Query::ptq(q.clone()).with_evaluator(hint))
            .unwrap();
        assert_eq!(got.stats.plan.evaluator, expected);
        assert_eq!(got.stats.backend, expected);
        assert_eq!(got.stats.plan.reason, PlanReason::Pinned);
        // Only the compiled backend touches the program cache.
        let touched = got.stats.program_cache_hits + got.stats.program_cache_misses;
        assert_eq!(touched, u64::from(expected == Evaluator::Compiled));
    }
    let auto = engine.run(&Query::ptq(q.clone())).unwrap();
    assert_ne!(auto.stats.plan.reason, PlanReason::Pinned);
    assert_eq!(auto.stats.backend, auto.stats.plan.evaluator);
    assert_eq!(auto.stats.relevant, engine.relevant_mappings(q).len());
}

/// Replaying a query shape through the compiled backend hits the
/// per-engine program cache and returns byte-identical responses.
#[test]
fn compiled_replay_hits_the_program_cache() {
    let engine = session(DatasetId::D4, 20, 400);
    let q = &paper_queries()[1];
    let query = Query::ptq(q.clone()).with_evaluator(EvaluatorHint::Compiled);
    let cold = engine.run(&query).unwrap();
    assert_eq!(cold.stats.program_cache_misses, 1, "cold run compiles");
    assert_eq!(cold.stats.program_cache_hits, 0);
    let warm = engine.run(&query).unwrap();
    assert_eq!(warm.stats.program_cache_hits, 1, "warm run replays");
    assert_eq!(warm.stats.program_cache_misses, 0);
    assert_eq!(warm.answers, cold.answers, "replay is answer-identical");
    // Top-k and node granularity compile distinct programs (different
    // cache keys), so each first run is a miss, not a collision.
    let topk = engine
        .run(&Query::topk(q.clone(), 3).with_evaluator(EvaluatorHint::Compiled))
        .unwrap();
    assert_eq!(topk.stats.program_cache_misses, 1);
    let nodes = engine
        .run(&Query::ptq_nodes(q.clone()).with_evaluator(EvaluatorHint::Compiled))
        .unwrap();
    assert_eq!(nodes.stats.program_cache_misses, 1);
    let stats = engine.exec_cache_stats();
    assert_eq!(stats.misses, 3, "three shapes compiled");
    assert_eq!(stats.hits, 1, "one replay");
}

#[test]
fn engine_equals_legacy_node_granularity_and_keyword() {
    let engine = session(DatasetId::D4, 30, 600);
    let (pm, doc, tree) = (engine.mappings(), engine.document(), engine.tree());
    let index = PathIndex::new(doc);
    let all = paper_queries();
    for qi in [2usize, 7, 10] {
        let q = &all[qi - 1];
        assert_eq!(
            engine.ptq_nodes(q),
            ptq_basic_nodes(q, pm, doc, &index),
            "D4 Q{qi}: ptq_basic_nodes"
        );
        assert_eq!(
            engine.ptq_with_tree_nodes(q),
            ptq_with_tree_nodes(q, pm, doc, &index, tree),
            "D4 Q{qi}: ptq_with_tree_nodes"
        );
    }
    // Keyword: one vocabulary term (a target label) and one value term.
    let vocab = pm
        .target
        .label(pm.target.children(pm.target.root())[0])
        .to_string();
    for terms in [
        vec![vocab.as_str()],
        vec!["order"],
        vec![vocab.as_str(), "order"],
    ] {
        assert_eq!(
            engine.keyword(&terms).unwrap(),
            keyword_query(&terms, pm, doc).unwrap(),
            "keyword {terms:?}"
        );
    }
}
