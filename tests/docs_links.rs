//! Offline link checker for the markdown documentation: every relative
//! link in `README.md` and `docs/*.md` must point at a file that exists
//! in this repository, and every `#fragment` on a markdown target must
//! resolve to a real heading's GitHub-style anchor. External links
//! (`http://`…) are out of scope — the build environment is offline.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The documentation set under check.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let mut pages: Vec<PathBuf> = std::fs::read_dir(&docs)
        .unwrap_or_else(|e| panic!("docs/ directory: {e}"))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "md"))
        .collect();
    pages.sort();
    assert!(!pages.is_empty(), "docs/ book has pages");
    files.extend(pages);
    files
}

/// `[text](target)` pairs outside fenced code blocks.
fn markdown_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                if let Some(end) = line[i + 2..].find(')') {
                    links.push(line[i + 2..i + 2 + end].to_string());
                    i += 2 + end;
                    continue;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub's heading-anchor slug: lowercase; spaces become hyphens;
/// everything not alphanumeric, hyphen, or underscore is dropped.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| match c {
            ' ' => Some('-'),
            c if c.is_alphanumeric() || c == '-' || c == '_' => Some(c.to_ascii_lowercase()),
            _ => None,
        })
        .collect()
}

fn heading_slugs(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut in_fence = false;
    let mut slugs = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            slugs.push(slug(line.trim_start_matches('#')));
        }
    }
    slugs
}

#[test]
fn relative_links_and_anchors_resolve() {
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for file in doc_files() {
        let text =
            std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        let dir = file.parent().expect("doc file has a directory");
        for link in markdown_links(&text) {
            // Offline checker: external schemes are out of scope.
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
            {
                continue;
            }
            checked += 1;
            let (path_part, fragment) = match link.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (link.as_str(), None),
            };
            let target = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            if !target.exists() {
                failures.push(format!(
                    "{}: link {link:?} → missing file {}",
                    file.display(),
                    target.display()
                ));
                continue;
            }
            if let Some(fragment) = fragment {
                if target.extension().is_some_and(|x| x == "md")
                    && !heading_slugs(&target).iter().any(|s| s == fragment)
                {
                    failures.push(format!(
                        "{}: link {link:?} → no heading {fragment:?} in {}",
                        file.display(),
                        target.display()
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} broken link(s):\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    // The checker itself must be exercising something: README links the
    // docs book, the book cross-links itself.
    assert!(checked >= 10, "only {checked} relative links found");
}

#[test]
fn readme_links_every_docs_page() {
    let readme =
        std::fs::read_to_string(repo_root().join("README.md")).expect("README.md readable");
    for page in doc_files() {
        let name = page.file_name().unwrap().to_string_lossy();
        if name == "README.md" {
            continue;
        }
        assert!(
            readme.contains(&format!("docs/{name}")),
            "README.md does not link docs/{name}"
        );
    }
}
