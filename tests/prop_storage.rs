//! Storage codec properties: the plain and block-compressed encodings
//! round-trip to identical `PossibleMappings` on arbitrary mapping sets,
//! corrupt input never panics, and every `DecodeError` variant is
//! reachable.

use proptest::prelude::*;
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::mapping::PossibleMappings;
use uxm::core::storage::{
    decode_compressed, decode_plain, encode_compressed, encode_plain, DecodeError,
};
use uxm::xml::{Schema, SchemaNodeId};

fn schemas() -> (Schema, Schema) {
    let source = Schema::parse_outline(
        "Ord(BuyerA(NameA MailA) BuyerB(NameB MailB) Ship(Str City) Item*(No Qty Price))",
    )
    .unwrap();
    let target = Schema::parse_outline(
        "PO(Cust(CName CMail) Dest(Street Town) Line(LineNo Quantity Amount))",
    )
    .unwrap();
    (source, target)
}

/// Strategy: a random set of 1–12 one-to-one mappings (same construction
/// as `prop_core`).
fn mappings_strategy() -> impl Strategy<Value = PossibleMappings> {
    let (source, target) = schemas();
    let n_t = target.len();
    let n_s = source.len();
    proptest::collection::vec(proptest::collection::vec(0usize..(n_s + 3), n_t), 1..12).prop_map(
        move |choice_sets| {
            let sets = choice_sets
                .into_iter()
                .enumerate()
                .map(|(i, choices)| {
                    let mut used = vec![false; n_s];
                    let mut pairs = Vec::new();
                    for (t_idx, s_choice) in choices.into_iter().enumerate() {
                        if s_choice < n_s && !used[s_choice] {
                            used[s_choice] = true;
                            pairs.push((SchemaNodeId(s_choice as u32), SchemaNodeId(t_idx as u32)));
                        }
                    }
                    (pairs, 1.0 + i as f64 * 0.1)
                })
                .collect();
            PossibleMappings::from_pairs(source.clone(), target.clone(), sets)
        },
    )
}

fn assert_same_mappings(a: &PossibleMappings, b: &PossibleMappings) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        prop_assert_eq!(x, y);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The satellite property: `decode(encode_plain(pm))` equals
    /// `decode(encode_compressed(pm, tree))` equals `pm`, for arbitrary
    /// mapping sets and block trees.
    #[test]
    fn plain_and_compressed_decode_identically(
        pm in mappings_strategy(),
        tau in 0.1f64..1.0,
    ) {
        let tree = BlockTree::build(
            &pm.target.clone(),
            &pm,
            &BlockTreeConfig { tau, ..BlockTreeConfig::default() },
        );
        let via_plain =
            decode_plain(&encode_plain(&pm), pm.source.clone(), pm.target.clone()).unwrap();
        let (via_compressed, back_tree) = decode_compressed(
            &encode_compressed(&pm, &tree),
            pm.source.clone(),
            pm.target.clone(),
        )
        .unwrap();
        assert_same_mappings(&via_plain, &via_compressed)?;
        assert_same_mappings(&pm, &via_plain)?;
        prop_assert_eq!(tree.blocks(), back_tree.blocks());
        prop_assert_eq!(tree.min_support, back_tree.min_support);
    }

    /// Fuzz-ish robustness: flipping any byte of either encoding must
    /// yield `Ok` or a clean `DecodeError` — never a panic.
    #[test]
    fn corrupt_bytes_never_panic(
        pm in mappings_strategy(),
        pos in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let tree = BlockTree::build(&pm.target.clone(), &pm, &BlockTreeConfig::default());
        for bytes in [encode_plain(&pm), encode_compressed(&pm, &tree)] {
            let mut corrupt = bytes.clone();
            let p = pos % corrupt.len();
            corrupt[p] ^= xor;
            let _ = decode_plain(&corrupt, pm.source.clone(), pm.target.clone());
            let _ = decode_compressed(&corrupt, pm.source.clone(), pm.target.clone());
        }
    }

    /// Truncating at any point must error (and never panic): a shortened
    /// prefix is either missing data (`Truncated`), or — when the cut
    /// garbles a length prefix — may surface as any other decode error,
    /// but never as success.
    #[test]
    fn every_truncation_errors(pm in mappings_strategy(), cut_seed in 0usize..4096) {
        let (source, target) = (pm.source.clone(), pm.target.clone());
        let plain = encode_plain(&pm);
        let cut = cut_seed % plain.len();
        prop_assert!(decode_plain(&plain[..cut], source.clone(), target.clone()).is_err());
        let tree = BlockTree::build(&target.clone(), &pm, &BlockTreeConfig::default());
        let compressed = encode_compressed(&pm, &tree);
        let cut = cut_seed % compressed.len();
        prop_assert!(decode_compressed(&compressed[..cut], source, target).is_err());
    }
}

// ---------------------------------------------------------------------
// every DecodeError variant, on both codecs

fn sample() -> (PossibleMappings, BlockTree) {
    let (source, target) = schemas();
    let s = |l: &str| source.nodes_with_label(l)[0];
    let t = |l: &str| target.nodes_with_label(l)[0];
    let pm = PossibleMappings::from_pairs(
        source.clone(),
        target.clone(),
        vec![
            (vec![(s("Ord"), t("PO")), (s("NameA"), t("CName"))], 2.0),
            (vec![(s("Ord"), t("PO")), (s("NameB"), t("CName"))], 1.0),
        ],
    );
    let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
    (pm, tree)
}

fn varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[test]
fn bad_magic_variant() {
    let (pm, tree) = sample();
    // Cross-format confusion both ways...
    let plain = encode_plain(&pm);
    let compressed = encode_compressed(&pm, &tree);
    assert_eq!(
        decode_compressed(&plain, pm.source.clone(), pm.target.clone()).unwrap_err(),
        DecodeError::BadMagic
    );
    assert_eq!(
        decode_plain(&compressed, pm.source.clone(), pm.target.clone()).unwrap_err(),
        DecodeError::BadMagic
    );
    // ...and outright garbage.
    assert_eq!(
        decode_plain(b"NOPE", pm.source.clone(), pm.target.clone()).unwrap_err(),
        DecodeError::BadMagic
    );
}

#[test]
fn truncated_variant() {
    let (pm, tree) = sample();
    let plain = encode_plain(&pm);
    for cut in [0, 3, plain.len() / 2, plain.len() - 1] {
        assert_eq!(
            decode_plain(&plain[..cut], pm.source.clone(), pm.target.clone()).unwrap_err(),
            DecodeError::Truncated,
            "plain cut at {cut}"
        );
    }
    let compressed = encode_compressed(&pm, &tree);
    assert_eq!(
        decode_compressed(
            &compressed[..compressed.len() - 1],
            pm.source.clone(),
            pm.target.clone()
        )
        .unwrap_err(),
        DecodeError::Truncated
    );
    // Trailing garbage is rejected as Truncated too (incomplete consume).
    let mut trailing = plain.clone();
    trailing.push(0x00);
    assert_eq!(
        decode_plain(&trailing, pm.source.clone(), pm.target.clone()).unwrap_err(),
        DecodeError::Truncated
    );
    // An unterminated varint (continuation bits forever) overflows the
    // 64-bit shift and must surface as Truncated, not panic.
    let mut evil = Vec::from(*b"UXM0");
    evil.extend_from_slice(&[0xFF; 12]);
    assert_eq!(
        decode_plain(&evil, pm.source.clone(), pm.target.clone()).unwrap_err(),
        DecodeError::Truncated
    );
}

#[test]
fn id_out_of_range_variant() {
    let (pm, tree) = sample();
    let tiny = Schema::parse_outline("X").unwrap();
    // Plain: stored pair ids exceed a shrunken schema.
    let plain = encode_plain(&pm);
    assert_eq!(
        decode_plain(&plain, pm.source.clone(), tiny.clone()).unwrap_err(),
        DecodeError::IdOutOfRange
    );
    // Compressed: block anchors exceed a shrunken target schema.
    let compressed = encode_compressed(&pm, &tree);
    assert_eq!(
        decode_compressed(&compressed, pm.source.clone(), tiny).unwrap_err(),
        DecodeError::IdOutOfRange
    );
    // Compressed: a mapping referencing a block id beyond the block table.
    let mut crafted = Vec::from(*b"UXM1");
    varint(&mut crafted, 1); // min_support
    varint(&mut crafted, 0); // no blocks
    varint(&mut crafted, 1); // one mapping
    crafted.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // score
    crafted.extend_from_slice(&1.0f64.to_bits().to_le_bytes()); // prob
    varint(&mut crafted, 1); // one block pointer...
    varint(&mut crafted, 0); // ...into the empty block table
    varint(&mut crafted, 0); // no residual pairs
    assert_eq!(
        decode_compressed(&crafted, pm.source.clone(), pm.target.clone()).unwrap_err(),
        DecodeError::IdOutOfRange
    );
}
