//! Snapshot format v3: page-aligned fixed-width sections must round-trip
//! answers byte-stably on every Table II dataset, agree with the v1 and
//! v2 decoders on the committed golden fixtures, and turn every header,
//! table, and column corruption into a typed `DecodeError` — never a
//! panic, never a hostile-length allocation.

use proptest::prelude::*;
use uxm::core::api::{EvaluatorHint, Query};
use uxm::core::block_tree::BlockTreeConfig;
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::core::storage::{
    decode_engine_snapshot, encode_engine_snapshot, encode_engine_snapshot_v2, snapshot_version,
    xxh64, DecodeError, SECTION_ALIGN, SNAPSHOT_VERSION,
};
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::twig::TwigPattern;
use uxm::xml::{DocGenConfig, Document, Schema};

const V1_FIXTURE: &str = "tests/fixtures/snapshot_v1.uxm";
const V2_FIXTURE: &str = "tests/fixtures/snapshot_v2.uxm";

// ---------------------------------------------------------------------
// v3 container geometry, mirrored from the codec for byte surgery

/// Magic (4) + version byte (1) + pad (3) + file_len/section_count/table
/// checksum (3 × u64).
const HEADER_LEN: usize = 32;
/// kind, offset, len, count, elem_size, xxh64 (6 × u64).
const ENTRY_LEN: usize = 48;
/// Sections in a canonical v3 file.
const SECTIONS: usize = 23;
const TABLE_END: usize = HEADER_LEN + ENTRY_LEN * SECTIONS;

/// Reads field `j` (0..6) of section-table entry `i`.
fn entry_field(bytes: &[u8], i: usize, j: usize) -> u64 {
    let at = HEADER_LEN + i * ENTRY_LEN + 8 * j;
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Overwrites field `j` of section-table entry `i`.
fn set_entry_field(bytes: &mut [u8], i: usize, j: usize, v: u64) {
    let at = HEADER_LEN + i * ENTRY_LEN + 8 * j;
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Recomputes the table checksum after byte surgery on the section
/// table, so corruption below the table is reachable (otherwise every
/// edit stops at `BadChecksum` on the table itself).
fn reseal_table(bytes: &mut [u8]) {
    let sum = xxh64(&bytes[HEADER_LEN..TABLE_END], 0);
    bytes[24..32].copy_from_slice(&sum.to_le_bytes());
}

// ---------------------------------------------------------------------
// engines under test

fn engine(id: DatasetId, m: usize, nodes: usize) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, m);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0x5EED,
    );
    QueryEngine::build(pm, doc, &BlockTreeConfig::default())
}

/// The fully deterministic engine behind the committed golden fixtures
/// (identical to the one in `tests/snapshot_v2.rs`): no matcher, no
/// generator — explicit mappings over a hand-built document, so any
/// build of this repository reproduces the fixtures bit for bit.
fn fixture_engine() -> QueryEngine {
    let source = Schema::parse_outline(
        "Order(Buyer(Name Contact(EMail)) POLine(LineNo Quantity UnitPrice))",
    )
    .unwrap();
    let target =
        Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))").unwrap();
    let s = |l: &str| source.nodes_with_label(l)[0];
    let t = |l: &str| target.nodes_with_label(l)[0];
    let pm = PossibleMappings::from_pairs(
        source.clone(),
        target.clone(),
        vec![
            (
                vec![
                    (s("Order"), t("PO")),
                    (s("Buyer"), t("Purchaser")),
                    (s("Name"), t("PName")),
                    (s("EMail"), t("PEMail")),
                    (s("LineNo"), t("No")),
                    (s("Quantity"), t("Qty")),
                    (s("UnitPrice"), t("Amount")),
                ],
                3.0,
            ),
            (
                vec![
                    (s("Order"), t("PO")),
                    (s("Buyer"), t("Purchaser")),
                    (s("Name"), t("PName")),
                    (s("EMail"), t("PEMail")),
                    (s("LineNo"), t("No")),
                    (s("UnitPrice"), t("Qty")),
                    (s("Quantity"), t("Amount")),
                ],
                2.0,
            ),
            (
                vec![
                    (s("Order"), t("PO")),
                    (s("Contact"), t("Purchaser")),
                    (s("EMail"), t("PName")),
                    (s("LineNo"), t("No")),
                    (s("Quantity"), t("Qty")),
                ],
                1.0,
            ),
        ],
    );
    let doc = {
        let mut b = Document::builder("Order");
        let root = b.root();
        let buyer = b.add_child(root, "Buyer");
        let name = b.add_child(buyer, "Name");
        b.set_text(name, "Ada");
        let contact = b.add_child(buyer, "Contact");
        let email = b.add_child(contact, "EMail");
        b.set_text(email, "ada@example.org");
        for (no, qty, price) in [("1", "3", "9.50"), ("2", "1", "4.25")] {
            let line = b.add_child(root, "POLine");
            b.add_attr(line, "id", no);
            let ln = b.add_child(line, "LineNo");
            b.set_text(ln, no);
            let q = b.add_child(line, "Quantity");
            b.set_text(q, qty);
            let p = b.add_child(line, "UnitPrice");
            b.set_text(p, price);
        }
        b.finish()
    };
    QueryEngine::build(pm, doc, &BlockTreeConfig::default())
}

fn fixture_queries() -> Vec<Query> {
    ["PO//Qty", "PO/Line/No", "//Amount", "PO/Purchaser//PEMail"]
        .iter()
        .map(|qs| Query::ptq(TwigPattern::parse(qs).unwrap()))
        .collect()
}

// ---------------------------------------------------------------------
// round trip + layout invariants

/// The tentpole acceptance criterion: the default (v3) snapshot round
/// trip preserves `QueryResponse` answers byte-for-byte on every
/// Table II dataset under every evaluator hint, and re-encodes
/// byte-stably.
#[test]
fn v3_roundtrip_all_datasets() {
    let queries = paper_queries();
    for id in DatasetId::all() {
        let original = engine(id, 12, 250);
        let bytes = encode_engine_snapshot(&original);
        assert_eq!(
            snapshot_version(&bytes).unwrap(),
            SNAPSHOT_VERSION,
            "{}: snapshots default to v3",
            id.name()
        );
        let back = decode_engine_snapshot(&bytes).expect("v3 decodes");
        assert_eq!(back.source(), original.source(), "{}: source", id.name());
        assert_eq!(back.target(), original.target(), "{}: target", id.name());
        assert_eq!(
            back.tree().blocks(),
            original.tree().blocks(),
            "{}: blocks",
            id.name()
        );
        for (a, b) in back.mappings().iter().zip(original.mappings().iter()) {
            assert_eq!(a, b, "{}: mapping", id.name());
        }
        for qi in [2usize, 7, 10] {
            for hint in [EvaluatorHint::Naive, EvaluatorHint::BlockTree] {
                let q = Query::ptq(queries[qi - 1].clone()).with_evaluator(hint);
                assert_eq!(
                    back.run(&q).unwrap().answers,
                    original.run(&q).unwrap().answers,
                    "{} Q{qi} {hint:?}",
                    id.name()
                );
            }
        }
        assert_eq!(
            encode_engine_snapshot(&back),
            bytes,
            "{}: byte-stable re-encode",
            id.name()
        );
    }
}

/// Every section in a canonical v3 file starts on a page boundary, sits
/// fully inside the file, and the header's `file_len` pins the exact
/// size — the invariants the zero-copy `mmap` path relies on.
#[test]
fn v3_sections_are_page_aligned() {
    let bytes = encode_engine_snapshot(&engine(DatasetId::D4, 10, 200));
    let file_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    assert_eq!(file_len as usize, bytes.len());
    let count = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    assert_eq!(count as usize, SECTIONS);
    for i in 0..SECTIONS {
        let offset = entry_field(&bytes, i, 1) as usize;
        let len = entry_field(&bytes, i, 2) as usize;
        let count = entry_field(&bytes, i, 3);
        let elem = entry_field(&bytes, i, 4);
        assert_eq!(offset % SECTION_ALIGN, 0, "section {i} offset {offset}");
        assert!(offset >= SECTION_ALIGN, "section {i} inside header");
        assert!(offset + len <= bytes.len(), "section {i} extent");
        assert_eq!(count * elem, len as u64, "section {i} count×elem");
        assert_eq!(
            xxh64(&bytes[offset..offset + len], 0),
            entry_field(&bytes, i, 5),
            "section {i} checksum"
        );
    }
}

// ---------------------------------------------------------------------
// cross-version agreement on the committed golden fixtures

/// The committed v2 golden fixture decodes, reports version 2, and is
/// regenerable bit-for-bit from this repository.
#[test]
fn v2_golden_fixture_decodes() {
    let bytes =
        std::fs::read(V2_FIXTURE).expect("v2 fixture committed at tests/fixtures/snapshot_v2.uxm");
    assert_eq!(snapshot_version(&bytes).unwrap(), 2);
    let decoded = decode_engine_snapshot(&bytes).expect("v2 still decodes");
    let fresh = fixture_engine();
    assert_eq!(
        encode_engine_snapshot_v2(&fresh),
        bytes,
        "fixture drifted — regenerate with `cargo test --test snapshot_v3 \
         regenerate_v2_fixture -- --ignored`"
    );
    for q in fixture_queries() {
        assert_eq!(
            decoded.run(&q).unwrap().answers,
            fresh.run(&q).unwrap().answers,
            "{q}"
        );
    }
}

/// The compatibility contract CI pins on every push: the v1 fixture, the
/// v2 fixture, and a freshly written v3 file of the same engine all
/// hydrate to engines with byte-identical answers.
#[test]
fn v1_v2_v3_decoders_agree() {
    let fresh = fixture_engine();
    let from_v1 = decode_engine_snapshot(&std::fs::read(V1_FIXTURE).expect("v1 fixture"))
        .expect("v1 decodes");
    let from_v2 = decode_engine_snapshot(&std::fs::read(V2_FIXTURE).expect("v2 fixture"))
        .expect("v2 decodes");
    let v3_bytes = encode_engine_snapshot(&fresh);
    assert_eq!(snapshot_version(&v3_bytes).unwrap(), 3);
    let from_v3 = decode_engine_snapshot(&v3_bytes).expect("v3 decodes");
    for q in fixture_queries() {
        let want = fresh.run(&q).unwrap().answers;
        assert_eq!(from_v1.run(&q).unwrap().answers, want, "v1 {q}");
        assert_eq!(from_v2.run(&q).unwrap().answers, want, "v2 {q}");
        assert_eq!(from_v3.run(&q).unwrap().answers, want, "v3 {q}");
    }
}

/// Writes the v2 golden fixture. Run once when the fixture legitimately
/// needs regenerating:
/// `cargo test --test snapshot_v3 regenerate_v2_fixture -- --ignored`
#[test]
#[ignore = "writes tests/fixtures/snapshot_v2.uxm"]
fn regenerate_v2_fixture() {
    std::fs::create_dir_all("tests/fixtures").unwrap();
    std::fs::write(V2_FIXTURE, encode_engine_snapshot_v2(&fixture_engine())).unwrap();
}

// ---------------------------------------------------------------------
// crafted corruption: every failure is a typed DecodeError

/// One valid v3 snapshot, built once and shared by all corruption cases.
fn valid_v3_snapshot() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| encode_engine_snapshot(&engine(DatasetId::D2, 6, 120)))
}

#[test]
fn v3_header_corruption_is_typed() {
    let good = valid_v3_snapshot();

    // Unknown version byte.
    let mut bytes = good.to_vec();
    bytes[4] = 99;
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::UnsupportedVersion(99)
    );

    // Non-zero prelude padding is non-canonical.
    let mut bytes = good.to_vec();
    bytes[6] = 1;
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::Malformed
    );

    // A lying file_len reads as truncation (in either direction).
    let mut bytes = good.to_vec();
    bytes[8] ^= 0x01;
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::Truncated
    );

    // A wrong section count is malformed.
    let mut bytes = good.to_vec();
    bytes[16] = SECTIONS as u8 + 1;
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::Malformed
    );

    // Any table flip without resealing trips the table checksum.
    let mut bytes = good.to_vec();
    bytes[HEADER_LEN + 3] ^= 0x40;
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::BadChecksum
    );
}

/// A section offset nudged off its page boundary (with the table
/// checksum recomputed, so the edit is otherwise "valid") is rejected as
/// `Misaligned` — the mmap path must never borrow unaligned columns.
#[test]
fn v3_misaligned_section_offset() {
    let mut bytes = valid_v3_snapshot().to_vec();
    let offset = entry_field(&bytes, 0, 1);
    set_entry_field(&mut bytes, 0, 1, offset + 8);
    reseal_table(&mut bytes);
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::Misaligned
    );
}

/// An overstated element count — including a hostile `u64::MAX` that
/// would overflow `count × elem_size` — is caught by arithmetic alone,
/// before any allocation can be sized from it.
#[test]
fn v3_overstated_count_cannot_allocate() {
    // SEC_DOC_LABELS (entry 10) has elem_size 4: count is checked
    // against the byte length, so count+1 no longer multiplies out.
    let mut bytes = valid_v3_snapshot().to_vec();
    let count = entry_field(&bytes, 10, 3);
    set_entry_field(&mut bytes, 10, 3, count + 1);
    reseal_table(&mut bytes);
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::Malformed
    );

    let mut bytes = valid_v3_snapshot().to_vec();
    set_entry_field(&mut bytes, 10, 3, u64::MAX);
    reseal_table(&mut bytes);
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::Malformed
    );
}

/// A single flipped byte inside a column's payload trips that section's
/// checksum (the table itself still verifies).
#[test]
fn v3_column_checksum_detects_content_flip() {
    let mut bytes = valid_v3_snapshot().to_vec();
    let offset = entry_field(&bytes, 10, 1) as usize;
    let len = entry_field(&bytes, 10, 2) as usize;
    assert!(len > 0, "labels column is never empty");
    bytes[offset + len / 2] ^= 0x80;
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::BadChecksum
    );
}

/// Truncating mid-section is caught by `file_len` before any section is
/// trusted.
#[test]
fn v3_mid_section_truncation_errors() {
    let bytes = valid_v3_snapshot();
    // Cut one byte into the first section (META, never empty), leaving
    // the header and section table fully intact.
    let offset = entry_field(bytes, 0, 1) as usize;
    assert_eq!(
        decode_engine_snapshot(&bytes[..offset + 1]).unwrap_err(),
        DecodeError::Truncated
    );
}

// ---------------------------------------------------------------------
// property corruption: the decoder never panics

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flipping any byte of a valid v3 snapshot yields `Ok` or a clean
    /// `DecodeError` — the fixed-width decode paths never panic.
    #[test]
    fn corrupt_v3_snapshot_never_panics(pos in 0usize..1 << 20, xor in 1u8..=255) {
        let bytes = valid_v3_snapshot();
        let mut corrupt = bytes.to_vec();
        let p = pos % corrupt.len();
        corrupt[p] ^= xor;
        let _ = decode_engine_snapshot(&corrupt);
    }

    /// Truncating a valid v3 snapshot at any point errors cleanly.
    #[test]
    fn truncated_v3_snapshot_errors(cut in 0usize..1 << 20) {
        let bytes = valid_v3_snapshot();
        let cut = cut % bytes.len();
        prop_assert!(decode_engine_snapshot(&bytes[..cut]).is_err());
    }

    /// Appending trailing garbage to a valid v3 snapshot is rejected
    /// (`file_len` pins the exact size).
    #[test]
    fn trailing_garbage_v3_rejected(extra in 1usize..16, byte in 0u8..=255) {
        let mut bytes = valid_v3_snapshot().to_vec();
        bytes.extend(std::iter::repeat_n(byte, extra));
        prop_assert!(decode_engine_snapshot(&bytes).is_err());
    }
}
