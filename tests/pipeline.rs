//! End-to-end integration tests: matcher → possible mappings → block tree
//! → PTQ, across generated datasets and the paper's query workload.
//!
//! Shim coverage: the legacy free functions are exercised on purpose, so
//! the CI deprecation gate exempts this file via the allow below.
#![allow(deprecated)]

use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::compress::{compress, compression_ratio};
use uxm::core::mapping::PossibleMappings;
use uxm::core::ptq::ptq_basic;
use uxm::core::ptq_tree::ptq_with_tree;
use uxm::core::stats::o_ratio;
use uxm::core::topk::topk_ptq;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::xml::{DocGenConfig, Document};

/// The paper's query workload (D7: XCBL → Apertum), sized down for test
/// speed and shared across tests.
fn workload() -> &'static (PossibleMappings, Document, BlockTree) {
    static WORKLOAD: std::sync::OnceLock<(PossibleMappings, Document, BlockTree)> =
        std::sync::OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let d = Dataset::load(DatasetId::D7);
        let pm = PossibleMappings::top_h(&d.matching, 40);
        let doc = Document::generate(
            &d.matching.source,
            &DocGenConfig {
                target_nodes: 800,
                max_repeat: 4,
                text_prob: 0.8,
            },
            11,
        );
        let tree = BlockTree::build(&d.matching.target, &pm, &BlockTreeConfig::default());
        (pm, doc, tree)
    })
}

#[test]
fn basic_and_block_tree_agree_on_all_paper_queries() {
    let (pm, doc, tree) = workload();
    for (i, q) in paper_queries().iter().enumerate() {
        let mut basic = ptq_basic(q, pm, doc);
        let mut tree_res = ptq_with_tree(q, pm, doc, tree);
        basic.normalize();
        tree_res.normalize();
        assert_eq!(basic, tree_res, "Q{} differs", i + 1);
    }
}

#[test]
fn paper_queries_have_answers_on_d6() {
    let (pm, doc, tree) = workload();
    let mut answered = 0;
    for q in &paper_queries() {
        let res = ptq_with_tree(q, pm, doc, tree);
        if res.iter().any(|a| !a.matches.is_empty()) {
            answered += 1;
        }
    }
    assert!(
        answered >= 6,
        "only {answered}/10 queries found matches — workload too sparse"
    );
}

#[test]
fn probabilities_are_a_distribution() {
    let (pm, _, _) = workload();
    let total: f64 = pm.iter().map(|(_, m)| m.prob).sum();
    assert!((total - 1.0).abs() < 1e-9);
    assert!(pm.iter().all(|(_, m)| m.prob >= 0.0));
}

#[test]
fn mappings_are_one_to_one() {
    let (pm, _, _) = workload();
    for (_, m) in pm.iter() {
        let mut targets: Vec<_> = m.pairs.iter().map(|p| p.1).collect();
        targets.sort_unstable();
        let before = targets.len();
        targets.dedup();
        assert_eq!(before, targets.len(), "duplicate target in mapping");
        let mut sources: Vec<_> = m.pairs.iter().map(|p| p.0).collect();
        sources.sort_unstable();
        let before = sources.len();
        sources.dedup();
        assert_eq!(before, sources.len(), "duplicate source in mapping");
    }
}

#[test]
fn block_tree_blocks_satisfy_definition_on_real_workload() {
    let (pm, _, tree) = workload();
    for b in tree.blocks() {
        b.validate(&pm.target, pm, tree.min_support)
            .unwrap_or_else(|e| panic!("invalid block: {e}"));
    }
}

#[test]
fn compression_is_lossless_on_real_workload() {
    let (pm, _, tree) = workload();
    let cm = compress(pm, tree);
    for (mid, m) in pm.iter() {
        assert_eq!(cm.reconstruct(tree, mid), m.pairs, "mapping {mid:?}");
    }
}

#[test]
fn compression_saves_space_on_overlapping_mappings() {
    let (pm, _, tree) = workload();
    let ratio = compression_ratio(pm, tree);
    assert!(
        ratio > 0.0,
        "expected positive compression on o-ratio {:.2} workload, got {ratio:.3}",
        o_ratio(pm)
    );
}

#[test]
fn topk_is_prefix_of_full_by_probability() {
    let (pm, doc, tree) = workload();
    let q = &paper_queries()[9];
    let full = ptq_with_tree(q, pm, doc, tree);
    for k in [1, 5, 20] {
        let top = topk_ptq(q, pm, doc, tree, k);
        assert!(top.len() <= k);
        // every top-k answer matches the full result for its mapping
        for a in top.iter() {
            let f = full
                .iter()
                .find(|f| f.mapping == a.mapping)
                .expect("mapping in full result");
            assert_eq!(f.matches, a.matches);
        }
        // and no skipped mapping has higher probability than the lowest kept
        let min_kept = top
            .iter()
            .map(|a| a.probability)
            .fold(f64::INFINITY, f64::min);
        let kept: Vec<_> = top.iter().map(|a| a.mapping).collect();
        for f in full.iter() {
            if !kept.contains(&f.mapping) {
                assert!(f.probability <= min_kept + 1e-12);
            }
        }
    }
}

#[test]
fn tau_one_blocks_are_universal() {
    let (pm, _, _) = workload();
    let tree = BlockTree::build(
        &pm.target.clone(),
        pm,
        &BlockTreeConfig {
            tau: 1.0,
            ..BlockTreeConfig::default()
        },
    );
    for b in tree.blocks() {
        assert_eq!(b.support(), pm.len(), "tau=1 blocks must span all mappings");
    }
}

#[test]
fn generated_document_conforms_to_source_schema() {
    let d = Dataset::load(DatasetId::D6);
    let doc = Document::generate(&d.matching.source, &DocGenConfig::order_xml(), 3);
    let schema_paths: std::collections::HashSet<String> = d
        .matching
        .source
        .ids()
        .map(|id| d.matching.source.path(id).replace('.', "/"))
        .collect();
    for id in doc.ids() {
        assert!(
            schema_paths.contains(&doc.path(id)),
            "bad path {}",
            doc.path(id)
        );
    }
}

#[test]
fn xml_roundtrip_of_generated_document() {
    let d = Dataset::load(DatasetId::D1);
    let doc = Document::generate(&d.matching.source, &DocGenConfig::small(), 5);
    let xml = uxm::xml::writer::to_xml(&doc);
    let back = uxm::xml::parse_document(&xml).unwrap();
    assert_eq!(doc.len(), back.len());
    assert_eq!(uxm::xml::writer::to_xml(&back), xml);
}
