//! Determinism under concurrency: N threads hammer ONE shared
//! [`QueryEngine`] with a mixed ptq / top-k / keyword workload, and every
//! single answer must be byte-identical to the single-threaded evaluation
//! of the same request. This is the contract the `EngineRegistry` serving
//! layer builds on — the sharded caches may race on *computing* an entry,
//! but never on its value.
//!
//! The test is meaningful both with and without `--features parallel`
//! (the engine then also fans out internally, nesting scoped threads).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::keyword::KeywordAnswer;
use uxm::core::mapping::PossibleMappings;
use uxm::core::ptq::PtqResult;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::twig::TwigPattern;
use uxm::xml::{DocGenConfig, Document};

const THREADS: usize = 8;
/// Total requests pulled off the shared work queue by all threads.
const REQUESTS: usize = 400;

fn engine(id: DatasetId, m: usize, nodes: usize) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, m);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0x0D0C,
    );
    let tree = BlockTree::build(
        &d.matching.target,
        &pm,
        &BlockTreeConfig {
            tau: 0.2,
            ..BlockTreeConfig::default()
        },
    );
    QueryEngine::new(pm, doc, tree)
}

/// The mixed request stream: request `i` deterministically selects one of
/// the evaluators and one of the paper queries / keyword lists.
#[derive(Debug, Clone, PartialEq)]
enum Answer {
    Ptq(PtqResult),
    Keyword(Vec<KeywordAnswer>),
}

fn run_request(
    engine: &QueryEngine,
    queries: &[TwigPattern],
    terms: &[Vec<&str>],
    i: usize,
) -> Answer {
    let q = &queries[i % queries.len()];
    match i % 5 {
        0 => Answer::Ptq(engine.ptq_with_tree(q)),
        1 => Answer::Ptq(engine.ptq(q)),
        2 => Answer::Ptq(engine.topk(q, 1 + i % 7)),
        3 => Answer::Ptq(engine.ptq_with_tree_nodes(q)),
        _ => Answer::Keyword(engine.keyword(&terms[i % terms.len()]).unwrap()),
    }
}

#[test]
fn hammered_engine_matches_single_threaded_evaluation() {
    let shared = Arc::new(engine(DatasetId::D7, 20, 400));
    let queries = paper_queries();
    // One vocabulary term (a target label) plus value terms.
    let vocab = {
        let t = &shared.mappings().target;
        t.label(t.children(t.root())[0]).to_string()
    };
    let terms: Vec<Vec<&str>> = vec![
        vec![vocab.as_str()],
        vec!["order"],
        vec![vocab.as_str(), "item"],
    ];

    // Single-threaded ground truth from a FRESH engine (cold caches), one
    // answer per request index.
    let fresh = engine(DatasetId::D7, 20, 400);
    let expected: Vec<Answer> = (0..REQUESTS)
        .map(|i| run_request(&fresh, &queries, &terms, i))
        .collect();

    // Hammer the shared engine: threads pull request indices off a shared
    // counter, so interleavings (and hence cache fill order) vary freely.
    let next = AtomicUsize::new(0);
    let mismatches: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let queries = &queries;
                let terms = &terms;
                let next = &next;
                let expected = &expected;
                scope.spawn(move || {
                    let mut bad = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= REQUESTS {
                            break;
                        }
                        let got = run_request(&shared, queries, terms, i);
                        if got != expected[i] {
                            bad.push(format!("request {i} diverged"));
                        }
                    }
                    bad
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stress worker panicked"))
            .collect()
    });
    assert!(mismatches.is_empty(), "{mismatches:?}");

    // The workload repeats each (evaluator, query) pair many times, so the
    // shared caches must have served hits.
    let stats = shared.cache_stats();
    assert!(stats.rewrite_hits > 0, "stats: {stats:?}");
    assert!(stats.relevant_hits > 0, "stats: {stats:?}");
}

#[test]
fn warm_and_cold_answers_agree_across_threads() {
    // A second shape of the race: every thread runs the SAME query; the
    // first to finish populates the caches while the rest are mid-flight.
    let shared = Arc::new(engine(DatasetId::D7, 12, 250));
    let q = &paper_queries()[1];
    let expected = engine(DatasetId::D7, 12, 250).ptq_with_tree(q);
    let answers: Vec<PtqResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                scope.spawn(move || (0..20).map(|_| shared.ptq_with_tree(q)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for (i, a) in answers.iter().enumerate() {
        assert_eq!(a, &expected, "run {i}");
    }
}
