//! Determinism under concurrency: N threads hammer ONE shared
//! [`QueryEngine`] through the unified `run` entry point with a mixed
//! ptq / top-k / node / keyword workload, and every single answer must be
//! identical to the single-threaded evaluation of the same request. This
//! is the contract the `EngineRegistry` serving layer builds on — the
//! sharded caches may race on *computing* an entry, but never on its
//! value, and the planner's choice (which may differ between cold and
//! warm caches) never changes answers.
//!
//! The test is meaningful both with and without `--features parallel`
//! (the engine then also fans out internally, nesting scoped threads).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uxm::core::api::{Answer, EvaluatorHint, Granularity, Query};
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::twig::TwigPattern;
use uxm::xml::{DocGenConfig, Document};

const THREADS: usize = 8;
/// Total requests pulled off the shared work queue by all threads.
const REQUESTS: usize = 400;

fn engine(id: DatasetId, m: usize, nodes: usize) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, m);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0x0D0C,
    );
    let tree = BlockTree::build(
        &d.matching.target,
        &pm,
        &BlockTreeConfig {
            tau: 0.2,
            ..BlockTreeConfig::default()
        },
    );
    QueryEngine::new(pm, doc, tree)
}

/// The mixed request stream: request `i` deterministically selects one of
/// the query kinds (with varying hints and granularity) over the paper
/// queries / keyword lists.
fn request(queries: &[TwigPattern], terms: &[Vec<&str>], i: usize) -> Query {
    let q = queries[i % queries.len()].clone();
    match i % 6 {
        0 => Query::ptq(q).with_evaluator(EvaluatorHint::BlockTree),
        1 => Query::ptq(q).with_evaluator(EvaluatorHint::Naive),
        2 => Query::ptq(q).with_granularity(Granularity::Distinct),
        3 => Query::topk(q, 1 + i % 7),
        4 => Query::ptq_nodes(q),
        _ => Query::keyword(
            terms[i % terms.len()]
                .iter()
                .map(|t| t.to_string())
                .collect(),
        ),
    }
}

fn run_request(engine: &QueryEngine, query: &Query) -> Vec<Answer> {
    engine.run(query).expect("valid request").answers
}

#[test]
fn hammered_engine_matches_single_threaded_evaluation() {
    let shared = Arc::new(engine(DatasetId::D7, 20, 400));
    let queries = paper_queries();
    // One vocabulary term (a target label) plus value terms.
    let vocab = {
        let t = &shared.mappings().target;
        t.label(t.children(t.root())[0]).to_string()
    };
    let terms: Vec<Vec<&str>> = vec![
        vec![vocab.as_str()],
        vec!["order"],
        vec![vocab.as_str(), "item"],
    ];
    let requests: Vec<Query> = (0..REQUESTS)
        .map(|i| request(&queries, &terms, i))
        .collect();

    // Single-threaded ground truth from a FRESH engine (cold caches), one
    // answer per request index.
    let fresh = engine(DatasetId::D7, 20, 400);
    let expected: Vec<Vec<Answer>> = requests.iter().map(|q| run_request(&fresh, q)).collect();

    // Hammer the shared engine: threads pull request indices off a shared
    // counter, so interleavings (and hence cache fill order) vary freely.
    let next = AtomicUsize::new(0);
    let mismatches: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let requests = &requests;
                let next = &next;
                let expected = &expected;
                scope.spawn(move || {
                    let mut bad = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= REQUESTS {
                            break;
                        }
                        let got = run_request(&shared, &requests[i]);
                        if got != expected[i] {
                            bad.push(format!("request {i} diverged"));
                        }
                    }
                    bad
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stress worker panicked"))
            .collect()
    });
    assert!(mismatches.is_empty(), "{mismatches:?}");

    // The workload repeats each (evaluator, query) pair many times, so the
    // shared caches must have served hits.
    let stats = shared.cache_stats();
    assert!(stats.rewrite_hits > 0, "stats: {stats:?}");
    assert!(stats.relevant_hits > 0, "stats: {stats:?}");
}

#[test]
fn warm_and_cold_answers_agree_across_threads() {
    // A second shape of the race: every thread runs the SAME query; the
    // first to finish populates the caches while the rest are mid-flight
    // (and the auto planner may see warm caches on later runs).
    let shared = Arc::new(engine(DatasetId::D7, 12, 250));
    let query = Query::ptq(paper_queries()[1].clone());
    let expected = run_request(&engine(DatasetId::D7, 12, 250), &query);
    let answers: Vec<Vec<Answer>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let query = &query;
                scope.spawn(move || {
                    (0..20)
                        .map(|_| run_request(&shared, query))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for (i, a) in answers.iter().enumerate() {
        assert_eq!(a, &expected, "run {i}");
    }
}
