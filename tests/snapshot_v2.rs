//! Snapshot format v2: columnar encode/decode must preserve answers on
//! every Table II dataset, re-encode byte-stably, keep decoding the
//! committed v1 golden fixture, and survive arbitrary corruption of the
//! new decode paths without panicking.

use proptest::prelude::*;
use uxm::core::api::{EvaluatorHint, Query};
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::core::storage::{
    decode_engine_snapshot, encode_engine_snapshot, encode_engine_snapshot_v1,
    encode_engine_snapshot_v2, snapshot_version, DecodeError,
};
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::twig::TwigPattern;
use uxm::xml::{DocGenConfig, Document, Schema};

const FIXTURE_PATH: &str = "tests/fixtures/snapshot_v1.uxm";

fn engine(id: DatasetId, m: usize, nodes: usize) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, m);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0x5EED,
    );
    let tree = BlockTree::build(&d.matching.target, &pm, &BlockTreeConfig::default());
    QueryEngine::new(pm, doc, tree)
}

/// The fully deterministic engine behind the committed v1 fixture: no
/// matcher, no generator — explicit mappings over a hand-built document,
/// so any build of this repository reproduces it bit for bit.
fn fixture_engine() -> QueryEngine {
    let source = Schema::parse_outline(
        "Order(Buyer(Name Contact(EMail)) POLine(LineNo Quantity UnitPrice))",
    )
    .unwrap();
    let target =
        Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))").unwrap();
    let s = |l: &str| source.nodes_with_label(l)[0];
    let t = |l: &str| target.nodes_with_label(l)[0];
    let pm = PossibleMappings::from_pairs(
        source.clone(),
        target.clone(),
        vec![
            (
                vec![
                    (s("Order"), t("PO")),
                    (s("Buyer"), t("Purchaser")),
                    (s("Name"), t("PName")),
                    (s("EMail"), t("PEMail")),
                    (s("LineNo"), t("No")),
                    (s("Quantity"), t("Qty")),
                    (s("UnitPrice"), t("Amount")),
                ],
                3.0,
            ),
            (
                vec![
                    (s("Order"), t("PO")),
                    (s("Buyer"), t("Purchaser")),
                    (s("Name"), t("PName")),
                    (s("EMail"), t("PEMail")),
                    (s("LineNo"), t("No")),
                    (s("UnitPrice"), t("Qty")),
                    (s("Quantity"), t("Amount")),
                ],
                2.0,
            ),
            (
                vec![
                    (s("Order"), t("PO")),
                    (s("Contact"), t("Purchaser")),
                    (s("EMail"), t("PName")),
                    (s("LineNo"), t("No")),
                    (s("Quantity"), t("Qty")),
                ],
                1.0,
            ),
        ],
    );
    let doc = {
        let mut b = Document::builder("Order");
        let root = b.root();
        let buyer = b.add_child(root, "Buyer");
        let name = b.add_child(buyer, "Name");
        b.set_text(name, "Ada");
        let contact = b.add_child(buyer, "Contact");
        let email = b.add_child(contact, "EMail");
        b.set_text(email, "ada@example.org");
        for (no, qty, price) in [("1", "3", "9.50"), ("2", "1", "4.25")] {
            let line = b.add_child(root, "POLine");
            b.add_attr(line, "id", no);
            let ln = b.add_child(line, "LineNo");
            b.set_text(ln, no);
            let q = b.add_child(line, "Quantity");
            b.set_text(q, qty);
            let p = b.add_child(line, "UnitPrice");
            b.set_text(p, price);
        }
        b.finish()
    };
    QueryEngine::build(pm, doc, &BlockTreeConfig::default())
}

fn fixture_queries() -> Vec<Query> {
    ["PO//Qty", "PO/Line/No", "//Amount", "PO/Purchaser//PEMail"]
        .iter()
        .map(|qs| Query::ptq(TwigPattern::parse(qs).unwrap()))
        .collect()
}

/// A v2 snapshot round trip preserves `QueryResponse` answers
/// byte-for-byte on every Table II dataset, under every evaluator hint,
/// and the re-encode is byte-stable. (Snapshots now default to v3 — see
/// `tests/snapshot_v3.rs` — but the v2 encoder stays pinned here so the
/// committed v2 fixture remains regenerable.)
#[test]
fn v2_roundtrip_all_datasets() {
    let queries = paper_queries();
    for id in DatasetId::all() {
        let original = engine(id, 12, 250);
        let bytes = encode_engine_snapshot_v2(&original);
        assert_eq!(
            snapshot_version(&bytes).unwrap(),
            2,
            "{}: explicit v2 encode pins version 2",
            id.name()
        );
        let back = decode_engine_snapshot(&bytes).expect("v2 decodes");
        assert_eq!(back.source(), original.source(), "{}: source", id.name());
        assert_eq!(back.target(), original.target(), "{}: target", id.name());
        assert_eq!(
            back.tree().blocks(),
            original.tree().blocks(),
            "{}: blocks",
            id.name()
        );
        for (a, b) in back.mappings().iter().zip(original.mappings().iter()) {
            assert_eq!(a, b, "{}: mapping", id.name());
        }
        for qi in [2usize, 7, 10] {
            for hint in [EvaluatorHint::Naive, EvaluatorHint::BlockTree] {
                let q = Query::ptq(queries[qi - 1].clone()).with_evaluator(hint);
                assert_eq!(
                    back.run(&q).unwrap().answers,
                    original.run(&q).unwrap().answers,
                    "{} Q{qi} {hint:?}",
                    id.name()
                );
            }
        }
        assert_eq!(
            encode_engine_snapshot_v2(&back),
            bytes,
            "{}: byte-stable re-encode",
            id.name()
        );
    }
}

/// v2 files are no larger than the v1 encoding of the same engine (the
/// columnar document section drops per-node flag bytes).
#[test]
fn v2_not_larger_than_v1() {
    for id in [DatasetId::D1, DatasetId::D7] {
        let e = engine(id, 12, 250);
        let v1 = encode_engine_snapshot_v1(&e);
        let v2 = encode_engine_snapshot_v2(&e);
        assert!(
            v2.len() <= v1.len(),
            "{}: v2 {} bytes > v1 {} bytes",
            id.name(),
            v2.len(),
            v1.len()
        );
    }
}

/// The committed v1 golden fixture still decodes, reports version 1, and
/// answers queries identically to a freshly built engine — the backwards
/// compatibility contract CI pins on every push.
#[test]
fn v1_golden_fixture_decodes() {
    let bytes = std::fs::read(FIXTURE_PATH)
        .expect("v1 fixture committed at tests/fixtures/snapshot_v1.uxm");
    assert_eq!(snapshot_version(&bytes).unwrap(), 1);
    let decoded = decode_engine_snapshot(&bytes).expect("v1 still decodes");
    let fresh = fixture_engine();
    // The fixture is regenerable bit-for-bit from this repository.
    assert_eq!(
        encode_engine_snapshot_v1(&fresh),
        bytes,
        "fixture drifted — regenerate with `cargo test --test snapshot_v2 \
         regenerate_v1_fixture -- --ignored`"
    );
    for q in fixture_queries() {
        assert_eq!(
            decoded.run(&q).unwrap().answers,
            fresh.run(&q).unwrap().answers,
            "{q}"
        );
    }
    // And re-encoding under the current version upgrades it losslessly.
    let upgraded = decode_engine_snapshot(&encode_engine_snapshot(&decoded)).unwrap();
    for q in fixture_queries() {
        assert_eq!(
            upgraded.run(&q).unwrap().answers,
            fresh.run(&q).unwrap().answers,
            "upgraded {q}"
        );
    }
}

/// A v1 and a v2 snapshot of the same engine hydrate to engines with
/// identical answers (the two decode paths agree).
#[test]
fn v1_and_v2_decoders_agree() {
    let e = engine(DatasetId::D7, 12, 250);
    let from_v1 = decode_engine_snapshot(&encode_engine_snapshot_v1(&e)).unwrap();
    let from_v2 = decode_engine_snapshot(&encode_engine_snapshot_v2(&e)).unwrap();
    let queries = paper_queries();
    for qi in [1usize, 4, 7, 10] {
        let q = Query::ptq(queries[qi - 1].clone());
        assert_eq!(
            from_v1.run(&q).unwrap().answers,
            from_v2.run(&q).unwrap().answers,
            "Q{qi}"
        );
    }
}

/// Writes the golden fixture. Run once when the fixture legitimately
/// needs regenerating:
/// `cargo test --test snapshot_v2 regenerate_v1_fixture -- --ignored`
#[test]
#[ignore = "writes tests/fixtures/snapshot_v1.uxm"]
fn regenerate_v1_fixture() {
    std::fs::create_dir_all("tests/fixtures").unwrap();
    std::fs::write(FIXTURE_PATH, encode_engine_snapshot_v1(&fixture_engine())).unwrap();
}

/// One valid v2 snapshot, built once and shared by all property cases.
fn valid_v2_snapshot() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| encode_engine_snapshot_v2(&engine(DatasetId::D2, 6, 120)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flipping any byte of a valid v2 snapshot yields `Ok` or a clean
    /// `DecodeError` — the columnar decode paths never panic.
    #[test]
    fn corrupt_v2_snapshot_never_panics(pos in 0usize..1 << 16, xor in 1u8..=255) {
        let bytes = valid_v2_snapshot();
        let mut corrupt = bytes.to_vec();
        let p = pos % corrupt.len();
        corrupt[p] ^= xor;
        let _ = decode_engine_snapshot(&corrupt);
    }

    /// Truncating a valid v2 snapshot at any point errors cleanly.
    #[test]
    fn truncated_v2_snapshot_errors(cut in 0usize..1 << 16) {
        let bytes = valid_v2_snapshot();
        let cut = cut % bytes.len();
        match decode_engine_snapshot(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("truncated snapshot decoded at cut {cut}"),
        }
    }

    /// Appending trailing garbage to a valid v2 snapshot is rejected.
    #[test]
    fn trailing_garbage_v2_rejected(extra in 1usize..16, byte in 0u8..=255) {
        let mut bytes = valid_v2_snapshot().to_vec();
        bytes.extend(std::iter::repeat_n(byte, extra));
        prop_assert!(decode_engine_snapshot(&bytes).is_err());
    }
}

/// The crafted-corruption cases that pin specific v2 `DecodeError`
/// variants: a text span node out of range, non-monotone text nodes, and
/// invalid UTF-8 in the contiguous buffers all fail loudly.
#[test]
fn v2_structural_corruption_reports_typed_errors() {
    // An unknown version is rejected with the claimed version.
    let mut bytes = valid_v2_snapshot().to_vec();
    bytes[4] = 77; // version varint sits right after the magic
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::UnsupportedVersion(77)
    );
}
