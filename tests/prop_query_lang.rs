//! Property-based differential over the **grown query language**: random
//! twig patterns drawn from the full grammar — value predicates (string,
//! numeric, attribute targets), descendant axes, wildcards — combined
//! with every query kind including aggregates and random options, must
//! (a) return identical answers under the naive, block-tree, and
//! compiled evaluators and the auto plan, (b) serialize → parse →
//! serialize byte-stably both as pattern strings and as wire JSON, and
//! (c) replay identically once the program cache is warm.
//!
//! This is `tests/prop_exec.rs` extended over the new shape space; the
//! exhaustive per-form oracle differential lives in
//! `tests/query_lang_differential.rs`.

use proptest::prelude::*;
use std::sync::OnceLock;
use uxm::core::aggregate::AggFunc;
use uxm::core::api::{EvaluatorHint, Granularity, Query, QueryResponse};
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::twig::{Axis, PredOp, PredTarget, TwigPattern, ValuePred};
use uxm::xml::{DocGenConfig, Document};

/// One shared session (building an engine per proptest case would drown
/// the suite in matcher work). D4 has repeated labels and enough blocks
/// for every backend to take interesting paths; the generated document
/// carries text on ~70% of nodes so value predicates select for real.
fn engine() -> &'static QueryEngine {
    static ENGINE: OnceLock<QueryEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let d = Dataset::load(DatasetId::D4);
        let pm = PossibleMappings::top_h(&d.matching, 24);
        let doc = Document::generate(
            &d.matching.source,
            &DocGenConfig {
                target_nodes: 400,
                max_repeat: 3,
                text_prob: 0.7,
            },
            0xBEEF,
        );
        let tree = BlockTree::build(
            &d.matching.target,
            &pm,
            &BlockTreeConfig {
                tau: 0.2,
                ..BlockTreeConfig::default()
            },
        );
        QueryEngine::new(pm, doc, tree)
    })
}

/// The label pool random twigs draw from: real target labels (so
/// queries are frequently relevant), the wildcard, and one label that
/// exists nowhere (the irrelevant-mapping / clear-bits path).
fn label_pool() -> &'static Vec<String> {
    static POOL: OnceLock<Vec<String>> = OnceLock::new();
    POOL.get_or_init(|| {
        let target = &engine().mappings().target;
        let mut pool: Vec<String> = target
            .ids()
            .take(14)
            .map(|id| target.label(id).to_string())
            .collect();
        pool.push("*".to_string());
        pool.push("NoSuchLabelAnywhere".to_string());
        pool
    })
}

/// One generated predicate. Thresholds land in a small range around the
/// generated text values so comparisons flip both ways; `contains`
/// substrings are short enough to hit generated text sometimes.
fn pred_from_spec(op: u8, on_attr: bool, n: i32) -> ValuePred {
    let x = n as f64 / 4.0 - 5.0;
    ValuePred {
        target: if on_attr {
            PredTarget::Attr("id".into())
        } else {
            PredTarget::Text
        },
        op: match op % 6 {
            0 => PredOp::Eq(format!("{n}")),
            1 => PredOp::Contains(["a", "e", "1", "q z"][n as usize % 4].into()),
            2 => PredOp::Lt(x),
            3 => PredOp::Le(x),
            4 => PredOp::Gt(x),
            _ => PredOp::Ge(x),
        },
    }
}

/// Node `i + 1` attaches under node `parent % (i + 1)` with the given
/// axis; labels index into the pool; each node carries 0–2 predicates.
fn twig_from_spec(spec: &[(u8, u8, bool, u8, u8, bool, i32)]) -> TwigPattern {
    let pool = label_pool();
    let axis = |d: bool| if d { Axis::Descendant } else { Axis::Child };
    let (l0, _, d0, ..) = *spec.first().expect("non-empty spec");
    let mut q = TwigPattern::single(pool[l0 as usize % pool.len()].clone(), axis(d0));
    let mut nodes = vec![q.root()];
    for &(label, parent, descendant, ..) in spec.iter().skip(1) {
        let parent = nodes[parent as usize % nodes.len()];
        let id = q.add_child(
            parent,
            pool[label as usize % pool.len()].clone(),
            axis(descendant),
        );
        nodes.push(id);
    }
    for (node, &(_, _, _, preds, op, on_attr, n)) in nodes.iter().zip(spec) {
        for i in 0..(preds % 3) {
            q.add_pred(*node, pred_from_spec(op + i, on_attr, n + i as i32));
        }
    }
    q
}

fn run(query: &Query) -> QueryResponse {
    engine().run(query).expect("valid query")
}

const FUNCS: [AggFunc; 4] = [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full-grammar differential: for random patterns with
    /// predicates, wildcards, and mixed axes, every query kind returns
    /// identical answers (and aggregate blocks) under every evaluator
    /// hint, and a warm replay is indistinguishable from the cold run.
    #[test]
    fn all_backends_agree_on_the_grown_grammar(
        spec in proptest::collection::vec(
            (0u8..16, 0u8..8, proptest::prop::bool::ANY, 0u8..3, 0u8..6,
             proptest::prop::bool::ANY, 0i32..40),
            1..5,
        ),
        k in 0usize..20,
        func in 0u8..4,
        min_p16 in 0u8..=8,
    ) {
        let pattern = twig_from_spec(&spec);
        let mut bases = vec![
            Query::ptq(pattern.clone()),
            Query::ptq_nodes(pattern.clone()),
            Query::topk(pattern.clone(), k),
            Query::ptq(pattern.clone()).with_granularity(Granularity::Distinct),
            Query::aggregate(pattern.clone(), FUNCS[func as usize]),
        ];
        if min_p16 > 0 {
            bases.push(
                Query::aggregate(pattern.clone(), FUNCS[func as usize])
                    .with_min_probability(min_p16 as f64 / 16.0),
            );
        }
        for base in bases {
            let naive = run(&base.clone().with_evaluator(EvaluatorHint::Naive));
            for hint in [
                EvaluatorHint::Auto,
                EvaluatorHint::BlockTree,
                EvaluatorHint::Compiled,
            ] {
                let query = base.clone().with_evaluator(hint);
                let cold = run(&query);
                prop_assert_eq!(&cold.answers, &naive.answers,
                    "{} {:?} diverged from naive", &base, hint);
                prop_assert_eq!(&cold.aggregate, &naive.aggregate,
                    "{} {:?} aggregate diverged from naive", &base, hint);
                let warm = run(&query);
                prop_assert_eq!(&warm.answers, &cold.answers,
                    "{} {:?} warm replay diverged", &base, hint);
                prop_assert_eq!(&warm.aggregate, &cold.aggregate,
                    "{} {:?} warm aggregate diverged", &base, hint);
            }
        }
    }

    /// Grammar byte-stability over the same shape space: rendering the
    /// generated pattern, parsing it back, and rendering again is a
    /// fixpoint, and so is the wire JSON of every query kind around it.
    #[test]
    fn grown_grammar_serialization_is_byte_stable(
        spec in proptest::collection::vec(
            (0u8..16, 0u8..8, proptest::prop::bool::ANY, 0u8..3, 0u8..6,
             proptest::prop::bool::ANY, 0i32..40),
            1..5,
        ),
        func in 0u8..4,
    ) {
        let generated = twig_from_spec(&spec);
        let rendered = generated.to_string();
        let parsed = TwigPattern::parse(&rendered)
            .map_err(|e| TestCaseError::fail(format!("{rendered}: {e}")))?;
        prop_assert_eq!(parsed.to_string(), rendered.clone(), "pattern fixpoint");

        for query in [
            Query::ptq(parsed.clone()),
            Query::aggregate(parsed.clone(), FUNCS[func as usize]),
        ] {
            let once = query.to_json_string();
            let back = Query::from_json_str(&once)
                .map_err(|e| TestCaseError::fail(format!("reparse of {once}: {e}")))?;
            prop_assert_eq!(&back, &query, "lossless: {}", &once);
            prop_assert_eq!(back.to_json_string(), once.clone(), "byte-stable: {}", &once);
        }
    }
}
