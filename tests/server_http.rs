//! Socket-level coverage of `uxm_core::server`: everything here talks to
//! a real `Server` over real TCP connections through `server::Client`.
//!
//! * served responses carry the same answer bytes `QueryEngine::run`
//!   produces, for every query kind and on every Table II dataset;
//! * 8 concurrent clients running a mixed workload all observe the
//!   single-threaded ground truth (the registry and engines are shared);
//! * malformed JSON / unknown engines / oversized bodies map to typed
//!   JSON error bodies with the right HTTP status, never a hangup;
//! * graceful shutdown answers in-flight requests before the workers
//!   exit, and refuses connections afterwards.

use std::sync::Arc;
use uxm::core::aggregate::AggFunc;
use uxm::core::api::{EvaluatorHint, Granularity, Query};
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::json::Json;
use uxm::core::mapping::PossibleMappings;
use uxm::core::registry::{BatchQuery, EngineRegistry};
use uxm::core::server::{Client, Server, ServerConfig, ServerHandle};
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::matching::Matcher;
use uxm::twig::TwigPattern;
use uxm::xml::{parse_document, DocGenConfig, Document, Schema};

/// A small synthetic engine (the registry test fixture's shape).
fn small_engine(seed: u64) -> QueryEngine {
    let source = Schema::parse_outline(
        "Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity UnitPrice))",
    )
    .unwrap();
    let target =
        Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))").unwrap();
    let matching = Matcher::context().match_schemas(&source, &target);
    let pm = PossibleMappings::top_h(&matching, 12);
    let doc = Document::generate(&source, &DocGenConfig::small(), seed);
    QueryEngine::build(pm, doc, &BlockTreeConfig::default())
}

/// A Table II dataset session, sized for debug-build sweeps (the
/// `engine_equivalence.rs` scale).
fn dataset_engine(id: DatasetId, m: usize, nodes: usize) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, m);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0x0D0C,
    );
    let tree = BlockTree::build(
        &d.matching.target,
        &pm,
        &BlockTreeConfig {
            tau: 0.2,
            ..BlockTreeConfig::default()
        },
    );
    QueryEngine::new(pm, doc, tree)
}

fn start(registry: Arc<EngineRegistry>, workers: usize) -> ServerHandle {
    Server::bind(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .start()
}

/// The deterministic slice of a served response: the full `answers`
/// subtree (byte-exact) plus the plan fields. `stats.elapsed_us` is
/// wall time and the cache counters depend on warmth, so whole-body
/// comparison is impossible by design.
fn deterministic_parts(body: &str) -> (String, String, String, String) {
    let v = Json::parse(body).expect("valid response JSON");
    let stats = v.get("stats").expect("stats present");
    (
        v.get("answers").expect("answers present").to_string(),
        stats.get("evaluator").unwrap().to_string(),
        stats.get("plan_reason").unwrap().to_string(),
        stats.get("relevant").unwrap().to_string(),
    )
}

fn assert_served_matches_direct(
    client: &mut Client,
    engine: &QueryEngine,
    name: &str,
    query: &Query,
    label: &str,
) {
    let (status, body) = client.query(name, query).unwrap();
    assert_eq!(status, 200, "{label}: {body}");
    let direct = engine.run(query).unwrap().to_json_string();
    assert_eq!(
        deterministic_parts(&body),
        deterministic_parts(&direct),
        "{label}: served response differs from direct run()"
    );
}

#[test]
fn round_trip_every_query_kind() {
    let registry = Arc::new(EngineRegistry::new());
    let engine = registry.insert("po", small_engine(1));
    let handle = start(Arc::clone(&registry), 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let q = TwigPattern::parse("PO//Qty").unwrap();
    let queries = [
        ("ptq auto", Query::ptq(q.clone())),
        (
            "ptq naive",
            Query::ptq(q.clone()).with_evaluator(EvaluatorHint::Naive),
        ),
        (
            "ptq tree",
            Query::ptq(q.clone()).with_evaluator(EvaluatorHint::BlockTree),
        ),
        ("ptq-nodes", Query::ptq_nodes(q.clone())),
        ("topk", Query::topk(q.clone(), 3)),
        ("keyword", Query::keyword(vec!["Qty".into()])),
        (
            "distinct+threshold",
            Query::ptq(q.clone())
                .with_granularity(Granularity::Distinct)
                .with_min_probability(0.05),
        ),
    ];
    for (label, query) in &queries {
        assert_served_matches_direct(&mut client, &engine, "po", query, label);
    }

    // The same persistent connection serves many requests (keep-alive).
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

    handle.shutdown();
}

#[test]
fn served_answers_match_direct_run_on_all_table2_datasets() {
    let registry = Arc::new(EngineRegistry::new());
    let mut engines = Vec::new();
    for id in DatasetId::all() {
        let engine = registry.insert(id.name(), dataset_engine(id, 20, 400));
        engines.push((id, engine));
    }
    let handle = start(Arc::clone(&registry), 4);
    let mut client = Client::connect(handle.addr()).unwrap();

    let queries = paper_queries();
    for (id, engine) in &engines {
        // Three spot queries per dataset keep the debug-build sweep
        // affordable (the full workload is pinned engine-side by
        // tests/engine_equivalence.rs).
        for qi in [1usize, 4, 8] {
            let query = Query::ptq(queries[qi - 1].clone());
            let label = format!("{} Q{qi}", id.name());
            assert_served_matches_direct(&mut client, engine, id.name(), &query, &label);
        }
    }
    handle.shutdown();
}

#[test]
fn eight_concurrent_clients_observe_ground_truth() {
    let registry = Arc::new(EngineRegistry::new());
    let orders = registry.insert("orders", small_engine(7));
    let invoices = registry.insert("invoices", small_engine(11));
    let handle = start(Arc::clone(&registry), 4);
    let addr = handle.addr();

    // The mixed workload, with single-threaded ground truth per request.
    let q = TwigPattern::parse("PO//Qty").unwrap();
    let mix: Vec<(String, Query)> = vec![
        ("orders".into(), Query::ptq(q.clone())),
        ("invoices".into(), Query::topk(q.clone(), 2)),
        ("orders".into(), Query::keyword(vec!["Qty".into()])),
        (
            "invoices".into(),
            Query::ptq(q.clone()).with_evaluator(EvaluatorHint::Naive),
        ),
        (
            "orders".into(),
            Query::ptq(q.clone()).with_granularity(Granularity::Distinct),
        ),
    ];
    let truth: Vec<String> = mix
        .iter()
        .map(|(name, query)| {
            let engine = if name == "orders" { &orders } else { &invoices };
            engine.run(query).unwrap().to_json_string()
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let (mix, truth) = (&mix, &truth);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..6 {
                    // Different threads walk the mix at different offsets.
                    let i = (t + round) % mix.len();
                    let (name, query) = &mix[i];
                    let (status, body) = client.query(name, query).unwrap();
                    assert_eq!(status, 200, "client {t} round {round}: {body}");
                    assert_eq!(
                        deterministic_parts(&body),
                        deterministic_parts(&truth[i]),
                        "client {t} round {round} diverged from ground truth"
                    );
                }
            });
        }
    });
    handle.shutdown();
}

#[test]
fn batch_endpoint_answers_in_request_order_with_per_item_errors() {
    let registry = Arc::new(EngineRegistry::new());
    let engine = registry.insert("po", small_engine(3));
    let handle = start(Arc::clone(&registry), 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let q = TwigPattern::parse("PO//Qty").unwrap();
    let requests = [
        BatchQuery::new("po", Query::ptq(q.clone())),
        BatchQuery::new("missing", Query::ptq(q.clone())),
        BatchQuery::new("po", Query::keyword(vec![])), // evaluator rejects
        BatchQuery::new("po", Query::topk(q.clone(), 2)),
    ];
    let (status, body) = client.batch(&requests).unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).unwrap();
    let results = parsed.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 4);

    let direct0 = engine.run(&requests[0].query).unwrap().to_json_string();
    assert_eq!(
        deterministic_parts(&results[0].to_string()),
        deterministic_parts(&direct0)
    );
    assert_eq!(
        results[1]
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("unknown-engine")
    );
    assert_eq!(
        results[2]
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("keyword")
    );
    assert!(results[3].get("answers").is_some());

    // A malformed batch body fails as a whole with 400.
    let (status, body) = client.post("/batch", "{\"not\":\"an array\"}").unwrap();
    assert_eq!(status, 400);
    assert_eq!(
        Json::parse(&body)
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("json")
    );
    handle.shutdown();
}

#[test]
fn error_paths_return_typed_json_bodies() {
    let registry = Arc::new(EngineRegistry::new());
    registry.insert("po", small_engine(5));
    let handle = start(Arc::clone(&registry), 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    // Malformed JSON body -> 400 {"error":{"kind":"json",...}}.
    let (status, body) = client.post("/query/po", "{not json").unwrap();
    assert_eq!(status, 400, "{body}");
    let kind = |body: &str| {
        Json::parse(body)
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    assert_eq!(kind(&body), "json");

    // Structurally bad query -> 400 "json"; bad twig -> 400 "parse".
    let (status, body) = client.post("/query/po", "{\"type\":\"nope\"}").unwrap();
    assert_eq!(status, 400);
    assert_eq!(kind(&body), "json");
    let (status, body) = client
        .post("/query/po", "{\"pattern\":\"A[\",\"type\":\"ptq\"}")
        .unwrap();
    assert_eq!(status, 400);
    assert_eq!(kind(&body), "parse");

    // Unknown engine -> 404.
    let ptq = Query::ptq(TwigPattern::parse("//Qty").unwrap());
    let (status, body) = client.query("missing", &ptq).unwrap();
    assert_eq!(status, 404);
    assert_eq!(kind(&body), "unknown-engine");

    // Unknown route -> 404; unknown method -> 405.
    let (status, _) = client.get("/nope").unwrap();
    assert_eq!(status, 404);
    let (status, body) = client.post("/healthz", "{}").unwrap();
    assert_eq!(status, 404, "{body}");

    // The connection survives every error above (all keep-alive).
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let registry = Arc::new(EngineRegistry::new());
    registry.insert("po", small_engine(6));
    let server = Server::bind(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_body_bytes: 256,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.start();

    let mut client = Client::connect(handle.addr()).unwrap();
    let huge = format!(
        "{{\"pattern\":\"//{}\",\"type\":\"ptq\"}}",
        "Q".repeat(1024)
    );
    let (status, body) = client.post("/query/po", &huge).unwrap();
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"kind\":\"usage\""), "{body}");

    // The oversized request closes its connection (the body was never
    // read); a fresh connection serves normally.
    let mut fresh = Client::connect(handle.addr()).unwrap();
    let (status, _) = fresh.get("/healthz").unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

#[test]
fn engines_and_stats_endpoints_report_traffic() {
    let dir = std::env::temp_dir().join(format!("uxm-server-http-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(EngineRegistry::new().snapshot_dir(&dir));
    let engine = registry.insert("po", small_engine(8));
    registry.save("po").unwrap();
    registry.insert("cold", small_engine(9));
    registry.save("cold").unwrap();
    registry.remove("cold"); // on disk only: listed as non-resident

    let handle = start(Arc::clone(&registry), 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let ptq = Query::ptq(TwigPattern::parse("PO//Qty").unwrap());
    for _ in 0..3 {
        let (status, _) = client.query("po", &ptq).unwrap();
        assert_eq!(status, 200);
    }
    let (status, _) = client.query("nope", &ptq).unwrap();
    assert_eq!(status, 404);

    let (status, body) = client.get("/engines").unwrap();
    assert_eq!(status, 200);
    let parsed = Json::parse(&body).unwrap();
    let engines = parsed.get("engines").unwrap().as_arr().unwrap();
    let entry = |name: &str| {
        engines
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some(name))
            .unwrap_or_else(|| panic!("engine {name} listed in {body}"))
    };
    assert_eq!(entry("po").get("resident").unwrap(), &Json::Bool(true));
    assert_eq!(
        entry("po").get("approx_bytes").unwrap().as_usize(),
        Some(engine.approx_bytes())
    );
    assert_eq!(entry("cold").get("resident").unwrap(), &Json::Bool(false));

    let (status, body) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    let stats = Json::parse(&body).unwrap();
    let po = stats.get("engines").unwrap().get("po").unwrap();
    assert_eq!(po.get("requests").unwrap().as_usize(), Some(3));
    assert_eq!(po.get("errors").unwrap().as_usize(), Some(0));
    let plans = po.get("plans").unwrap();
    assert_eq!(
        plans.get("naive").unwrap().as_usize().unwrap()
            + plans.get("block-tree").unwrap().as_usize().unwrap()
            + plans.get("compiled").unwrap().as_usize().unwrap(),
        3,
        "every request chose a plan: {body}"
    );
    let backends = po.get("backends").unwrap();
    assert_eq!(
        backends.get("naive").unwrap().as_usize().unwrap()
            + backends.get("block-tree").unwrap().as_usize().unwrap()
            + backends.get("compiled").unwrap().as_usize().unwrap(),
        3,
        "every request ran a backend: {body}"
    );
    let prog = po.get("program_cache").unwrap();
    let (hits, misses) = (
        prog.get("hits").unwrap().as_usize().unwrap(),
        prog.get("misses").unwrap().as_usize().unwrap(),
    );
    // One query shape repeated: compiled at most once, replayed after.
    assert!(misses <= 1, "one shape compiles at most once: {body}");
    assert_eq!(
        hits + misses,
        backends.get("compiled").unwrap().as_usize().unwrap(),
        "every compiled run is a cache hit or miss: {body}"
    );
    let latency = po.get("latency_us").unwrap();
    assert_eq!(latency.get("count").unwrap().as_usize(), Some(3));
    assert!(latency.get("p50").unwrap().as_usize().unwrap() > 0);
    // Unknown-engine traffic is server-level, not a per-engine entry.
    assert!(stats.get("engines").unwrap().get("nope").is_none());
    let server_stats = stats.get("server").unwrap();
    assert!(server_stats.get("http_errors").unwrap().as_usize().unwrap() >= 1);
    assert!(server_stats.get("requests").unwrap().as_usize().unwrap() >= 4);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `"explain": true` on `/query` adds the plan + compiled program
/// listing to the response without changing the answers, and the
/// envelope member never leaks into the strict query parser.
#[test]
fn query_with_explain_reports_plan_and_program() {
    let registry = Arc::new(EngineRegistry::new());
    registry.insert("po", small_engine(8));
    let handle = start(Arc::clone(&registry), 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let query = Query::ptq(TwigPattern::parse("PO//Qty").unwrap());
    let plain = {
        let (status, body) = client.query("po", &query).unwrap();
        assert_eq!(status, 200, "{body}");
        body
    };

    let Json::Obj(mut members) = query.to_json() else {
        panic!("query JSON is an object")
    };
    members.insert(0, ("explain".into(), Json::Bool(true)));
    let (status, body) = client
        .post("/query/po", &Json::Obj(members).to_string())
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).unwrap();
    let explain = parsed.get("explain").expect("explain object present");
    assert_eq!(
        explain.get("evaluator").unwrap().as_str(),
        Json::parse(&plain)
            .unwrap()
            .get("stats")
            .unwrap()
            .get("evaluator")
            .unwrap()
            .as_str(),
        "explain names the evaluator the run reports: {body}"
    );
    let program = explain.get("program").unwrap().as_arr().unwrap();
    let listing = program
        .iter()
        .map(|l| l.as_str().unwrap())
        .collect::<Vec<_>>()
        .join("\n");
    for op in ["init-bits", "intersect-csr", "fold-prob", "emit-answers"] {
        assert!(listing.contains(op), "listing misses {op}: {listing}");
    }
    // The answers subtree is unaffected by the envelope option.
    assert_eq!(
        parsed.get("answers").unwrap().to_string(),
        Json::parse(&plain)
            .unwrap()
            .get("answers")
            .unwrap()
            .to_string()
    );

    // A non-boolean explain value is a 400, not a silent ignore.
    let (status, body) = client
        .post(
            "/query/po",
            "{\"explain\":1,\"kind\":\"ptq\",\"pattern\":\"PO//Qty\"}",
        )
        .unwrap();
    assert_eq!(status, 400, "{body}");

    handle.shutdown();
}

#[test]
fn graceful_shutdown_completes_in_flight_requests() {
    let registry = Arc::new(EngineRegistry::new());
    // A heavier engine so requests are reliably still in flight when
    // shutdown lands.
    let engine = registry.insert("d7", dataset_engine(DatasetId::D7, 30, 1500));
    let handle = start(Arc::clone(&registry), 4);
    let addr = handle.addr();

    let query = Query::ptq(paper_queries()[0].clone()).with_evaluator(EvaluatorHint::Naive);
    let truth = engine.run(&query).unwrap().to_json_string();

    let clients: Vec<_> = (0..4)
        .map(|_| {
            let query = query.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.query("d7", &query).unwrap()
            })
        })
        .collect();
    // Let the requests reach the workers, then stop the server while
    // they are (very likely) still evaluating.
    std::thread::sleep(std::time::Duration::from_millis(5));
    handle.shutdown();

    for c in clients {
        let (status, body) = c.join().expect("client thread");
        assert_eq!(status, 200, "in-flight request was answered: {body}");
        assert_eq!(
            deterministic_parts(&body),
            deterministic_parts(&truth),
            "in-flight answer is the ground truth"
        );
    }

    // After shutdown the port no longer accepts (or resets immediately).
    let refused = match std::net::TcpStream::connect(addr) {
        Err(_) => true,
        Ok(stream) => {
            use std::io::Read;
            stream
                .set_read_timeout(Some(std::time::Duration::from_millis(200)))
                .unwrap();
            let mut reader = std::io::BufReader::new(stream);
            let mut buf = [0u8; 1];
            // A closed listener either refuses outright or the accepted
            // socket (OS backlog) dies without a server behind it.
            matches!(reader.read(&mut buf), Ok(0) | Err(_))
        }
    };
    assert!(refused, "no server behind the port after shutdown");
}

#[test]
fn idle_keep_alive_connection_cannot_starve_other_clients() {
    let registry = Arc::new(EngineRegistry::new());
    registry.insert("po", small_engine(12));
    // ONE worker and a short keep-alive budget: an idle persistent
    // client must release the worker, not pin it forever.
    let server = Server::bind(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            keep_alive_timeout: std::time::Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.start();

    // Client A takes the only worker and goes idle on a live connection.
    let mut idle = Client::connect(handle.addr()).unwrap();
    let (status, _) = idle.get("/healthz").unwrap();
    assert_eq!(status, 200);

    // Client B arrives while A still holds the worker; once A's
    // keep-alive budget runs out the worker must pick B up.
    let mut waiting = Client::connect(handle.addr()).unwrap();
    let start = std::time::Instant::now();
    let (status, _) = waiting.get("/healthz").unwrap();
    assert_eq!(status, 200, "second client served despite idle first");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(3),
        "served within the keep-alive budget, not starved: {:?}",
        start.elapsed()
    );

    // The idle connection was closed server-side; a request on it now
    // fails (and that is the contract — reconnect and carry on).
    assert!(idle.get("/healthz").is_err(), "idle connection was reaped");
    handle.shutdown();
}

/// A deterministic single-mapping engine whose aggregate values are
/// known exactly: three numeric `V` nodes (1, 2, 3) under one certain
/// mapping `V ↔ QTY`.
fn tiny_counted_engine() -> QueryEngine {
    let source = Schema::parse_outline("S(P(V))").unwrap();
    let target = Schema::parse_outline("T(QTY)").unwrap();
    let v = source.nodes_with_label("V")[0];
    let qty = target.nodes_with_label("QTY")[0];
    let pm = PossibleMappings::from_pairs(source, target, vec![(vec![(v, qty)], 1.0)]);
    let doc = parse_document("<S><P><V>1</V><V>2</V><V>3</V></P></S>").unwrap();
    QueryEngine::build(pm, doc, &BlockTreeConfig::default())
}

/// Golden `/aggregate` bodies: the endpoint's whole response is pinned
/// byte-exact — including the docs/wire-format.md example — and the
/// two-engine form pins the name-ascending entry order plus the merged
/// fleet value. `/aggregate` carries no stats block, so whole bodies
/// are stable.
#[test]
fn aggregate_endpoint_bodies_are_byte_exact() {
    let registry = Arc::new(EngineRegistry::new());
    // Insertion order is deliberately descending: the response must
    // sort entries by name regardless.
    registry.insert("d5", tiny_counted_engine());
    registry.insert("aa", tiny_counted_engine());
    let handle = start(Arc::clone(&registry), 2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let query = |func: AggFunc| {
        Query::aggregate(TwigPattern::parse("//QTY").unwrap(), func).to_json_string()
    };

    // The docs/wire-format.md example, byte for byte.
    let body = format!(
        "{{\"engines\":[\"d5\"],\"query\":{}}}",
        query(AggFunc::Count)
    );
    let (status, got) = client.post("/aggregate", &body).unwrap();
    assert_eq!(status, 200, "{got}");
    assert_eq!(
        got,
        "{\"engines\":[{\"engine\":\"d5\",\"marginal\":3,\"rows\":[\
         {\"mapping\":0,\"probability\":1,\"value\":3}]}],\"func\":\"count\",\"value\":3}"
    );

    // Default engine set: entries name-ascending, value merged over
    // them in that order (sum adds: 6 + 6).
    let body = format!("{{\"query\":{}}}", query(AggFunc::Sum));
    let (status, got) = client.post("/aggregate", &body).unwrap();
    assert_eq!(status, 200, "{got}");
    assert_eq!(
        got,
        "{\"engines\":[\
         {\"engine\":\"aa\",\"marginal\":6,\"rows\":[{\"mapping\":0,\"probability\":1,\"value\":6}]},\
         {\"engine\":\"d5\",\"marginal\":6,\"rows\":[{\"mapping\":0,\"probability\":1,\"value\":6}]}],\
         \"func\":\"sum\",\"value\":12}"
    );

    // min / max take the extremum across engines.
    for (func, value) in [(AggFunc::Min, 1), (AggFunc::Max, 3)] {
        let body = format!("{{\"query\":{}}}", query(func));
        let (status, got) = client.post("/aggregate", &body).unwrap();
        assert_eq!(status, 200, "{got}");
        let parsed = Json::parse(&got).unwrap();
        assert_eq!(
            parsed.get("value").unwrap().as_f64(),
            Some(value as f64),
            "{func}: {got}"
        );
    }

    // A non-aggregate query on this endpoint is a typed error.
    let bad = format!(
        "{{\"query\":{}}}",
        Query::ptq(TwigPattern::parse("//QTY").unwrap()).to_json_string()
    );
    let (status, got) = client.post("/aggregate", &bad).unwrap();
    assert_eq!(status, 400, "{got}");
    assert_eq!(
        Json::parse(&got)
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str(),
        Some("invalid-query")
    );
    handle.shutdown();
}
