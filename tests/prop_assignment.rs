//! Property-based tests for the assignment substrate: the solver, Murty
//! ranking, and partition-based generation are checked against exhaustive
//! enumeration on arbitrary small bipartite problems.

use proptest::prelude::*;
use uxm::assignment::bipartite::Bipartite;
use uxm::assignment::brute::{brute_top_h, enumerate_all};
use uxm::assignment::murty::{ranked_assignments, RankVariant};
use uxm::assignment::partition::{murty_top_h_mappings, partition, partition_top_h};
use uxm::assignment::solver::solve;
use uxm::matching::{Correspondence, SchemaMatching};
use uxm::xml::{Schema, SchemaNodeId};

/// Strategy: a random sparse bipartite with ≤5 lefts and ≤4 targets.
fn bipartite_strategy() -> impl Strategy<Value = Bipartite> {
    proptest::collection::vec(proptest::collection::vec((0u32..4, 1u32..=100), 0..4), 1..6)
        .prop_map(|rows| {
            let edges = rows
                .into_iter()
                .map(|row| {
                    let mut dedup: Vec<(u32, f64)> = Vec::new();
                    for (r, w) in row {
                        if !dedup.iter().any(|&(rr, _)| rr == r) {
                            dedup.push((r, w as f64 / 100.0));
                        }
                    }
                    dedup
                })
                .collect();
            Bipartite::from_edges(4, edges)
        })
}

/// Strategy: a random sparse schema matching (≤6 sources, ≤5 targets).
fn matching_strategy() -> impl Strategy<Value = SchemaMatching> {
    proptest::collection::vec((1u32..=6, 1u32..=5, 1u32..=100), 0..12).prop_map(|triples| {
        let source = Schema::parse_outline("R(S1 S2 S3 S4 S5 S6)").unwrap();
        let target = Schema::parse_outline("Q(T1 T2 T3 T4 T5)").unwrap();
        let corrs = triples
            .into_iter()
            .map(|(s, t, w)| Correspondence {
                source: SchemaNodeId(s),
                target: SchemaNodeId(t),
                score: w as f64 / 100.0,
            })
            .collect();
        SchemaMatching::new(source, target, corrs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_finds_optimum(bp in bipartite_strategy()) {
        let a = solve(&bp);
        prop_assert!(bp.is_valid(&a));
        let best = enumerate_all(&bp).first().map(|x| x.score).unwrap_or(0.0);
        prop_assert!((a.score - best).abs() < 1e-9, "{} vs {}", a.score, best);
    }

    #[test]
    fn murty_matches_brute_force(bp in bipartite_strategy(), h in 1usize..10) {
        for variant in [RankVariant::MurtyEager, RankVariant::PascoalLazy] {
            let ranked = ranked_assignments(&bp, h, variant);
            let brute = brute_top_h(&bp, h);
            prop_assert_eq!(ranked.len(), brute.len());
            for (r, b) in ranked.iter().zip(&brute) {
                prop_assert!((r.score - b.score).abs() < 1e-9);
                prop_assert!(bp.is_valid(r));
            }
        }
    }

    #[test]
    fn murty_scores_non_increasing(bp in bipartite_strategy()) {
        let ranked = ranked_assignments(&bp, 12, RankVariant::PascoalLazy);
        for w in ranked.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-9);
        }
    }

    #[test]
    fn partition_equals_whole_graph(m in matching_strategy(), h in 1usize..8) {
        if m.is_empty() {
            return Ok(());
        }
        let via_partition = partition_top_h(&m, h);
        let direct = murty_top_h_mappings(&m, h, RankVariant::MurtyEager);
        prop_assert_eq!(via_partition.len(), direct.len());
        for (p, d) in via_partition.iter().zip(&direct) {
            prop_assert!((p.score - d.score).abs() < 1e-9, "{} vs {}", p.score, d.score);
        }
    }

    #[test]
    fn partitions_cover_and_are_disjoint(m in matching_strategy()) {
        let parts = partition(&m);
        let total: usize = parts.iter().map(|p| p.corrs.len()).sum();
        prop_assert_eq!(total, m.capacity());
        // No source appears in two partitions.
        let mut all_sources: Vec<_> = parts.iter().flat_map(|p| p.sources()).collect();
        let before = all_sources.len();
        all_sources.sort_unstable();
        all_sources.dedup();
        prop_assert_eq!(before, all_sources.len());
        // No target appears in two partitions.
        let mut all_targets: Vec<_> = parts.iter().flat_map(|p| p.targets()).collect();
        let before = all_targets.len();
        all_targets.sort_unstable();
        all_targets.dedup();
        prop_assert_eq!(before, all_targets.len());
    }

    #[test]
    fn ranked_mappings_are_valid_functions(m in matching_strategy(), h in 1usize..8) {
        for rm in partition_top_h(&m, h) {
            let mut targets: Vec<_> = rm.pairs.iter().map(|p| p.1).collect();
            targets.sort_unstable();
            let before = targets.len();
            targets.dedup();
            prop_assert_eq!(before, targets.len());
            // score equals the sum of correspondence scores
            let sum: f64 = rm
                .pairs
                .iter()
                .map(|&(s, t)| m.score(s, t).expect("pair from matching"))
                .sum();
            prop_assert!((sum - rm.score).abs() < 1e-9);
        }
    }
}
