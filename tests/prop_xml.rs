//! Robustness properties for the XML substrate: the parser never panics
//! on arbitrary input, well-formed documents roundtrip through the writer,
//! and generated documents always conform to their schema.

use proptest::prelude::*;
use uxm::xml::{parse_document, writer, DocGenConfig, Document, PathIndex, Schema};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse_document(&input);
    }

    #[test]
    fn parser_never_panics_on_taglike_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b x='1'>".to_string()),
                Just("<c/>".to_string()),
                Just("&amp;".to_string()),
                Just("&bogus;".to_string()),
                Just("text".to_string()),
                Just("<!-- c -->".to_string()),
                Just("<?pi?>".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
            ],
            0..20,
        )
    ) {
        let _ = parse_document(&parts.concat());
    }

    #[test]
    fn writer_roundtrips_generated_documents(seed in 0u64..200, nodes in 5usize..120) {
        let schema = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) Item*(No Qty Price) Note*)",
        ).unwrap();
        let cfg = DocGenConfig { target_nodes: nodes, max_repeat: 3, text_prob: 0.7 };
        let doc = Document::generate(&schema, &cfg, seed);
        let xml = writer::to_xml(&doc);
        let back = parse_document(&xml).expect("own output parses");
        prop_assert_eq!(doc.len(), back.len());
        prop_assert_eq!(writer::to_xml(&back), xml);
        // pretty form parses to the same structure too
        let pretty = writer::to_xml_pretty(&doc, 2);
        let back2 = parse_document(&pretty).expect("pretty output parses");
        prop_assert_eq!(back2.len(), doc.len());
    }

    #[test]
    fn generated_documents_conform(seed in 0u64..100) {
        let schema = Schema::parse_outline(
            "R(A(B C*) D*(E F(G)) H)",
        ).unwrap();
        let cfg = DocGenConfig { target_nodes: 80, max_repeat: 4, text_prob: 0.5 };
        let doc = Document::generate(&schema, &cfg, seed);
        let schema_paths: std::collections::HashSet<String> =
            schema.ids().map(|id| schema.path(id).replace('.', "/")).collect();
        for id in doc.ids() {
            prop_assert!(schema_paths.contains(&doc.path(id)));
        }
        // the path index agrees with per-node path computation
        let index = PathIndex::new(&doc);
        for id in doc.ids() {
            prop_assert!(index.nodes(&doc.path(id)).contains(&id));
        }
    }

    #[test]
    fn outline_roundtrip_for_random_trees(
        script in proptest::collection::vec((0u8..5, prop::bool::ANY, prop::bool::ANY), 1..30)
    ) {
        // Build a random schema programmatically, render to outline, reparse.
        let mut schema = Schema::new("t", "Root");
        let mut cursor = vec![schema.root()];
        for (label, descend, repeatable) in script {
            let parent = *cursor.last().unwrap();
            let child = schema.add_child_full(
                parent,
                format!("N{label}"),
                repeatable,
            );
            if descend {
                cursor.push(child);
            } else if cursor.len() > 1 {
                cursor.pop();
            }
        }
        let outline = schema.to_outline();
        let back = Schema::parse_outline(&outline).expect("own outline parses");
        prop_assert_eq!(back.to_outline(), outline);
        prop_assert_eq!(back.len(), schema.len());
    }
}
