//! The canonical JSON wire format of the unified query API.
//!
//! The contract `uxm batch` files and `uxm query --json` rely on:
//! serialize → parse → serialize is **byte-stable** for every [`Query`]
//! and [`BatchQuery`] (the old `Request` `Display`/parse asymmetry is
//! gone), and emitted responses are canonical JSON (re-parsing and
//! re-writing reproduces the same bytes).

use proptest::prelude::*;
use uxm::core::aggregate::{AggFunc, AggRow, AggregateResult};
use uxm::core::api::{EvaluatorHint, Granularity, Query};
use uxm::core::json::Json;
use uxm::core::mapping::MappingId;
use uxm::core::registry::BatchQuery;
use uxm::twig::{Axis, PredOp, PredTarget, TwigPattern, ValuePred};

/// Builds an arbitrary twig pattern from a generated spec: node `i + 1`
/// attaches under node `parent % (i + 1)` with the given axis, label
/// drawn from a fixed pool, and an optional text predicate on the last
/// node.
fn twig_from_spec(spec: &[(u8, u8, bool)], pred: Option<&str>) -> TwigPattern {
    const LABELS: [&str; 8] = [
        "Order", "Buyer", "Name", "POLine", "Qty", "UP", "X_1", "a-b:c",
    ];
    let mut nodes = vec![];
    let (l0, _, d0) = spec.first().copied().unwrap_or((0, 0, true));
    let mut q = TwigPattern::single(
        LABELS[l0 as usize % LABELS.len()],
        if d0 { Axis::Descendant } else { Axis::Child },
    );
    nodes.push(q.root());
    for &(label, parent, descendant) in spec.iter().skip(1) {
        let parent = nodes[parent as usize % nodes.len()];
        let id = q.add_child(
            parent,
            LABELS[label as usize % LABELS.len()],
            if descendant {
                Axis::Descendant
            } else {
                Axis::Child
            },
        );
        nodes.push(id);
    }
    if let Some(v) = pred {
        let last = *nodes.last().expect("at least the root");
        q.set_text_eq(last, v);
    }
    q
}

fn assert_byte_stable(query: &Query) {
    let once = query.to_json_string();
    let parsed =
        Query::from_json_str(&once).unwrap_or_else(|e| panic!("reparse of {once} failed: {e}"));
    assert_eq!(&parsed, query, "lossless: {once}");
    assert_eq!(parsed.to_json_string(), once, "byte-stable: {once}");
}

#[test]
fn every_query_kind_roundtrips_byte_stably() {
    let q = TwigPattern::parse("Order/POLine[./LineNo][.//UP]/Quantity").unwrap();
    let variants = [
        Query::ptq(q.clone()),
        Query::ptq_nodes(q.clone()),
        Query::topk(q.clone(), 10),
        Query::keyword(vec!["UP".into(), "Bob Smith".into(), "é✓".into()]),
        Query::ptq(q.clone())
            .with_evaluator(EvaluatorHint::BlockTree)
            .with_granularity(Granularity::Distinct)
            .with_min_probability(0.125),
        Query::topk(TwigPattern::parse("//A[.='quote\"and\\slash']").unwrap(), 1)
            .with_evaluator(EvaluatorHint::Naive),
        // The grown query language: value predicates (string, numeric,
        // attribute), wildcards, and aggregates.
        Query::ptq(TwigPattern::parse("//A[contains(.,'x y')][.>=1.5]/*").unwrap()),
        Query::ptq(TwigPattern::parse("//A[@id='7']/B[@n<-2][.<=0.5]").unwrap()),
        Query::topk(TwigPattern::parse("Order//*[.>10]").unwrap(), 4),
        Query::aggregate(TwigPattern::parse("//Line//Qty").unwrap(), AggFunc::Count),
        Query::aggregate(
            TwigPattern::parse("//Line/Qty[@unit='kg']").unwrap(),
            AggFunc::Sum,
        )
        .with_evaluator(EvaluatorHint::Compiled)
        .with_min_probability(0.25),
        Query::aggregate(TwigPattern::parse("//Qty[.>0]").unwrap(), AggFunc::Min),
        Query::aggregate(TwigPattern::parse("//Qty").unwrap(), AggFunc::Max),
    ];
    for query in &variants {
        assert_byte_stable(query);
    }
}

#[test]
fn batch_lines_roundtrip_byte_stably() {
    let q = TwigPattern::parse("Order[./Buyer/Contact][./DeliverTo//City]//BPID").unwrap();
    for request in [
        BatchQuery::ptq("orders", q.clone()),
        BatchQuery::basic("orders", q.clone()),
        BatchQuery::topk("invoices", q.clone(), 3),
        BatchQuery::keyword("kv", vec!["City".into()]),
        BatchQuery::new(
            "orders",
            Query::ptq(q).with_granularity(Granularity::Distinct),
        ),
    ] {
        let once = request.to_json_string();
        let parsed = BatchQuery::from_json_str(&once).unwrap();
        assert_eq!(parsed, request);
        assert_eq!(parsed.to_json_string(), once, "byte-stable: {once}");
    }
}

#[test]
fn wire_format_is_strict() {
    // Unknown keys, wrong shapes, and kind/field mismatches are rejected
    // rather than silently dropped (silent drops would break
    // byte-stability).
    for bad in [
        "{\"engine\":\"po\",\"query\":{\"pattern\":\"//A\",\"type\":\"ptq\"},\"extra\":0}",
        "{\"engine\":7,\"query\":{\"pattern\":\"//A\",\"type\":\"ptq\"}}",
        "{\"query\":{\"pattern\":\"//A\",\"type\":\"ptq\"}}",
    ] {
        assert!(BatchQuery::from_json_str(bad).is_err(), "{bad}");
    }
    for bad in [
        "{\"pattern\":\"//A\",\"terms\":[\"x\"],\"type\":\"ptq\"}",
        "{\"k\":1,\"terms\":[\"x\"],\"type\":\"keyword\"}",
        "{\"options\":{\"min_probability\":\"high\"},\"pattern\":\"//A\",\"type\":\"ptq\"}",
        // Aggregate strictness: the func is mandatory, valid, and only
        // legal on aggregate queries.
        "{\"pattern\":\"//A\",\"type\":\"aggregate\"}",
        "{\"func\":\"avg\",\"pattern\":\"//A\",\"type\":\"aggregate\"}",
        "{\"func\":\"count\",\"pattern\":\"//A\",\"type\":\"ptq\"}",
        "{\"func\":\"count\",\"k\":1,\"pattern\":\"//A\",\"type\":\"topk\"}",
        // Malformed predicates fail at pattern parse, not silently.
        "{\"pattern\":\"//A[.>>2]\",\"type\":\"ptq\"}",
        "{\"pattern\":\"//A[@='x']\",\"type\":\"ptq\"}",
    ] {
        assert!(Query::from_json_str(bad).is_err(), "{bad}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary twigs with arbitrary options always round-trip to the
    /// same bytes.
    #[test]
    fn random_queries_roundtrip_byte_stably(
        spec in proptest::collection::vec((0u8..16, 0u8..16, proptest::prop::bool::ANY), 1..6),
        pred in proptest::prop::bool::ANY,
        value_pred in (proptest::prop::bool::ANY, 0u8..6, proptest::prop::bool::ANY, 0i32..100),
        kind in 0u8..4,
        func in 0u8..4,
        k in 0usize..50,
        hint in 0u8..3,
        distinct in proptest::prop::bool::ANY,
        // Sixteenths stay exact in binary floating point AND in the
        // shortest-decimal rendering, but exactness is not required for
        // byte stability — any f64 surviving one text round trip is a
        // fixpoint afterwards.
        min_p16 in 0u8..=16,
    ) {
        // Normalize to parse order: generated node numbering is arbitrary
        // (children can attach to earlier nodes late), while `parse`
        // numbers nodes in render order. The rendered *bytes* are
        // identical either way — structural equality needs the normal
        // form.
        let mut generated = twig_from_spec(&spec, pred.then_some("some value 42"));
        if let (true, op, on_attr, n) = value_pred {
            let x = n as f64 / 4.0;
            let root = generated.root();
            generated.add_pred(
                root,
                ValuePred {
                    target: if on_attr {
                        PredTarget::Attr("id".into())
                    } else {
                        PredTarget::Text
                    },
                    op: match op {
                        0 => PredOp::Eq("v 1".into()),
                        1 => PredOp::Contains("x/y \"z\"".into()),
                        2 => PredOp::Lt(x),
                        3 => PredOp::Le(x),
                        4 => PredOp::Gt(x),
                        _ => PredOp::Ge(x),
                    },
                },
            );
        }
        let pattern = TwigPattern::parse(&generated.to_string())
            .map_err(|e| TestCaseError::fail(format!("{generated}: {e}")))?;
        let mut query = match kind {
            0 => Query::ptq(pattern),
            1 => Query::ptq_nodes(pattern),
            2 => Query::topk(pattern, k),
            _ => Query::aggregate(pattern, match func {
                0 => AggFunc::Count,
                1 => AggFunc::Sum,
                2 => AggFunc::Min,
                _ => AggFunc::Max,
            }),
        };
        query = query.with_evaluator(match hint {
            0 => EvaluatorHint::Auto,
            1 => EvaluatorHint::Naive,
            _ => EvaluatorHint::BlockTree,
        });
        if distinct {
            query = query.with_granularity(Granularity::Distinct);
        }
        query = query.with_min_probability(min_p16 as f64 / 16.0);

        let once = query.to_json_string();
        let parsed = Query::from_json_str(&once)
            .map_err(|e| TestCaseError::fail(format!("reparse of {once}: {e}")))?;
        prop_assert_eq!(&parsed, &query, "lossless: {}", once);
        prop_assert_eq!(parsed.to_json_string(), once.clone(), "byte-stable: {}", once);

        // And wrapped in a batch line.
        let line = BatchQuery::new("engine-1", query).to_json_string();
        let back = BatchQuery::from_json_str(&line)
            .map_err(|e| TestCaseError::fail(format!("batch reparse of {line}: {e}")))?;
        prop_assert_eq!(back.to_json_string(), line);
    }

    /// The canonical JSON writer is a fixpoint on arbitrary parseable
    /// input built from our own values.
    #[test]
    fn canonical_json_is_a_fixpoint(
        spec in proptest::collection::vec((0u8..16, 0u8..16, proptest::prop::bool::ANY), 1..5),
    ) {
        let q = Query::ptq(twig_from_spec(&spec, None));
        let text = q.to_json_string();
        let reparsed = Json::parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{text}: {e}")))?;
        prop_assert_eq!(reparsed.to_string(), text);
    }
}

/// The byte-exact examples printed in `docs/wire-format.md` — if one of
/// these assertions moves, the docs page must move with it.
#[test]
fn docs_wire_format_examples_are_byte_exact() {
    let ptq = Query::ptq(TwigPattern::parse("//Line//Qty").unwrap());
    assert_eq!(
        ptq.to_json_string(),
        "{\"options\":{\"evaluator\":\"auto\",\"granularity\":\"mapping\",\
         \"min_probability\":0},\"pattern\":\"//Line//Qty\",\"type\":\"ptq\"}"
    );

    let topk = Query::topk(TwigPattern::parse("PO/Line[./No]//Qty").unwrap(), 3)
        .with_evaluator(EvaluatorHint::Naive)
        .with_granularity(Granularity::Distinct)
        .with_min_probability(0.25);
    assert_eq!(
        topk.to_json_string(),
        "{\"k\":3,\"options\":{\"evaluator\":\"naive\",\"granularity\":\"distinct\",\
         \"min_probability\":0.25},\"pattern\":\"PO/Line[./No]//Qty\",\"type\":\"topk\"}"
    );

    let keyword = Query::keyword(vec!["Qty".into(), "order".into()]);
    assert_eq!(
        keyword.to_json_string(),
        "{\"options\":{\"evaluator\":\"auto\",\"granularity\":\"mapping\",\
         \"min_probability\":0},\"terms\":[\"Qty\",\"order\"],\"type\":\"keyword\"}"
    );

    let line = BatchQuery::new(
        "orders",
        Query::ptq(TwigPattern::parse("//Line//Qty").unwrap()),
    );
    assert_eq!(
        line.to_json_string(),
        "{\"engine\":\"orders\",\"query\":{\"options\":{\"evaluator\":\"auto\",\
         \"granularity\":\"mapping\",\"min_probability\":0},\"pattern\":\"//Line//Qty\",\
         \"type\":\"ptq\"}}"
    );
}

/// Golden wire fixtures for the grown query language: every new syntax
/// form — value predicates (string / numeric / attribute), wildcards,
/// and the aggregate query kind — pinned byte-exact, pattern string
/// included. These are the `docs/query-language.md` examples.
#[test]
fn query_language_wire_fixtures_are_byte_exact() {
    // Predicates render canonically: `text()` normalizes to `.`, floats
    // to shortest round trip, and the predicate order is preserved.
    let cases = [
        ("//Line/Qty[.>=1.5]", "//Line/Qty[.>=1.5]"),
        ("//Line/Qty[text()='42']", "//Line/Qty[.='42']"),
        ("//A[contains(.,'x y')]", "//A[contains(.,'x y')]"),
        ("//A[@id='7'][@n<-2]", "//A[@id='7'][@n<-2]"),
        ("//A[.<=2.50]/*", "//A[.<=2.5]/*"),
        ("Order//*[.>10]", "Order//*[.>10]"),
    ];
    for (input, canonical) in cases {
        let pattern = TwigPattern::parse(input).unwrap();
        assert_eq!(pattern.to_string(), canonical, "{input}");
        let query = Query::ptq(pattern);
        assert_eq!(
            query.to_json_string(),
            format!(
                "{{\"options\":{{\"evaluator\":\"auto\",\"granularity\":\"mapping\",\
                 \"min_probability\":0}},\"pattern\":\"{}\",\"type\":\"ptq\"}}",
                canonical.replace('"', "\\\"")
            ),
            "{input}"
        );
        assert_byte_stable(&query);
    }

    // The aggregate query kind, all four functions.
    let qty = TwigPattern::parse("//Line//Qty").unwrap();
    assert_eq!(
        Query::aggregate(qty.clone(), AggFunc::Count).to_json_string(),
        "{\"func\":\"count\",\"options\":{\"evaluator\":\"auto\",\"granularity\":\"mapping\",\
         \"min_probability\":0},\"pattern\":\"//Line//Qty\",\"type\":\"aggregate\"}"
    );
    assert_eq!(
        Query::aggregate(qty.clone(), AggFunc::Sum)
            .with_evaluator(EvaluatorHint::Compiled)
            .with_min_probability(0.25)
            .to_json_string(),
        "{\"func\":\"sum\",\"options\":{\"evaluator\":\"compiled\",\"granularity\":\"mapping\",\
         \"min_probability\":0.25},\"pattern\":\"//Line//Qty\",\"type\":\"aggregate\"}"
    );
    for (func, name) in [(AggFunc::Min, "min"), (AggFunc::Max, "max")] {
        assert_eq!(
            Query::aggregate(qty.clone(), func).to_json_string(),
            format!(
                "{{\"func\":\"{name}\",\"options\":{{\"evaluator\":\"auto\",\
                 \"granularity\":\"mapping\",\"min_probability\":0}},\
                 \"pattern\":\"//Line//Qty\",\"type\":\"aggregate\"}}"
            )
        );
    }
}

/// The aggregate *response* block, pinned byte-exact: whole numbers
/// render as integers, undefined folds and marginals as `null`, and the
/// row order is ascending mapping id — the shape `/aggregate` embeds in
/// its per-engine entries and `docs/wire-format.md` documents.
#[test]
fn aggregate_response_wire_fixtures_are_byte_exact() {
    let result = AggregateResult {
        func: AggFunc::Sum,
        rows: vec![
            AggRow {
                mapping: MappingId(0),
                probability: 0.5,
                value: Some(17.5),
            },
            AggRow {
                mapping: MappingId(1),
                probability: 0.25,
                value: Some(3.0),
            },
            AggRow {
                mapping: MappingId(2),
                probability: 0.25,
                value: None,
            },
        ],
        marginal: Some((0.5 * 17.5 + 0.25 * 3.0) / 0.75),
    };
    assert_eq!(
        result.to_json().to_string(),
        "{\"func\":\"sum\",\"marginal\":12.666666666666666,\"rows\":[\
         {\"mapping\":0,\"probability\":0.5,\"value\":17.5},\
         {\"mapping\":1,\"probability\":0.25,\"value\":3},\
         {\"mapping\":2,\"probability\":0.25,\"value\":null}]}"
    );

    // A fully undefined column: null marginal, count rows still render.
    let empty = AggregateResult {
        func: AggFunc::Min,
        rows: vec![AggRow {
            mapping: MappingId(4),
            probability: 1.0,
            value: None,
        }],
        marginal: None,
    };
    assert_eq!(
        empty.to_json().to_string(),
        "{\"func\":\"min\",\"marginal\":null,\"rows\":[\
         {\"mapping\":4,\"probability\":1,\"value\":null}]}"
    );
}
