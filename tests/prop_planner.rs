//! Property-based planner differential: over *random* twig patterns (not
//! just the paper's workload), `QueryEngine::run` must return identical
//! answers under the auto plan and both pinned evaluators, for every
//! query kind — the planner can only ever change performance, never
//! results.

use proptest::prelude::*;
use std::sync::OnceLock;
use uxm::core::api::{Answer, EvaluatorHint, Granularity, Query};
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::twig::{Axis, TwigPattern};
use uxm::xml::{DocGenConfig, Document};

/// One shared session (building an engine per proptest case would drown
/// the suite in matcher work). D4 has repeated labels and enough blocks
/// for both evaluators to take interesting paths.
fn engine() -> &'static QueryEngine {
    static ENGINE: OnceLock<QueryEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let d = Dataset::load(DatasetId::D4);
        let pm = PossibleMappings::top_h(&d.matching, 24);
        let doc = Document::generate(
            &d.matching.source,
            &DocGenConfig {
                target_nodes: 400,
                max_repeat: 3,
                text_prob: 0.7,
            },
            0xBEEF,
        );
        let tree = BlockTree::build(
            &d.matching.target,
            &pm,
            &BlockTreeConfig {
                tau: 0.2,
                ..BlockTreeConfig::default()
            },
        );
        QueryEngine::new(pm, doc, tree)
    })
}

/// The label pool random twigs draw from: real target labels (so queries
/// are frequently relevant) plus one label that exists nowhere.
fn label_pool() -> &'static Vec<String> {
    static POOL: OnceLock<Vec<String>> = OnceLock::new();
    POOL.get_or_init(|| {
        let target = &engine().mappings().target;
        let mut pool: Vec<String> = target
            .ids()
            .take(15)
            .map(|id| target.label(id).to_string())
            .collect();
        pool.push("NoSuchLabelAnywhere".to_string());
        pool
    })
}

/// Node `i + 1` attaches under node `parent % (i + 1)` with the given
/// axis; labels index into the pool.
fn twig_from_spec(spec: &[(u8, u8, bool)]) -> TwigPattern {
    let pool = label_pool();
    let (l0, _, d0) = spec.first().copied().unwrap_or((0, 0, true));
    let mut q = TwigPattern::single(
        pool[l0 as usize % pool.len()].clone(),
        if d0 { Axis::Descendant } else { Axis::Child },
    );
    let mut nodes = vec![q.root()];
    for &(label, parent, descendant) in spec.iter().skip(1) {
        let parent = nodes[parent as usize % nodes.len()];
        let id = q.add_child(
            parent,
            pool[label as usize % pool.len()].clone(),
            if descendant {
                Axis::Descendant
            } else {
                Axis::Child
            },
        );
        nodes.push(id);
    }
    q
}

fn answers(query: &Query) -> Vec<Answer> {
    engine().run(query).expect("valid query").answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The planner differential on random twigs: every hint, every query
    /// kind, identical answers.
    #[test]
    fn random_twigs_are_plan_invariant(
        spec in proptest::collection::vec((0u8..16, 0u8..8, proptest::prop::bool::ANY), 1..5),
        k in 0usize..30,
    ) {
        let pattern = twig_from_spec(&spec);
        let hints = [EvaluatorHint::Naive, EvaluatorHint::BlockTree];
        for base in [
            Query::ptq(pattern.clone()),
            Query::ptq_nodes(pattern.clone()),
            Query::topk(pattern.clone(), k),
            Query::ptq(pattern.clone()).with_granularity(Granularity::Distinct),
        ] {
            let auto = answers(&base);
            for hint in hints {
                let pinned = answers(&base.clone().with_evaluator(hint));
                prop_assert_eq!(
                    &pinned,
                    &auto,
                    "{} under {:?} diverged from auto",
                    &base,
                    hint
                );
            }
        }
    }

    /// Warm-cache runs (same engine, repeated query) agree with the
    /// first run regardless of plan — the planner may switch evaluators
    /// once caches warm up, which must be invisible in the answers.
    #[test]
    fn repeated_runs_are_stable(
        spec in proptest::collection::vec((0u8..16, 0u8..8, proptest::prop::bool::ANY), 1..4),
    ) {
        let query = Query::ptq(twig_from_spec(&spec));
        let first = answers(&query);
        for _ in 0..3 {
            prop_assert_eq!(&answers(&query), &first);
        }
    }
}
