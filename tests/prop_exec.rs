//! Property-based compiled-execution differential: over *random* twig
//! patterns (not just the paper's workload), the compiled bytecode
//! backend must return answers **and provenance** identical to the
//! recursive evaluators, for every query kind — and a warm replay from
//! the program cache must be indistinguishable from a cold compile.
//!
//! This is the determinism contract of `docs/execution.md`, pinned over
//! the random shape space: kill-bit semantics (a rewrite coming up
//! empty drops the mapping, exactly like a `None` rewrite), shape
//! grouping, and fold order can only ever change performance, never
//! results.

use proptest::prelude::*;
use std::sync::OnceLock;
use uxm::core::api::{Answer, EvaluatorHint, Granularity, Query};
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::core::planner::Evaluator;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::twig::{Axis, TwigPattern};
use uxm::xml::{DocGenConfig, Document};

/// One shared session (building an engine per proptest case would drown
/// the suite in matcher work). D4 has repeated labels and enough blocks
/// for every backend to take interesting paths.
fn engine() -> &'static QueryEngine {
    static ENGINE: OnceLock<QueryEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let d = Dataset::load(DatasetId::D4);
        let pm = PossibleMappings::top_h(&d.matching, 24);
        let doc = Document::generate(
            &d.matching.source,
            &DocGenConfig {
                target_nodes: 400,
                max_repeat: 3,
                text_prob: 0.7,
            },
            0xBEEF,
        );
        let tree = BlockTree::build(
            &d.matching.target,
            &pm,
            &BlockTreeConfig {
                tau: 0.2,
                ..BlockTreeConfig::default()
            },
        );
        QueryEngine::new(pm, doc, tree)
    })
}

/// The label pool random twigs draw from: real target labels (so queries
/// are frequently relevant) plus one label that exists nowhere — the
/// latter exercises the compiled `clear-bits` path.
fn label_pool() -> &'static Vec<String> {
    static POOL: OnceLock<Vec<String>> = OnceLock::new();
    POOL.get_or_init(|| {
        let target = &engine().mappings().target;
        let mut pool: Vec<String> = target
            .ids()
            .take(15)
            .map(|id| target.label(id).to_string())
            .collect();
        pool.push("NoSuchLabelAnywhere".to_string());
        pool
    })
}

/// Node `i + 1` attaches under node `parent % (i + 1)` with the given
/// axis; labels index into the pool.
fn twig_from_spec(spec: &[(u8, u8, bool)]) -> TwigPattern {
    let pool = label_pool();
    let (l0, _, d0) = spec.first().copied().unwrap_or((0, 0, true));
    let mut q = TwigPattern::single(
        pool[l0 as usize % pool.len()].clone(),
        if d0 { Axis::Descendant } else { Axis::Child },
    );
    let mut nodes = vec![q.root()];
    for &(label, parent, descendant) in spec.iter().skip(1) {
        let parent = nodes[parent as usize % nodes.len()];
        let id = q.add_child(
            parent,
            pool[label as usize % pool.len()].clone(),
            if descendant {
                Axis::Descendant
            } else {
                Axis::Child
            },
        );
        nodes.push(id);
    }
    q
}

fn answers(query: &Query) -> Vec<Answer> {
    engine().run(query).expect("valid query").answers
}

/// Answer equality in these tests is full structural equality — the
/// [`Answer`] type derives `PartialEq` over probability, mapping ids,
/// *and* match node lists, so provenance divergence fails the property.
fn compiled(base: &Query) -> Vec<Answer> {
    answers(&base.clone().with_evaluator(EvaluatorHint::Compiled))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The compiled differential on random twigs: for every query kind,
    /// the compiled backend's answers and provenance equal the naive
    /// recursive reference and whatever the auto plan picked.
    #[test]
    fn compiled_equals_recursive_on_random_twigs(
        spec in proptest::collection::vec((0u8..16, 0u8..8, proptest::prop::bool::ANY), 1..5),
        k in 0usize..30,
    ) {
        let pattern = twig_from_spec(&spec);
        for base in [
            Query::ptq(pattern.clone()),
            Query::ptq_nodes(pattern.clone()),
            Query::topk(pattern.clone(), k),
            Query::ptq(pattern.clone()).with_granularity(Granularity::Distinct),
        ] {
            let naive = answers(&base.clone().with_evaluator(EvaluatorHint::Naive));
            let auto = answers(&base);
            let vm = compiled(&base);
            prop_assert_eq!(&vm, &naive, "{} compiled diverged from naive", &base);
            prop_assert_eq!(&vm, &auto, "{} compiled diverged from auto", &base);
        }
    }

    /// Warm replay ≡ cold compile: running one shape repeatedly through
    /// the compiled backend serves later runs from the program cache
    /// (hits reported, no recompilation) with identical answers.
    #[test]
    fn warm_replay_equals_cold_compile(
        spec in proptest::collection::vec((0u8..16, 0u8..8, proptest::prop::bool::ANY), 1..4),
    ) {
        let query = Query::ptq(twig_from_spec(&spec)).with_evaluator(EvaluatorHint::Compiled);
        let cold = engine().run(&query).expect("valid query");
        prop_assert_eq!(cold.stats.backend, Evaluator::Compiled);
        // The shared engine may have compiled this shape in an earlier
        // case; either way the *next* run must be a pure cache hit.
        for _ in 0..2 {
            let warm = engine().run(&query).expect("valid query");
            prop_assert_eq!(warm.stats.program_cache_hits, 1, "warm run replays");
            prop_assert_eq!(warm.stats.program_cache_misses, 0, "warm run never recompiles");
            prop_assert_eq!(warm.stats.backend, Evaluator::Compiled);
            prop_assert_eq!(&warm.answers, &cold.answers);
        }
    }
}
