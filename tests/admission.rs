//! Regression coverage for the serving-stack bug class this repo's
//! admission-control work hardened: wedged worker pools, slow-loris
//! bodies, silent empty responses, load shedding, and eviction drift.
//!
//! Everything here runs against a real `Server` over real TCP. Each
//! test pins one failure mode:
//!
//! * a panicking request handler used to poison the shared queue
//!   mutexes and wedge every worker — now the panic is contained to
//!   its request, answered as a typed 500, and the pool keeps serving;
//! * a client trickling body bytes forever used to pin a worker — now
//!   the keep-alive deadline covers body bytes too and the connection
//!   is closed;
//! * a response with no `content-length` used to parse as an empty
//!   body — now `server::Client` reports a typed error;
//! * arrivals beyond the connection queue (or one client's fair share)
//!   are shed inline with typed 503/429 bodies and a `Retry-After`
//!   header instead of blocking the accept loop;
//! * an engine evicted while a caller still holds its `Arc` is real
//!   memory the budget no longer sees — `GET /stats` surfaces it as
//!   `unreclaimed_bytes`, and the thrash gate sheds cold hydrations
//!   when eviction churn says the working set exceeds the budget.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use uxm::core::block_tree::BlockTreeConfig;
use uxm::core::engine::QueryEngine;
use uxm::core::json::Json;
use uxm::core::mapping::PossibleMappings;
use uxm::core::registry::{EngineRegistry, RegistryConfig};
use uxm::core::server::{Client, Server, ServerConfig, ServerHandle};
use uxm::matching::Matcher;
use uxm::xml::{DocGenConfig, Document, Schema};

/// The `server_http.rs` fixture engine: a small purchase-order pair.
fn small_engine(seed: u64) -> QueryEngine {
    let source = Schema::parse_outline(
        "Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity UnitPrice))",
    )
    .unwrap();
    let target =
        Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))").unwrap();
    let matching = Matcher::context().match_schemas(&source, &target);
    let pm = PossibleMappings::top_h(&matching, 12);
    let doc = Document::generate(&source, &DocGenConfig::small(), seed);
    QueryEngine::build(pm, doc, &BlockTreeConfig::default())
}

fn start_with(config: ServerConfig) -> (Arc<EngineRegistry>, ServerHandle) {
    let registry = Arc::new(EngineRegistry::new());
    registry.insert("po", small_engine(7));
    let handle = Server::bind(Arc::clone(&registry), "127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .start();
    (registry, handle)
}

const QUERY: &str = r#"{"type":"ptq","pattern":"//Qty"}"#;

/// Reads one full raw HTTP response (status line, headers, body).
fn read_raw_response(stream: &mut TcpStream) -> (u16, Vec<String>, String) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
        headers.push(line.to_ascii_lowercase());
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, headers, String::from_utf8(body).unwrap())
}

fn error_kind(body: &str) -> String {
    Json::parse(body)
        .expect("typed JSON error body")
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .expect("error.kind present")
        .to_string()
}

/// A handler panic answers a typed 500 on that request and nothing
/// else: the same pool — every worker — keeps serving afterwards.
/// Before panics were contained, the first one poisoned the shared
/// queue mutex and wedged the whole pool.
#[test]
fn handler_panic_answers_500_and_pool_keeps_serving() {
    let workers = 3;
    let (_registry, handle) = start_with(ServerConfig {
        workers,
        debug_panic_route: true,
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Panic more times than there are workers: if containment leaked,
    // the pool could not survive this.
    for _ in 0..2 * workers {
        let mut c = Client::connect(addr).unwrap();
        let (status, body) = c.post("/debug/panic", "{}").unwrap();
        assert_eq!(status, 500);
        assert_eq!(error_kind(&body), "internal");
        assert!(body.contains("panicked"), "body: {body}");
    }

    // All workers must still answer — concurrently, so a single
    // surviving worker can't fake it.
    let mut probes: Vec<Client> = (0..workers)
        .map(|_| Client::connect(addr).unwrap())
        .collect();
    for probe in &mut probes {
        let (status, _) = probe.post("/query/po", QUERY).unwrap();
        assert_eq!(status, 200);
    }

    // The server kept count.
    let mut c = Client::connect(addr).unwrap();
    let (_, stats) = c.get("/stats").unwrap();
    let stats = Json::parse(&stats).unwrap();
    let contained = stats
        .get("server")
        .and_then(|s| s.get("panics_contained"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(contained, 2 * workers);
    handle.shutdown();
}

/// A client that sends headers and then trickles (or stalls) the body
/// used to pin its worker forever. The keep-alive deadline now covers
/// body bytes: the connection is dropped and the worker serves others.
#[test]
fn trickled_body_frees_the_worker() {
    let (_registry, handle) = start_with(ServerConfig {
        workers: 1, // the one worker must survive the loris to serve anyone
        keep_alive_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let mut loris = TcpStream::connect(addr).unwrap();
    loris
        .write_all(b"POST /query/po HTTP/1.1\r\ncontent-length: 1000\r\n\r\n")
        .unwrap();
    // Trickle a few bytes, then stall without ever completing the body.
    for _ in 0..3 {
        loris.write_all(b"{").unwrap();
        std::thread::sleep(Duration::from_millis(50));
    }

    // Within the deadline (plus slack), the single worker must be free
    // again and answer a well-behaved client.
    let started = Instant::now();
    let mut c = Client::connect(addr)
        .and_then(|c| c.read_timeout(Duration::from_secs(5)))
        .unwrap();
    let (status, _) = c.post("/query/po", QUERY).unwrap();
    assert_eq!(status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "worker stayed pinned by the trickled body for {:?}",
        started.elapsed()
    );

    // And the loris connection was closed on the server's terms.
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = Vec::new();
    let n = loris.read_to_end(&mut buf).unwrap_or(0);
    let _ = n; // EOF (possibly after 0 bytes): the server hung up
    handle.shutdown();
}

/// A response with no `content-length` header used to silently parse
/// as an empty body (`content_length` defaulted to 0). It is now a
/// typed error naming the missing header.
#[test]
fn missing_content_length_is_a_typed_client_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Drain the request head so the client's write succeeds.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
        }
        stream
            .write_all(b"HTTP/1.1 200 OK\r\nconnection: close\r\n\r\n{\"cut\":1}")
            .unwrap();
    });

    let mut c = Client::connect(addr).unwrap();
    let err = c
        .get("/healthz")
        .expect_err("headerless response must not parse as empty");
    assert!(
        err.to_string().contains("missing content-length"),
        "unexpected error: {err}"
    );
    fake.join().unwrap();
}

/// Arrivals beyond the connection queue are shed inline: a typed 503
/// (`kind: "overloaded"`) with a `Retry-After` header, and the accept
/// loop never blocks.
#[test]
fn queue_overflow_sheds_typed_503_with_retry_after() {
    let (_registry, handle) = start_with(ServerConfig {
        workers: 1,
        queue_depth: 1,
        keep_alive_timeout: Duration::from_secs(3),
        retry_after_ms: 1800, // rounds up to retry-after: 2
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    // Pin the one worker deterministically: a complete keep-alive
    // request whose response we READ back proves the worker is now
    // blocked reading this connection's next request (until the
    // keep-alive deadline) — no settle sleep can prove that.
    let mut pin = TcpStream::connect(addr).unwrap();
    pin.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let (status, headers, _) = read_raw_response(&mut pin);
    assert_eq!(status, 200);
    assert!(
        !headers.iter().any(|h| h == "connection: close"),
        "worker must hold the pinned connection open: {headers:?}"
    );

    // Fill the single queue slot with a half-written request. The
    // accept thread handles arrivals in order and needs no worker, so
    // once the probe below connects, this one is already queued.
    let mut held = TcpStream::connect(addr).unwrap();
    held.write_all(b"POST /query/po HTTP/1.1\r\n").unwrap();

    // The next arrival must be shed — quickly, with the full typed
    // shape on the wire.
    let mut shed = TcpStream::connect(addr).unwrap();
    shed.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let started = Instant::now();
    let (status, headers, body) = read_raw_response(&mut shed);
    assert_eq!(status, 503);
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "shedding must be inline, took {:?}",
        started.elapsed()
    );
    assert_eq!(error_kind(&body), "overloaded");
    assert!(
        headers.iter().any(|h| h == "retry-after: 2"),
        "headers: {headers:?}"
    );
    drop(pin);
    drop(held);
    handle.shutdown();
}

/// One peer holding more than its share of connections gets a typed
/// 429 (`kind: "rate-limited"`) while the connections it already holds
/// keep working.
#[test]
fn per_client_cap_sheds_typed_429() {
    let (_registry, handle) = start_with(ServerConfig {
        workers: 2,
        max_conns_per_client: 2,
        keep_alive_timeout: Duration::from_secs(3),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let mut held = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /query/po HTTP/1.1\r\n").unwrap();
        held.push(s);
    }
    std::thread::sleep(Duration::from_millis(200));

    let mut shed = TcpStream::connect(addr).unwrap();
    shed.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let (status, headers, body) = read_raw_response(&mut shed);
    assert_eq!(status, 429);
    assert_eq!(error_kind(&body), "rate-limited");
    assert!(
        headers.iter().any(|h| h.starts_with("retry-after:")),
        "headers: {headers:?}"
    );

    // Releasing one held connection frees quota for a fresh one.
    held.pop();
    std::thread::sleep(Duration::from_millis(200));
    let mut c = Client::connect(addr).unwrap();
    let (status, _) = c.post("/query/po", QUERY).unwrap();
    assert_eq!(status, 200);
    handle.shutdown();
}

/// Eviction drift over HTTP: an engine evicted while a caller still
/// holds its `Arc` shows up in `GET /stats` as `unreclaimed_bytes`,
/// and drops back to zero once the handle is released.
#[test]
fn stats_surfaces_eviction_drift_and_thrash_sheds() {
    let dir = std::env::temp_dir().join(format!("uxm-admission-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A budget that fits roughly one engine, with the thrash gate
    // armed: two evictions inside the window shed further cold loads.
    let one = small_engine(1).approx_bytes();
    let registry = Arc::new(
        EngineRegistry::with_config(RegistryConfig {
            memory_budget: one + one / 2,
            thrash_evictions: 2,
            thrash_window: 1_000,
        })
        .snapshot_dir(&dir),
    );
    for (name, seed) in [("a", 1u64), ("b", 2), ("c", 3)] {
        registry.insert(name, small_engine(seed));
        registry.save(name).unwrap();
        registry.remove(name);
    }
    let handle = Server::bind(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind ephemeral port")
    .start();
    let addr = handle.addr();
    let mut c = Client::connect(addr).unwrap();

    // Hold a live handle to "a", then make the budget evict it by
    // querying "b" over HTTP.
    let held = registry.fetch("a").unwrap();
    let (status, _) = c.post("/query/b", QUERY).unwrap();
    assert_eq!(status, 200);

    let (_, stats) = c.get("/stats").unwrap();
    let stats = Json::parse(&stats).unwrap();
    let registry_stats = stats.get("registry").expect("registry section");
    let unreclaimed = registry_stats
        .get("unreclaimed_bytes")
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(
        unreclaimed,
        held.approx_bytes(),
        "the held engine's bytes must be reported as drift"
    );

    // Release the handle: the drift is reclaimed.
    drop(held);
    let (_, stats) = c.get("/stats").unwrap();
    let stats = Json::parse(&stats).unwrap();
    let unreclaimed = stats
        .get("registry")
        .and_then(|r| r.get("unreclaimed_bytes"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(unreclaimed, 0);

    // Churn cold engines until the gate arms, then expect a typed 503
    // on the next cold hydration.
    let mut shed_seen = false;
    for name in ["c", "a", "b", "c", "a", "b"] {
        let (status, body) = c.post(&format!("/query/{name}"), QUERY).unwrap();
        if status == 503 {
            assert_eq!(error_kind(&body), "overloaded");
            shed_seen = true;
            break;
        }
        assert_eq!(status, 200, "body: {body}");
    }
    assert!(shed_seen, "thrash gate never shed a cold hydration");
    let (_, stats) = c.get("/stats").unwrap();
    let stats = Json::parse(&stats).unwrap();
    let shed = stats
        .get("registry")
        .and_then(|r| r.get("shed_hydrations"))
        .and_then(Json::as_usize)
        .unwrap();
    assert!(shed >= 1, "stats must count shed hydrations, got {shed}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
