//! Property-based tests for the twig engine: the production matcher
//! agrees with the naive oracle on random documents and random patterns,
//! and the structural join agrees with the nested-loop reference.

use proptest::prelude::*;
use uxm::twig::structural_join::{nested_loop_join, structural_join};
use uxm::twig::{match_twig, match_twig_naive, Axis, ResolvedPattern, TwigPattern};
use uxm::xml::{parse_document, Document};

/// Strategy: a random small document over labels a/b/c, built from a
/// nesting script.
fn document_strategy() -> impl Strategy<Value = Document> {
    proptest::collection::vec((0u8..3, prop::bool::ANY), 1..40).prop_map(|script| {
        let mut xml = String::from("<r>");
        let mut open: Vec<&str> = Vec::new();
        for (label, close) in script {
            if close && !open.is_empty() {
                let l = open.pop().unwrap();
                xml.push_str(&format!("</{l}>"));
            } else {
                let l = ["a", "b", "c"][label as usize];
                xml.push_str(&format!("<{l}>"));
                open.push(l);
            }
        }
        while let Some(l) = open.pop() {
            xml.push_str(&format!("</{l}>"));
        }
        xml.push_str("</r>");
        parse_document(&xml).expect("generated XML is well-formed")
    })
}

const PATTERNS: [&str; 10] = [
    "//a/b",
    "//a//b",
    "//a[./b]/c",
    "//a[.//b][.//c]",
    "r//a",
    "r/a/b/c",
    "//b[./c]//a",
    "//a//a",
    "//c",
    "r[./a]//b",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matcher_agrees_with_naive(doc in document_strategy(), p_idx in 0usize..PATTERNS.len()) {
        let q = TwigPattern::parse(PATTERNS[p_idx]).unwrap();
        if let Some(r) = ResolvedPattern::new(&q, &doc) {
            let fast = match_twig(&doc, &r);
            let slow = match_twig_naive(&doc, &r);
            prop_assert_eq!(fast, slow, "pattern {}", PATTERNS[p_idx]);
        }
    }

    #[test]
    fn structural_join_agrees_with_nested_loop(doc in document_strategy()) {
        let a: Vec<_> = doc.nodes_with_label("a").to_vec();
        let b: Vec<_> = doc.nodes_with_label("b").to_vec();
        for axis in [Axis::Child, Axis::Descendant] {
            let fast = structural_join(&doc, &a, &b, axis);
            let slow = nested_loop_join(&doc, &a, &b, axis);
            prop_assert_eq!(fast, slow);
        }
    }

    #[test]
    fn matches_respect_structure(doc in document_strategy(), p_idx in 0usize..PATTERNS.len()) {
        let q = TwigPattern::parse(PATTERNS[p_idx]).unwrap();
        let Some(r) = ResolvedPattern::new(&q, &doc) else { return Ok(()); };
        for m in match_twig(&doc, &r) {
            for node in q.ids().skip(1) {
                let parent = q.node(node).parent.unwrap();
                let (pd, cd) = (m.nodes[parent.idx()], m.nodes[node.idx()]);
                match q.node(node).axis {
                    Axis::Child => prop_assert!(doc.is_parent(pd, cd)),
                    Axis::Descendant => prop_assert!(doc.is_ancestor(pd, cd)),
                }
                prop_assert_eq!(
                    doc.label_str(m.nodes[node.idx()]),
                    &q.node(node).label
                );
            }
        }
    }

    #[test]
    fn subtree_end_table_brackets_descendants(doc in document_strategy()) {
        let end = doc.subtree_end_table();
        for n in doc.ids() {
            for d in doc.descendants(n) {
                prop_assert!(n.0 < d.0 && d.0 <= end[n.idx()]);
            }
            // nothing beyond the bracket is a descendant
            if (end[n.idx()] as usize) + 1 < doc.len() {
                let next = uxm::xml::DocNodeId(end[n.idx()] + 1);
                prop_assert!(!doc.is_ancestor(n, next));
            }
        }
    }
}
