//! The sharding differential harness: a [`Router`] over N shard
//! registries must be **observably identical** to one big single
//! registry — same `answers` subtrees for `/query`, same per-item
//! results in `/batch` (in request order), and byte-exact `/topk`
//! bodies including cross-shard score ties — across all 10 Table II
//! datasets at 1, 2, and 4 shards.
//!
//! Everything runs over real sockets: a reference `Server` on a single
//! registry and a router front, both hydrating from the same snapshot
//! directory, driven by the same wire-format requests. Only the
//! `answers` subtree is compared for `/query`/`/batch` (execution
//! stats legitimately differ per process); `/topk` bodies carry no
//! stats and are compared whole, byte for byte.

use std::path::PathBuf;
use std::sync::Arc;

use uxm::core::aggregate::AggFunc;
use uxm::core::api::Query;
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::json::Json;
use uxm::core::mapping::PossibleMappings;
use uxm::core::registry::{BatchQuery, EngineRegistry};
use uxm::core::router::{Router, RouterConfig};
use uxm::core::server::{Client, Server, ServerConfig, ServerHandle};
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::twig::TwigPattern;
use uxm::xml::{DocGenConfig, Document};

/// One dataset's engine, sized to keep a 10-dataset × 3-ring sweep
/// affordable in debug builds.
fn dataset_engine(id: DatasetId) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, 12);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: 300,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0x0D0C,
    );
    let tree = BlockTree::build(
        &d.matching.target,
        &pm,
        &BlockTreeConfig {
            tau: 0.2,
            ..BlockTreeConfig::default()
        },
    );
    QueryEngine::new(pm, doc, tree)
}

/// Snapshots all ten dataset engines (named `d1`..`d10`) into a fresh
/// directory both deployments hydrate from.
fn seed_datasets(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uxm-shard-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = EngineRegistry::new().snapshot_dir(&dir);
    for (i, id) in DatasetId::all().into_iter().enumerate() {
        registry.insert(format!("d{}", i + 1), dataset_engine(id));
    }
    registry.save_all().expect("seed snapshots");
    dir
}

fn start_single(dir: &PathBuf) -> ServerHandle {
    let registry = Arc::new(EngineRegistry::new().snapshot_dir(dir));
    Server::bind(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind single server")
    .start()
}

fn start_router(dir: &PathBuf, shards: usize) -> (Arc<Router>, ServerHandle) {
    let router = Router::start(
        dir,
        RouterConfig {
            shards,
            ..RouterConfig::default()
        },
    )
    .expect("start router");
    let front = router
        .bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind front")
        .start();
    (router, front)
}

/// The `answers` subtree of a response body, re-rendered canonically —
/// the part that must be byte-identical across deployments.
fn answers_subtree(body: &str) -> String {
    Json::parse(body)
        .unwrap_or_else(|e| panic!("unparsable body {body:?}: {e}"))
        .get("answers")
        .unwrap_or_else(|| panic!("no answers subtree in {body}"))
        .to_string()
}

const ENGINES: [&str; 10] = ["d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "d10"];

/// The spot queries (1-based indices into the paper workload) the
/// per-engine sweep runs — the same picks as `engine_equivalence.rs`.
const SPOT: [usize; 3] = [2, 7, 10];

#[test]
fn router_matches_single_registry_across_datasets_and_ring_sizes() {
    let dir = seed_datasets("main");
    let single = start_single(&dir);
    let mut sc = Client::connect(single.addr()).unwrap();
    let workload = paper_queries();

    for shards in [1usize, 2, 4] {
        let (router, front) = start_router(&dir, shards);
        let mut rc = Client::connect(front.addr()).unwrap();

        // -- per-engine /query: ptq, top-k, keyword ------------------
        for name in ENGINES {
            for &qi in &SPOT {
                let pattern = workload[qi - 1].clone();
                for query in [Query::ptq(pattern.clone()), Query::topk(pattern.clone(), 5)] {
                    let (s_status, s_body) = sc.query(name, &query).unwrap();
                    let (r_status, r_body) = rc.query(name, &query).unwrap();
                    assert_eq!(s_status, r_status, "{shards} shards, {name} Q{qi}");
                    assert_eq!(s_status, 200, "{name} Q{qi}: {s_body}");
                    assert_eq!(
                        answers_subtree(&s_body),
                        answers_subtree(&r_body),
                        "{shards} shards, {name} Q{qi}: answers diverge"
                    );
                }
            }
            let kw = Query::keyword(vec!["laptop".into()]);
            let (s_status, s_body) = sc.query(name, &kw).unwrap();
            let (r_status, r_body) = rc.query(name, &kw).unwrap();
            assert_eq!((s_status, 200), (r_status, s_status));
            assert_eq!(
                answers_subtree(&s_body),
                answers_subtree(&r_body),
                "{shards} shards, {name}: keyword answers diverge"
            );

            // -- the grown grammar: predicates and wildcards route the
            //    same (single-node forms keep the sweep affordable) ----
            for form in ["//*[contains(.,'a')]", "//*[.>=0]", "//*[@id='1']"] {
                let query = Query::ptq(TwigPattern::parse(form).unwrap());
                let (s_status, s_body) = sc.query(name, &query).unwrap();
                let (r_status, r_body) = rc.query(name, &query).unwrap();
                assert_eq!((s_status, 200), (r_status, s_status), "{name} {form}");
                assert_eq!(
                    answers_subtree(&s_body),
                    answers_subtree(&r_body),
                    "{shards} shards, {name} {form}: answers diverge"
                );
            }
        }

        // -- unknown engine: same typed 404 through either front -----
        let probe = Query::ptq(TwigPattern::parse("A//B").unwrap());
        let (s_status, s_body) = sc.query("ghost", &probe).unwrap();
        let (r_status, r_body) = rc.query("ghost", &probe).unwrap();
        assert_eq!((s_status, s_body), (r_status, r_body), "{shards} shards");
        assert_eq!(s_status, 404);

        // -- /batch: interleaved engines + a failing item, spliced
        //    back in request order ----------------------------------
        let mut batch = Vec::new();
        for (i, name) in ENGINES.iter().enumerate() {
            let pattern = workload[SPOT[i % SPOT.len()] - 1].clone();
            batch.push(BatchQuery::ptq(*name, pattern.clone()));
            if i == 4 {
                batch.push(BatchQuery::ptq("ghost", pattern.clone()));
            }
            batch.push(BatchQuery::topk(*name, pattern, 3));
        }
        let (s_status, s_body) = sc.batch(&batch).unwrap();
        let (r_status, r_body) = rc.batch(&batch).unwrap();
        assert_eq!((s_status, r_status), (200, 200), "{shards} shards batch");
        let s_results = Json::parse(&s_body).unwrap();
        let r_results = Json::parse(&r_body).unwrap();
        let s_items = s_results.get("results").unwrap().as_arr().unwrap();
        let r_items = r_results.get("results").unwrap().as_arr().unwrap();
        assert_eq!(s_items.len(), batch.len());
        assert_eq!(s_items.len(), r_items.len(), "{shards} shards batch len");
        for (i, (s_item, r_item)) in s_items.iter().zip(r_items).enumerate() {
            match s_item.get("answers") {
                Some(answers) => assert_eq!(
                    answers.to_string(),
                    r_item
                        .get("answers")
                        .map(|a| a.to_string())
                        .unwrap_or_default(),
                    "{shards} shards, batch item {i} answers diverge"
                ),
                // Error items (the ghost engine) must match whole.
                None => assert_eq!(
                    s_item.to_string(),
                    r_item.to_string(),
                    "{shards} shards, batch item {i} error diverges"
                ),
            }
        }

        // -- /topk: whole-body byte-exact, default set and subset ----
        let pattern = workload[SPOT[0] - 1].clone();
        for (engines, k) in [(None, 1usize), (None, 7), (Some(vec!["d2", "d5", "d9"]), 5)] {
            let mut members = Vec::new();
            if let Some(list) = &engines {
                members.push((
                    "engines".to_string(),
                    Json::Arr(list.iter().map(|n| Json::str(*n)).collect()),
                ));
            }
            members.push((
                "query".to_string(),
                Query::topk(pattern.clone(), k).to_json(),
            ));
            let body = Json::Obj(members).to_string();
            let (s_status, s_body) = sc.post("/topk", &body).unwrap();
            let (r_status, r_body) = rc.post("/topk", &body).unwrap();
            assert_eq!(
                (s_status, r_status),
                (200, 200),
                "{shards} shards: {s_body}"
            );
            assert_eq!(
                s_body, r_body,
                "{shards} shards, k={k}, engines={engines:?}: topk body diverges"
            );
        }

        // -- /aggregate: whole-body byte-exact, default set and subset.
        //    The router recomputes the merged value from the
        //    concatenated name-ascending entries, so the fan-out must
        //    be invisible — including the fold order of the marginal.
        for (engines, func) in [
            (None, AggFunc::Count),
            (None, AggFunc::Sum),
            (Some(vec!["d2", "d5", "d9"]), AggFunc::Min),
            (Some(vec!["d1", "d10"]), AggFunc::Max),
        ] {
            let mut members = Vec::new();
            if let Some(list) = &engines {
                members.push((
                    "engines".to_string(),
                    Json::Arr(list.iter().map(|n| Json::str(*n)).collect()),
                ));
            }
            members.push((
                "query".to_string(),
                Query::aggregate(TwigPattern::parse("//*[.>=0]").unwrap(), func).to_json(),
            ));
            let body = Json::Obj(members).to_string();
            let (s_status, s_body) = sc.post("/aggregate", &body).unwrap();
            let (r_status, r_body) = rc.post("/aggregate", &body).unwrap();
            assert_eq!(
                (s_status, r_status),
                (200, 200),
                "{shards} shards: {s_body}"
            );
            assert_eq!(
                s_body, r_body,
                "{shards} shards, {func}, engines={engines:?}: aggregate body diverges"
            );
            // Entries come back name-ascending regardless of fan-out.
            let parsed = Json::parse(&r_body).unwrap();
            let entries = parsed.get("engines").unwrap().as_arr().unwrap();
            let names: Vec<&str> = entries
                .iter()
                .map(|e| e.get("engine").unwrap().as_str().unwrap())
                .collect();
            let mut ordered = names.clone();
            ordered.sort_unstable();
            assert_eq!(names, ordered, "{shards} shards, {func}: entry order");
        }

        front.shutdown();
        router.shutdown();
    }

    single.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deliberately tied scores across shards: six byte-identical engines
/// under different names (so the ring spreads them) produce top-k
/// answer sets where *every* probability ties — the merge must resolve
/// them by the pinned order (probability desc, then engine name, then
/// mapping ids) and stay byte-exact with the single registry.
#[test]
fn cross_shard_topk_ties_resolve_by_pinned_order() {
    let dir = std::env::temp_dir().join(format!("uxm-shard-diff-ties-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let names = ["tie0", "tie1", "tie2", "tie3", "tie4", "tie5"];
    {
        // One engine, snapshotted once, file-copied under five more
        // names: the six engines are byte-identical by construction,
        // so every cross-engine probability comparison ties. D7's
        // target standard is Apertum — the schema the paper workload
        // is posed on — so the queries actually answer.
        let registry = EngineRegistry::new().snapshot_dir(&dir);
        registry.insert(names[0], dataset_engine(DatasetId::D7));
        let first = registry.save(names[0]).expect("seed tie snapshot");
        for name in &names[1..] {
            std::fs::copy(&first, dir.join(format!("{name}.uxm"))).expect("copy tie snapshot");
        }
    }

    let single = start_single(&dir);
    let mut sc = Client::connect(single.addr()).unwrap();
    // The tie assertions need a query that actually answers on this
    // dataset: probe the workload and take the first that does.
    let pattern = paper_queries()
        .into_iter()
        .find(|q| {
            let (status, body) = sc.query("tie0", &Query::topk(q.clone(), 4)).unwrap();
            status == 200 && !answers_subtree(&body).starts_with("[]")
        })
        .expect("some paper query answers on D7");

    for shards in [2usize, 4] {
        let (router, front) = start_router(&dir, shards);

        // The test is only meaningful if the ring actually separates
        // the tied engines; the hash is deterministic, so this holds
        // forever once it holds at all.
        let owners: std::collections::BTreeSet<u64> =
            names.iter().map(|n| router.owner(n)).collect();
        assert!(
            owners.len() >= 2,
            "ring with {shards} shards put every tied engine on one shard"
        );

        let mut rc = Client::connect(front.addr()).unwrap();
        // One engine's full answer count for this query: the k that
        // provably spans engines is just past it.
        let (_, probe_body) = sc
            .query(names[0], &Query::topk(pattern.clone(), 10_000))
            .unwrap();
        let per_engine = Json::parse(&probe_body)
            .unwrap()
            .get("answers")
            .unwrap()
            .as_arr()
            .unwrap()
            .len();
        assert!(per_engine >= 1);
        let spanning = per_engine + 3;
        for k in [1usize, 4, spanning] {
            let body = Json::Obj(vec![(
                "query".to_string(),
                Query::topk(pattern.clone(), k).to_json(),
            )])
            .to_string();
            let (s_status, s_body) = sc.post("/topk", &body).unwrap();
            let (r_status, r_body) = rc.post("/topk", &body).unwrap();
            assert_eq!((s_status, r_status), (200, 200), "{s_body}");
            assert_eq!(s_body, r_body, "{shards} shards, k={k}: tie merge diverges");

            // And the documented order holds on the wire: probability
            // descending, then engine name, then mapping ids.
            let parsed = Json::parse(&r_body).unwrap();
            let answers = parsed.get("answers").unwrap().as_arr().unwrap();
            let keys: Vec<(f64, String, Vec<u64>)> = answers
                .iter()
                .map(|a| {
                    (
                        a.get("probability").unwrap().as_f64().unwrap(),
                        a.get("engine").unwrap().as_str().unwrap().to_string(),
                        a.get("mappings")
                            .unwrap()
                            .as_arr()
                            .unwrap()
                            .iter()
                            .map(|m| m.as_f64().unwrap() as u64)
                            .collect(),
                    )
                })
                .collect();
            for pair in keys.windows(2) {
                let (pa, ea, ma) = &pair[0];
                let (pb, eb, mb) = &pair[1];
                assert!(
                    pa > pb || (pa == pb && (ea < eb || (ea == eb && ma <= mb))),
                    "{shards} shards, k={k}: order violated at {pair:?}"
                );
            }
            // With identical engines the ties are real: past one
            // engine's answer count, the window must span several
            // engines (engine name breaks the probability tie, so
            // whole engines appear in name order).
            if k == spanning {
                assert_eq!(keys.len(), spanning, "k={spanning} must fill");
                assert!(
                    keys.windows(2).any(|w| w[0].1 != w[1].1),
                    "tied answers must come from multiple engines: {keys:?}"
                );
            }
        }

        // -- /aggregate over byte-identical engines: every per-engine
        //    marginal ties exactly, so the merged value exposes any
        //    fold-order difference between deployments. Whole-body
        //    byte-exact for all four functions.
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let body = Json::Obj(vec![(
                "query".to_string(),
                Query::aggregate(pattern.clone(), func).to_json(),
            )])
            .to_string();
            let (s_status, s_body) = sc.post("/aggregate", &body).unwrap();
            let (r_status, r_body) = rc.post("/aggregate", &body).unwrap();
            assert_eq!((s_status, r_status), (200, 200), "{func}: {s_body}");
            assert_eq!(
                s_body, r_body,
                "{shards} shards, {func}: tied aggregate merge diverges"
            );
            // All six entries are byte-identical engines: identical
            // marginals, and entries in name order.
            let parsed = Json::parse(&r_body).unwrap();
            let entries = parsed.get("engines").unwrap().as_arr().unwrap();
            assert_eq!(entries.len(), names.len(), "{func}");
            let marginals: Vec<String> = entries
                .iter()
                .map(|e| e.get("marginal").unwrap().to_string())
                .collect();
            assert!(
                marginals.windows(2).all(|w| w[0] == w[1]),
                "{func}: identical engines must tie: {marginals:?}"
            );
        }
        front.shutdown();
        router.shutdown();
    }
    single.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
