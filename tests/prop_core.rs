//! Property-based tests for the core contribution: block-tree invariants,
//! lossless compression, and exact agreement between the basic and
//! block-tree PTQ evaluators on arbitrary mapping sets and queries.
//!
//! Shim coverage: the legacy free functions are exercised on purpose, so
//! the CI deprecation gate exempts this file via the allow below.
#![allow(deprecated)]

use proptest::prelude::*;
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::compress::compress;
use uxm::core::mapping::PossibleMappings;
use uxm::core::ptq::ptq_basic;
use uxm::core::ptq_tree::ptq_with_tree;
use uxm::twig::TwigPattern;
use uxm::xml::{DocGenConfig, Document, Schema, SchemaNodeId};

/// Fixed schema pair with enough structure for interesting blocks.
fn schemas() -> (Schema, Schema) {
    let source = Schema::parse_outline(
        "Ord(BuyerA(NameA MailA) BuyerB(NameB MailB) Ship(Str City) \
         Item*(No Qty Price))",
    )
    .unwrap();
    let target = Schema::parse_outline(
        "PO(Cust(CName CMail) Dest(Street Town) Line(LineNo Quantity Amount))",
    )
    .unwrap();
    (source, target)
}

/// Strategy: a random set of 4–12 possible mappings. Each target element
/// picks among plausible source candidates (or none); duplicates in the
/// choice vector are filtered to keep mappings one-to-one.
fn mappings_strategy() -> impl Strategy<Value = PossibleMappings> {
    let (source, target) = schemas();
    let n_t = target.len();
    let n_s = source.len();
    proptest::collection::vec(proptest::collection::vec(0usize..(n_s + 3), n_t), 4..12).prop_map(
        move |choice_sets| {
            let sets = choice_sets
                .into_iter()
                .enumerate()
                .map(|(i, choices)| {
                    let mut used = vec![false; n_s];
                    let mut pairs = Vec::new();
                    for (t_idx, s_choice) in choices.into_iter().enumerate() {
                        if s_choice < n_s && !used[s_choice] {
                            used[s_choice] = true;
                            pairs.push((SchemaNodeId(s_choice as u32), SchemaNodeId(t_idx as u32)));
                        }
                    }
                    (pairs, 1.0 + i as f64 * 0.1)
                })
                .collect();
            PossibleMappings::from_pairs(source.clone(), target.clone(), sets)
        },
    )
}

const QUERIES: [&str; 8] = [
    "PO/Line/Quantity",
    "PO//CMail",
    "PO[./Cust/CName]/Line[./LineNo]/Quantity",
    "//Line[./Amount]//LineNo",
    "PO/Dest[./Town]/Street",
    "//Cust//CName",
    "PO",
    "PO[./Dest/Street][./Cust/CMail]//Quantity",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocks_satisfy_definition(pm in mappings_strategy(), tau in 0.1f64..1.0) {
        let cfg = BlockTreeConfig { tau, ..BlockTreeConfig::default() };
        let tree = BlockTree::build(&pm.target.clone(), &pm, &cfg);
        for b in tree.blocks() {
            prop_assert!(
                b.validate(&pm.target, &pm, tree.min_support).is_ok(),
                "{:?}",
                b.validate(&pm.target, &pm, tree.min_support)
            );
        }
    }

    #[test]
    fn compression_roundtrips(pm in mappings_strategy(), tau in 0.1f64..1.0) {
        let cfg = BlockTreeConfig { tau, ..BlockTreeConfig::default() };
        let tree = BlockTree::build(&pm.target.clone(), &pm, &cfg);
        let cm = compress(&pm, &tree);
        for (mid, m) in pm.iter() {
            prop_assert_eq!(cm.reconstruct(&tree, mid), m.pairs);
        }
    }

    #[test]
    fn basic_equals_block_tree(
        pm in mappings_strategy(),
        tau in 0.1f64..0.9,
        seed in 0u64..50,
        q_idx in 0usize..QUERIES.len(),
    ) {
        let doc = Document::generate(
            &pm.source,
            &DocGenConfig { target_nodes: 120, max_repeat: 3, text_prob: 0.6 },
            seed,
        );
        let cfg = BlockTreeConfig { tau, ..BlockTreeConfig::default() };
        let tree = BlockTree::build(&pm.target.clone(), &pm, &cfg);
        let q = TwigPattern::parse(QUERIES[q_idx]).unwrap();
        let mut basic = ptq_basic(&q, &pm, &doc);
        let mut with_tree = ptq_with_tree(&q, &pm, &doc, &tree);
        basic.normalize();
        with_tree.normalize();
        prop_assert_eq!(basic, with_tree, "query {}", QUERIES[q_idx]);
    }

    #[test]
    fn block_caps_are_respected(pm in mappings_strategy(), max_b in 0usize..10) {
        let cfg = BlockTreeConfig {
            tau: 0.1,
            max_blocks: max_b,
            max_failures: 10,
        };
        let tree = BlockTree::build(&pm.target.clone(), &pm, &cfg);
        prop_assert!(tree.block_count() <= max_b);
    }

    #[test]
    fn fewer_blocks_never_changes_answers(
        pm in mappings_strategy(),
        seed in 0u64..20,
    ) {
        // Query correctness must be independent of MAX_B (paper §IV-B).
        let doc = Document::generate(
            &pm.source,
            &DocGenConfig { target_nodes: 100, max_repeat: 2, text_prob: 0.5 },
            seed,
        );
        let q = TwigPattern::parse("PO/Line/Quantity").unwrap();
        let full = BlockTree::build(&pm.target.clone(), &pm, &BlockTreeConfig::default());
        let capped = BlockTree::build(
            &pm.target.clone(),
            &pm,
            &BlockTreeConfig { max_blocks: 1, ..BlockTreeConfig::default() },
        );
        let mut a = ptq_with_tree(&q, &pm, &doc, &full);
        let mut b = ptq_with_tree(&q, &pm, &doc, &capped);
        a.normalize();
        b.normalize();
        prop_assert_eq!(a, b);
    }
}
