//! Engine-snapshot persistence: encode→decode must preserve query
//! answers on every Table II dataset, arbitrary corruption must never
//! panic, and every snapshot-specific `DecodeError` variant must be
//! reachable from a decoder that started with valid bytes.
//!
//! Shim coverage: the legacy engine methods are exercised on purpose, so
//! the CI deprecation gate exempts this file via the allow below.
#![allow(deprecated)]

use proptest::prelude::*;
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::core::storage::{decode_engine_snapshot, encode_engine_snapshot, DecodeError};
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_queries;
use uxm::xml::{DocGenConfig, Document};

fn engine(id: DatasetId, m: usize, nodes: usize) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, m);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: nodes,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0xBEEF,
    );
    let tree = BlockTree::build(
        &d.matching.target,
        &pm,
        &BlockTreeConfig {
            tau: 0.2,
            ..BlockTreeConfig::default()
        },
    );
    QueryEngine::new(pm, doc, tree)
}

/// The acceptance-criterion property: a snapshot saved and rehydrated
/// gives byte-identical PTQ (and top-k, and keyword) results, on every
/// Table II dataset.
#[test]
fn snapshot_roundtrip_preserves_answers_on_every_dataset() {
    let queries = paper_queries();
    for id in DatasetId::all() {
        let original = engine(id, 12, 250);
        let bytes = encode_engine_snapshot(&original);
        let back = decode_engine_snapshot(&bytes).expect("snapshot decodes");
        let name = id.name();

        assert_eq!(back.source(), original.source(), "{name}: source schema");
        assert_eq!(back.target(), original.target(), "{name}: target schema");
        assert_eq!(
            back.tree().blocks(),
            original.tree().blocks(),
            "{name}: block tree"
        );
        for (a, b) in back.mappings().iter().zip(original.mappings().iter()) {
            assert_eq!(a, b, "{name}: mapping");
        }
        // Spot queries across evaluators; all ten on the D7 vocabulary.
        let spots: &[usize] = if id == DatasetId::D7 {
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        } else {
            &[2, 7, 10]
        };
        for &qi in spots {
            let q = &queries[qi - 1];
            assert_eq!(
                back.ptq_with_tree(q),
                original.ptq_with_tree(q),
                "{name} Q{qi}: ptq_with_tree"
            );
            assert_eq!(back.ptq(q), original.ptq(q), "{name} Q{qi}: ptq");
            assert_eq!(back.topk(q, 5), original.topk(q, 5), "{name} Q{qi}: topk");
        }
        assert_eq!(
            back.keyword(&["order"]).unwrap(),
            original.keyword(&["order"]).unwrap(),
            "{name}: keyword"
        );
    }
}

/// Re-encoding a decoded snapshot is byte-stable (the codec has one
/// canonical form), so snapshot files can be compared by hash.
#[test]
fn snapshot_reencode_is_byte_identical() {
    let original = engine(DatasetId::D4, 10, 200);
    let bytes = encode_engine_snapshot(&original);
    let back = decode_engine_snapshot(&bytes).unwrap();
    assert_eq!(encode_engine_snapshot(&back), bytes);
}

/// One valid snapshot, built once and shared by all property cases.
fn valid_snapshot() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| encode_engine_snapshot(&engine(DatasetId::D1, 6, 120)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flipping any byte of a valid snapshot yields `Ok` or a clean
    /// `DecodeError` — never a panic.
    #[test]
    fn corrupt_snapshot_never_panics(pos in 0usize..1 << 16, xor in 1u8..=255) {
        let bytes = valid_snapshot();
        let mut corrupt = bytes.to_vec();
        let p = pos % corrupt.len();
        corrupt[p] ^= xor;
        let _ = decode_engine_snapshot(&corrupt);
    }

    /// Truncating a valid snapshot at any point errors, never succeeds or
    /// panics.
    #[test]
    fn truncated_snapshot_always_errors(cut_seed in 0usize..1 << 16) {
        let bytes = valid_snapshot();
        let cut = cut_seed % bytes.len();
        prop_assert!(decode_engine_snapshot(&bytes[..cut]).is_err());
    }
}

// ---------------------------------------------------------------------
// every snapshot-specific DecodeError variant

/// LEB128, mirrored from the codec for byte surgery.
fn varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn header() -> Vec<u8> {
    // The handcrafted payloads below are v2 bodies (varint sections), so
    // the version is pinned to 2 — under the v3 default they would hit
    // the fixed-width sectioned decoder instead.
    let mut out = Vec::from(*b"UXMS");
    varint(&mut out, 2);
    out
}

#[test]
fn unsupported_version_variant() {
    let mut bytes = encode_engine_snapshot(&engine(DatasetId::D1, 4, 80));
    bytes[4] = 0x7F; // the version varint sits right after the magic
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::UnsupportedVersion(0x7F)
    );
    // Version 0 (ancient) is rejected the same way.
    bytes[4] = 0;
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::UnsupportedVersion(0)
    );
}

#[test]
fn bad_string_variant() {
    let mut bytes = header();
    varint(&mut bytes, 3); // schema name of length 3...
    bytes.extend_from_slice(&[0xC3, 0x28, 0x41]); // ...broken UTF-8
    assert_eq!(
        decode_engine_snapshot(&bytes).unwrap_err(),
        DecodeError::BadString
    );
}

#[test]
fn malformed_variant() {
    // Schema with zero nodes.
    let mut empty = header();
    put_str(&mut empty, "source");
    varint(&mut empty, 0);
    assert_eq!(
        decode_engine_snapshot(&empty).unwrap_err(),
        DecodeError::Malformed
    );

    // Schema node whose parent does not precede it in pre-order.
    let mut cyclic = header();
    put_str(&mut cyclic, "source");
    varint(&mut cyclic, 2);
    put_str(&mut cyclic, "Root");
    cyclic.push(0);
    put_str(&mut cyclic, "Child");
    varint(&mut cyclic, 1); // its own id — a cycle
    cyclic.push(0);
    assert_eq!(
        decode_engine_snapshot(&cyclic).unwrap_err(),
        DecodeError::Malformed
    );
}

#[test]
fn bad_magic_and_truncated_variants() {
    let bytes = encode_engine_snapshot(&engine(DatasetId::D1, 4, 80));
    // A mapping-set file is not a snapshot.
    assert_eq!(
        decode_engine_snapshot(b"UXM1rest").unwrap_err(),
        DecodeError::BadMagic
    );
    assert_eq!(
        decode_engine_snapshot(&bytes[..3]).unwrap_err(),
        DecodeError::Truncated
    );
    assert_eq!(
        decode_engine_snapshot(&bytes[..bytes.len() - 1]).unwrap_err(),
        DecodeError::Truncated
    );
}

#[test]
fn id_out_of_range_variant_through_embedded_payload() {
    // Corrupt the embedded block-compressed payload: find the "UXM1"
    // magic inside the snapshot and bump a stored anchor id to the
    // target-schema length, which the inner decoder must reject. Only
    // v1 snapshots embed the "UXM1" payload (v2 inlines the block
    // section), so this pins the legacy decode path.
    let e = engine(DatasetId::D1, 4, 80);
    let bytes = uxm::core::storage::encode_engine_snapshot_v1(&e);
    let inner = bytes
        .windows(4)
        .position(|w| w == b"UXM1")
        .expect("embedded payload magic");
    // Layout after the inner magic: varint min_support, varint n_blocks,
    // varint anchor-of-first-block. For small datasets each fits one byte.
    let anchor_pos = inner + 6;
    let mut corrupt = bytes.clone();
    corrupt[anchor_pos] = e.target().len() as u8; // one past the last id
    match decode_engine_snapshot(&corrupt) {
        Err(DecodeError::IdOutOfRange) => {}
        other => panic!("expected IdOutOfRange, got {other:?}"),
    }
}
