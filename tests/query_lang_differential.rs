//! The query-language differential: an **independent naive oracle**,
//! re-implemented from the documented semantics
//! (`docs/query-language.md`) using only public `Document` / `Schema` /
//! `PossibleMappings` accessors — deliberately slow, never touching the
//! engine's evaluators, rewrite caches, or the twig matchers — checked
//! against all three backends (naive, block-tree, compiled) for every
//! new syntax form: value predicates (`=`, `contains`, numeric ranges,
//! `@attr` targets), descendant axes, wildcards, and aggregates, across
//! all ten Table II datasets and every evaluator hint.
//!
//! Two layers of assertion:
//!
//! 1. **backend agreement** — all hints return *identical* answers
//!    (full structural equality, f64 bits included); plan choice is a
//!    pure performance decision;
//! 2. **oracle agreement** — the naive hint's answers equal the
//!    oracle's independently derived relevant-mapping set, mapping
//!    probabilities, and match sets (compared as sorted sets; the
//!    oracle enumerates embeddings in its own order).
//!
//! Aggregates compare exactly across backends and within `1e-9` of the
//! oracle (its fold order may differ, which is f64-visible for `sum`).

use uxm::core::aggregate::{AggFunc, AggregateResult};
use uxm::core::api::{Answer, EvaluatorHint, Query};
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::{MappingId, PossibleMappings};
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::twig::{Axis, PredOp, PredTarget, TwigMatch, TwigPattern, ValuePred};
use uxm::xml::{parse_document, DocGenConfig, DocNodeId, Document, Schema};

// ---------------------------------------------------------------------
// the oracle (from the docs, not the engine)

/// The documented numeric coercion: trim, parse as `f64`, finite only.
fn oracle_numeric(value: &str) -> Option<f64> {
    let v: f64 = value.trim().parse().ok()?;
    v.is_finite().then_some(v)
}

/// One value predicate, per `docs/query-language.md`: read the node's
/// text or named attribute; a missing value satisfies nothing; string
/// ops compare bytes; numeric ops coerce first and a non-numeric value
/// satisfies no numeric comparison.
fn oracle_pred_ok(pred: &ValuePred, n: DocNodeId, doc: &Document) -> bool {
    let value = match &pred.target {
        PredTarget::Text => doc.text(n),
        PredTarget::Attr(name) => doc.attr(n, name),
    };
    let Some(value) = value else {
        return false;
    };
    match &pred.op {
        PredOp::Eq(want) => value == want,
        PredOp::Contains(want) => value.contains(want.as_str()),
        PredOp::Lt(x) => oracle_numeric(value).is_some_and(|v| v < *x),
        PredOp::Le(x) => oracle_numeric(value).is_some_and(|v| v <= *x),
        PredOp::Gt(x) => oracle_numeric(value).is_some_and(|v| v > *x),
        PredOp::Ge(x) => oracle_numeric(value).is_some_and(|v| v >= *x),
    }
}

/// Proper-ancestor test by walking the parent chain (the slow way — the
/// engine uses pre/post region encoding; agreeing is the point).
fn oracle_is_ancestor(doc: &Document, anc: DocNodeId, mut n: DocNodeId) -> bool {
    while let Some(p) = doc.parent(n) {
        if p == anc {
            return true;
        }
        n = p;
    }
    false
}

/// All embeddings of the pattern into the document where query node `i`
/// may match labels `allowed[i]` (`None` = wildcard, any label), by
/// brute-force backtracking over every document node per pattern node.
fn oracle_matches(
    q: &TwigPattern,
    allowed: &[Option<Vec<String>>],
    doc: &Document,
) -> Vec<TwigMatch> {
    // Per query node: every document node passing label + predicates.
    let candidates: Vec<Vec<DocNodeId>> = q
        .ids()
        .map(|id| {
            doc.ids()
                .filter(|&n| match &allowed[id.idx()] {
                    Some(labels) => labels.iter().any(|l| l == doc.label_str(n)),
                    None => true,
                })
                .filter(|&n| q.node(id).preds.iter().all(|p| oracle_pred_ok(p, n, doc)))
                .collect()
        })
        .collect();

    let mut out = Vec::new();
    let mut chosen: Vec<DocNodeId> = Vec::new();
    assign(q, &candidates, doc, &mut chosen, &mut out);
    out.sort();
    out
}

/// Assign pattern nodes in pre-order (ids ascending: parents first).
fn assign(
    q: &TwigPattern,
    candidates: &[Vec<DocNodeId>],
    doc: &Document,
    chosen: &mut Vec<DocNodeId>,
    out: &mut Vec<TwigMatch>,
) {
    let idx = chosen.len();
    if idx == q.len() {
        out.push(TwigMatch {
            nodes: chosen.clone(),
        });
        return;
    }
    let id = uxm::twig::PatternNodeId(idx as u32);
    let node = q.node(id);
    for &n in &candidates[idx] {
        let structural_ok = match node.parent {
            // Root: a `/`-anchored pattern must sit on the document root.
            None => match node.axis {
                Axis::Child => n == doc.root(),
                Axis::Descendant => true,
            },
            Some(parent) => {
                let p = chosen[parent.idx()];
                match node.axis {
                    Axis::Child => doc.parent(n) == Some(p),
                    Axis::Descendant => oracle_is_ancestor(doc, p, n),
                }
            }
        };
        if structural_ok {
            chosen.push(n);
            assign(q, candidates, doc, chosen, out);
            chosen.pop();
        }
    }
}

/// One oracle answer: a relevant mapping, its probability, its matches.
struct OracleAnswer {
    mapping: MappingId,
    probability: f64,
    matches: Vec<TwigMatch>,
}

/// The documented PTQ semantics end to end: per mapping, rewrite each
/// non-wildcard query label through the mapping (target schema nodes
/// with that label → their mapped source nodes → source labels); a
/// mapping with an unmappable non-wildcard node is irrelevant; the rest
/// answer with the rewritten pattern's embeddings.
fn oracle_ptq(q: &TwigPattern, pm: &PossibleMappings, doc: &Document) -> Vec<OracleAnswer> {
    let mut answers = Vec::new();
    for (id, m) in pm.iter() {
        let mut allowed: Vec<Option<Vec<String>>> = Vec::with_capacity(q.len());
        let mut relevant = true;
        for qid in q.ids() {
            let node = q.node(qid);
            if node.is_wildcard() {
                allowed.push(None);
                continue;
            }
            let mut labels: Vec<String> = pm
                .target
                .nodes_with_label(&node.label)
                .iter()
                .filter_map(|&t| m.source_for_target(t))
                .map(|s| pm.source.label(s).to_string())
                .collect();
            labels.sort();
            labels.dedup();
            if labels.is_empty() {
                relevant = false;
                break;
            }
            allowed.push(Some(labels));
        }
        if relevant {
            answers.push(OracleAnswer {
                mapping: id,
                probability: m.prob,
                matches: oracle_matches(q, &allowed, doc),
            });
        }
    }
    answers
}

/// The documented per-mapping aggregate fold, independently: count is
/// the match count; sum/min/max fold the numeric subject (spine-leaf)
/// values, undefined when no match contributes one.
fn oracle_row_value(
    func: AggFunc,
    matches: &[TwigMatch],
    q: &TwigPattern,
    doc: &Document,
) -> Option<f64> {
    if func == AggFunc::Count {
        return Some(matches.len() as f64);
    }
    let subject = q.spine_leaf();
    let values: Vec<f64> = matches
        .iter()
        .filter_map(|m| doc.text(m.nodes[subject.idx()]).and_then(oracle_numeric))
        .collect();
    let (&first, rest) = values.split_first()?;
    Some(rest.iter().fold(first, |acc, &v| match func {
        AggFunc::Count => unreachable!(),
        AggFunc::Sum => acc + v,
        AggFunc::Min => acc.min(v),
        AggFunc::Max => acc.max(v),
    }))
}

/// `Σ p·v / Σ p` over the defined rows, `None` when nothing defines a
/// value or no defining row carries mass.
fn oracle_marginal(rows: &[(f64, Option<f64>)]) -> Option<f64> {
    let (mut mass, mut acc, mut any) = (0.0, 0.0, false);
    for &(p, v) in rows {
        if let Some(v) = v {
            any = true;
            mass += p;
            acc += p * v;
        }
    }
    (any && mass > 0.0).then(|| acc / mass)
}

// ---------------------------------------------------------------------
// the differential harness

const HINTS: [EvaluatorHint; 4] = [
    EvaluatorHint::Auto,
    EvaluatorHint::Naive,
    EvaluatorHint::BlockTree,
    EvaluatorHint::Compiled,
];

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn sorted(mut matches: Vec<TwigMatch>) -> Vec<TwigMatch> {
    matches.sort();
    matches
}

/// Runs one PTQ under every hint, asserts full backend agreement, then
/// oracle agreement. Returns the (shared) answers for extra checks.
fn assert_ptq_differential(engine: &QueryEngine, q: &TwigPattern, label: &str) -> Vec<Answer> {
    let reference = engine
        .run(&Query::ptq(q.clone()).with_evaluator(HINTS[0]))
        .unwrap_or_else(|e| panic!("{label}: {e}"))
        .answers;
    for hint in &HINTS[1..] {
        let got = engine
            .run(&Query::ptq(q.clone()).with_evaluator(*hint))
            .unwrap()
            .answers;
        assert_eq!(got, reference, "{label}: {hint:?} diverges from auto");
        // Warm replay (every cache hot now) must change nothing.
        let warm = engine
            .run(&Query::ptq(q.clone()).with_evaluator(*hint))
            .unwrap()
            .answers;
        assert_eq!(warm, reference, "{label}: warm {hint:?} diverges");
    }

    let expected = oracle_ptq(q, engine.mappings(), engine.document());
    assert_eq!(
        reference.len(),
        expected.len(),
        "{label}: relevant-mapping count diverges from oracle"
    );
    for (got, want) in reference.iter().zip(&expected) {
        assert_eq!(got.mappings, vec![want.mapping], "{label}: mapping order");
        assert_eq!(
            got.probability.to_bits(),
            want.probability.to_bits(),
            "{label}: probability for {:?}",
            want.mapping
        );
        assert_eq!(
            sorted(got.matches.clone()),
            want.matches,
            "{label}: match set for {:?}",
            want.mapping
        );
    }
    reference
}

/// Runs one aggregate under every hint, asserts exact backend agreement
/// and oracle agreement within float tolerance.
fn assert_agg_differential(
    engine: &QueryEngine,
    q: &TwigPattern,
    func: AggFunc,
    label: &str,
) -> AggregateResult {
    let reference = engine
        .run(&Query::aggregate(q.clone(), func))
        .unwrap_or_else(|e| panic!("{label}: {e}"))
        .aggregate
        .unwrap_or_else(|| panic!("{label}: no aggregate block"));
    for hint in &HINTS[1..] {
        let got = engine
            .run(&Query::aggregate(q.clone(), func).with_evaluator(*hint))
            .unwrap()
            .aggregate
            .unwrap();
        assert_eq!(got, reference, "{label} {func}: {hint:?} diverges");
    }

    let expected = oracle_ptq(q, engine.mappings(), engine.document());
    assert_eq!(reference.rows.len(), expected.len(), "{label} {func}: rows");
    let mut oracle_rows = Vec::new();
    for (row, want) in reference.rows.iter().zip(&expected) {
        let value = oracle_row_value(func, &want.matches, q, engine.document());
        assert_eq!(row.mapping, want.mapping, "{label} {func}: row mapping");
        match (row.value, value) {
            (None, None) => {}
            (Some(a), Some(b)) => assert!(close(a, b), "{label} {func}: {a} vs oracle {b}"),
            (a, b) => panic!("{label} {func}: definedness diverges ({a:?} vs {b:?})"),
        }
        oracle_rows.push((want.probability, value));
    }
    match (reference.marginal, oracle_marginal(&oracle_rows)) {
        (None, None) => {}
        (Some(a), Some(b)) => assert!(close(a, b), "{label} {func}: marginal {a} vs {b}"),
        (a, b) => panic!("{label} {func}: marginal definedness ({a:?} vs {b:?})"),
    }
    reference
}

/// One dataset's engine, sized to keep a 10-dataset sweep (with a
/// brute-force oracle behind it) affordable in debug builds.
fn dataset_engine(id: DatasetId) -> QueryEngine {
    let d = Dataset::load(id);
    let pm = PossibleMappings::top_h(&d.matching, 12);
    let doc = Document::generate(
        &d.matching.source,
        &DocGenConfig {
            target_nodes: 300,
            max_repeat: 3,
            text_prob: 0.7,
        },
        0x0D0C,
    );
    let tree = BlockTree::build(
        &d.matching.target,
        &pm,
        &BlockTreeConfig {
            tau: 0.2,
            ..BlockTreeConfig::default()
        },
    );
    QueryEngine::new(pm, doc, tree)
}

/// The new syntax forms, instantiated with real target-schema labels so
/// rewriting has something to do: `root` is the target root's label,
/// `a`/`b` the first two distinct non-root labels.
fn syntax_forms(root: &str, a: &str, b: &str) -> Vec<String> {
    vec![
        format!("//{a}"),
        format!("//{a}[contains(.,'e')]"),
        format!("//{a}[.>=1]"),
        format!("//{a}[.<3.5]"),
        format!("//{a}[@id='1']"),
        format!("//{a}[.='42']"),
        format!("//{b}//*"),
        format!("{root}//{a}"),
        format!("//{b}//{a}[contains(.,'a')][.>=0]"),
    ]
}

#[test]
fn all_backends_match_the_oracle_on_every_dataset() {
    for id in DatasetId::all() {
        let engine = dataset_engine(id);
        let target = &engine.mappings().target;
        let root = target.label(target.root()).to_string();
        let mut labels = target
            .ids()
            .map(|n| target.label(n).to_string())
            .filter(|l| *l != root);
        let a = labels.next().expect("target has a non-root label");
        let b = labels.find(|l| *l != a).unwrap_or_else(|| a.clone());
        for form in syntax_forms(&root, &a, &b) {
            let q = TwigPattern::parse(&form).unwrap_or_else(|e| panic!("{form}: {e}"));
            assert_ptq_differential(&engine, &q, &format!("{} {form}", id.name()));
        }
        // Aggregates over the plain and the predicated descendant form.
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            for form in [format!("//{a}"), format!("//{b}//{a}[.>=0]")] {
                let q = TwigPattern::parse(&form).unwrap();
                assert_agg_differential(&engine, &q, func, &format!("{} {form}", id.name()));
            }
        }
    }
}

// ---------------------------------------------------------------------
// a hand-built scenario where every predicate form actually selects

/// Three price mappings over a shop document with numeric text, a
/// non-numeric decoy, and attributes — so contains / ranges / attr
/// predicates and all four aggregates have non-trivial answers the test
/// can also pin by value, proving the differential is not vacuous.
fn shop_engine() -> QueryEngine {
    let source = Schema::parse_outline("Shop(BP(BPrice) RP(RPrice) Note)").unwrap();
    let target = Schema::parse_outline("SHOP(ITEM(PRICE))").unwrap();
    let s = {
        let source = source.clone();
        move |l: &str| source.nodes_with_label(l)[0]
    };
    let t = {
        let target = target.clone();
        move |l: &str| target.nodes_with_label(l)[0]
    };
    let pm = PossibleMappings::from_pairs(
        source,
        target.clone(),
        vec![
            (
                vec![
                    (s("Shop"), t("SHOP")),
                    (s("BP"), t("ITEM")),
                    (s("BPrice"), t("PRICE")),
                ],
                0.5,
            ),
            (
                vec![
                    (s("Shop"), t("SHOP")),
                    (s("RP"), t("ITEM")),
                    (s("RPrice"), t("PRICE")),
                ],
                0.3,
            ),
            (vec![(s("Shop"), t("SHOP"))], 0.2),
        ],
    );
    let doc = parse_document(
        "<Shop><BP><BPrice cur=\"usd\">10</BPrice><BPrice cur=\"eur\">7.5</BPrice>\
         <BPrice>n/a</BPrice></BP><RP><RPrice cur=\"usd\">3</RPrice></RP>\
         <Note>Bob</Note></Shop>",
    )
    .unwrap();
    let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
    QueryEngine::new(pm, doc, tree)
}

#[test]
fn predicates_select_and_agree_on_the_shop_scenario() {
    let engine = shop_engine();
    // (form, matches under m0 [BPrice], matches under m1 [RPrice])
    let cases = [
        ("//ITEM/PRICE", 3, 1),
        ("//ITEM/PRICE[.>=7.5]", 2, 0), // "n/a" is not numeric
        ("//ITEM/PRICE[.>7.5]", 1, 0),
        ("//ITEM/PRICE[.<3.5]", 0, 1),
        ("//ITEM/PRICE[contains(.,'/')]", 1, 0), // only "n/a"
        ("//ITEM/PRICE[.='10']", 1, 0),
        ("//ITEM/PRICE[@cur='usd']", 1, 1),
        ("//ITEM/PRICE[@cur='eur'][.<=8]", 1, 0), // conjunction
        ("//ITEM/PRICE[@cur>0]", 0, 0),           // attr never numeric
        ("//ITEM/*", 3, 1),                       // wildcard under ITEM
        ("SHOP//PRICE", 3, 1),                    // anchored root + descendant
        ("//ITEM/PRICE[.>100]", 0, 0),            // empty match sets kept
    ];
    for (form, m0, m1) in cases {
        let q = TwigPattern::parse(form).unwrap();
        let answers = assert_ptq_differential(&engine, &q, form);
        assert_eq!(answers.len(), 2, "{form}: both price mappings relevant");
        assert_eq!(
            (answers[0].matches.len(), answers[1].matches.len()),
            (m0, m1),
            "{form}: selected counts"
        );
    }
}

#[test]
fn aggregates_agree_and_pin_documented_values_on_the_shop_scenario() {
    let engine = shop_engine();
    let q = TwigPattern::parse("//ITEM/PRICE").unwrap();
    let pinned = [
        // (func, row values for m0/m1, marginal)
        (AggFunc::Count, [Some(3.0), Some(1.0)], Some(2.25)),
        (
            AggFunc::Sum,
            [Some(17.5), Some(3.0)],
            Some((0.5 * 17.5 + 0.3 * 3.0) / 0.8),
        ),
        (
            AggFunc::Min,
            [Some(7.5), Some(3.0)],
            Some((0.5 * 7.5 + 0.3 * 3.0) / 0.8),
        ),
        (
            AggFunc::Max,
            [Some(10.0), Some(3.0)],
            Some((0.5 * 10.0 + 0.3 * 3.0) / 0.8),
        ),
    ];
    for (func, rows, marginal) in pinned {
        let got = assert_agg_differential(&engine, &q, func, "shop //ITEM/PRICE");
        let values: Vec<Option<f64>> = got.rows.iter().map(|r| r.value).collect();
        assert_eq!(values, rows.to_vec(), "{func}: row values");
        assert_eq!(got.marginal, marginal, "{func}: marginal");
    }

    // Empty match sets: count is 0, the numeric folds are undefined —
    // and a fully undefined column has a null marginal.
    let none = TwigPattern::parse("//ITEM/PRICE[.>100]").unwrap();
    let count = assert_agg_differential(&engine, &none, AggFunc::Count, "shop empty count");
    assert_eq!(count.marginal, Some(0.0));
    let sum = assert_agg_differential(&engine, &none, AggFunc::Sum, "shop empty sum");
    assert!(sum.rows.iter().all(|r| r.value.is_none()));
    assert_eq!(sum.marginal, None);

    // Mixed definedness: only "n/a" matches `contains '/'`, so sum is
    // defined for neither mapping... except m1 has no match at all —
    // both rows are null and so is the marginal, while count stays 1/0.
    let decoy = TwigPattern::parse("//ITEM/PRICE[contains(.,'/')]").unwrap();
    let sum = assert_agg_differential(&engine, &decoy, AggFunc::Sum, "shop decoy sum");
    assert_eq!(sum.marginal, None, "non-numeric matches define no sum");
    let count = assert_agg_differential(&engine, &decoy, AggFunc::Count, "shop decoy count");
    assert_eq!(count.marginal, Some((0.5 * 1.0 + 0.3 * 0.0) / 0.8));
}
