//! The paper's running example (§I, Figures 1–3): XCBL vs OpenTrans
//! purchase orders, where `CONTACT_NAME` of the invoice party has three
//! near-tied candidate correspondences.
//!
//! Reproduces the introduction's query answer
//! `{("Cathy", 0.3), ("Bob", 0.3), ("Alice", 0.2)}`.
//!
//! ```sh
//! cargo run --release --example purchase_order
//! ```

use uxm::core::block_tree::BlockTreeConfig;
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::core::ptq::ptq_basic;
use uxm::prelude::*;
use uxm::xml::parse_document;

fn main() {
    // Fig. 1(a): the source schema, with the paper's element labels
    // (BCN / RCN / OCN are the three ContactName elements).
    let source = Schema::parse_outline("Order(BP(BOC(BCN) ROC(RCN) OOC(OCN)) SP(SCN))").unwrap();
    // Fig. 1(b): the target schema.
    let target = Schema::parse_outline("ORDER(INVOICE_PARTY(CONTACT_NAME))").unwrap();

    // Fig. 2: the source document.
    let doc = parse_document(
        "<Order>\
           <BP>\
             <BOC><BCN>Cathy</BCN></BOC>\
             <ROC><RCN>Bob</RCN></ROC>\
             <OOC><OCN>Alice</OCN></OOC>\
           </BP>\
           <SP><SCN>Dave</SCN></SP>\
         </Order>",
    )
    .unwrap();

    // The three possible mappings of the introduction, with probabilities
    // 0.3 / 0.3 / 0.2 (the remaining 0.2 is an irrelevant mapping).
    let s = |l: &str| source.nodes_with_label(l)[0];
    let t = |l: &str| target.nodes_with_label(l)[0];
    let mappings = PossibleMappings::from_pairs(
        source.clone(),
        target.clone(),
        vec![
            (
                vec![(s("BP"), t("INVOICE_PARTY")), (s("BCN"), t("CONTACT_NAME"))],
                0.3,
            ),
            (
                vec![(s("BP"), t("INVOICE_PARTY")), (s("RCN"), t("CONTACT_NAME"))],
                0.3,
            ),
            (
                vec![(s("BP"), t("INVOICE_PARTY")), (s("OCN"), t("CONTACT_NAME"))],
                0.2,
            ),
            (vec![(s("Order"), t("ORDER"))], 0.2),
        ],
    );

    // The introduction's query: Q = //IP//ICN.
    let q = TwigPattern::parse("//INVOICE_PARTY//CONTACT_NAME").unwrap();
    println!("query: {q}\n");

    let result = ptq_basic(&q, &mappings, &doc);
    println!("PTQ answers (one per relevant mapping):");
    for a in result.iter() {
        for m in &a.matches {
            let name = doc.text(m.nodes[1]).unwrap_or("?");
            println!("  ({name:?}, {:.1})", a.probability);
        }
    }

    // The same through a block-tree query session — identical answers,
    // shared work, and cached rewrites for any follow-up queries.
    let engine = QueryEngine::build(
        mappings,
        doc,
        &BlockTreeConfig {
            tau: 0.4,
            ..BlockTreeConfig::default()
        },
    );
    let via_tree = engine.ptq_with_tree(&q);
    assert_eq!(result, via_tree);
    println!(
        "\nblock tree: {} c-blocks; block-tree evaluation returned identical answers",
        engine.tree().block_count()
    );
}
