//! The paper's running example (§I, Figures 1–3): XCBL vs OpenTrans
//! purchase orders, where `CONTACT_NAME` of the invoice party has three
//! near-tied candidate correspondences.
//!
//! Reproduces the introduction's query answer
//! `{("Cathy", 0.3), ("Bob", 0.3), ("Alice", 0.2)}`.
//!
//! ```sh
//! cargo run --release --example purchase_order
//! ```

use uxm::core::block_tree::BlockTreeConfig;
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::prelude::*;
use uxm::xml::parse_document;

fn main() {
    // Fig. 1(a): the source schema, with the paper's element labels
    // (BCN / RCN / OCN are the three ContactName elements).
    let source = Schema::parse_outline("Order(BP(BOC(BCN) ROC(RCN) OOC(OCN)) SP(SCN))").unwrap();
    // Fig. 1(b): the target schema.
    let target = Schema::parse_outline("ORDER(INVOICE_PARTY(CONTACT_NAME))").unwrap();

    // Fig. 2: the source document.
    let doc = parse_document(
        "<Order>\
           <BP>\
             <BOC><BCN>Cathy</BCN></BOC>\
             <ROC><RCN>Bob</RCN></ROC>\
             <OOC><OCN>Alice</OCN></OOC>\
           </BP>\
           <SP><SCN>Dave</SCN></SP>\
         </Order>",
    )
    .unwrap();

    // The three possible mappings of the introduction, with probabilities
    // 0.3 / 0.3 / 0.2 (the remaining 0.2 is an irrelevant mapping).
    let s = |l: &str| source.nodes_with_label(l)[0];
    let t = |l: &str| target.nodes_with_label(l)[0];
    let mappings = PossibleMappings::from_pairs(
        source.clone(),
        target.clone(),
        vec![
            (
                vec![(s("BP"), t("INVOICE_PARTY")), (s("BCN"), t("CONTACT_NAME"))],
                0.3,
            ),
            (
                vec![(s("BP"), t("INVOICE_PARTY")), (s("RCN"), t("CONTACT_NAME"))],
                0.3,
            ),
            (
                vec![(s("BP"), t("INVOICE_PARTY")), (s("OCN"), t("CONTACT_NAME"))],
                0.2,
            ),
            (vec![(s("Order"), t("ORDER"))], 0.2),
        ],
    );

    // The introduction's query: Q = //IP//ICN, asked through the unified
    // entry point — one session, one typed query, one response shape.
    let engine = QueryEngine::build(
        mappings,
        doc,
        &BlockTreeConfig {
            tau: 0.4,
            ..BlockTreeConfig::default()
        },
    );
    let q = TwigPattern::parse("//INVOICE_PARTY//CONTACT_NAME").unwrap();
    let query = Query::ptq(q);
    println!("query: {query}\n");

    let response = engine.run(&query).unwrap();
    let doc = engine.document();
    println!("PTQ answers (one per relevant mapping):");
    for a in &response.answers {
        for m in &a.matches {
            let name = doc.text(m.nodes[1]).unwrap_or("?");
            println!("  ({name:?}, {:.1})", a.probability);
        }
    }

    // The planner picked an evaluation strategy; pinning either one
    // returns identical answers — the choice is pure performance.
    for hint in [EvaluatorHint::Naive, EvaluatorHint::BlockTree] {
        let pinned = engine.run(&query.clone().with_evaluator(hint)).unwrap();
        assert_eq!(response.answers, pinned.answers);
    }
    println!(
        "\nblock tree: {} c-blocks; auto plan chose {} ({}); both pinned \
         evaluators returned identical answers",
        engine.tree().block_count(),
        response.stats.plan.evaluator,
        response.stats.plan.reason,
    );
}
