//! A Dataspace-style scenario (§I, §V): integrate a large e-commerce
//! schema pair (D7: XCBL → Apertum), keep the matching uncertain, and
//! serve top-k probabilistic twig queries over a purchase-order document.
//!
//! ```sh
//! cargo run --release --example dataspace_topk
//! ```

use std::time::Instant;
use uxm::core::api::Query;
use uxm::core::block_tree::{BlockTree, BlockTreeConfig};
use uxm::core::engine::QueryEngine;
use uxm::core::mapping::PossibleMappings;
use uxm::core::stats::o_ratio;
use uxm::datagen::datasets::{Dataset, DatasetId};
use uxm::datagen::queries::paper_query;
use uxm::xml::{DocGenConfig, Document};

fn main() {
    // D7: XCBL (1076 elements) matched against Apertum (166 elements).
    let d7 = Dataset::load(DatasetId::D7);
    println!(
        "dataset D7: |S| = {}, |T| = {}, {} correspondences",
        d7.matching.source.len(),
        d7.matching.target.len(),
        d7.capacity()
    );

    // 100 possible mappings via the partition-based generator.
    let t0 = Instant::now();
    let mappings = PossibleMappings::top_h(&d7.matching, 100);
    println!(
        "top-100 possible mappings in {:.1} ms (o-ratio {:.2})",
        t0.elapsed().as_secs_f64() * 1e3,
        o_ratio(&mappings)
    );

    // The block tree compresses and indexes them.
    let tree = BlockTree::build(&d7.matching.target, &mappings, &BlockTreeConfig::default());
    println!(
        "block tree: {} c-blocks, {} hash entries, compression ratio {:.1}%",
        tree.block_count(),
        tree.hash_len(),
        uxm::core::compress::compression_ratio(&mappings, &tree) * 100.0
    );

    // An Order.xml-scale source document, wrapped into one query session
    // serving the whole workload.
    let doc = Document::generate(&d7.matching.source, &DocGenConfig::order_xml(), 7);
    println!("source document: {} nodes\n", doc.len());
    let engine = QueryEngine::new(mappings, doc, tree);

    // Q10, full vs top-k, through the unified entry point (the planner
    // picks the evaluator; the response reports its choice).
    let q = paper_query(10);
    println!("query Q10: {q}");

    let t0 = Instant::now();
    let full = engine.run(&Query::ptq(q.clone())).unwrap();
    let t_full = t0.elapsed();
    println!(
        "full PTQ: {} answers in {:.2} ms (probability mass {:.2}, plan {} — {})",
        full.len(),
        t_full.as_secs_f64() * 1e3,
        full.total_probability(),
        full.stats.plan.evaluator,
        full.stats.plan.reason,
    );

    for k in [5, 10, 25] {
        let t0 = Instant::now();
        let top = engine.run(&Query::topk(q.clone(), k)).unwrap();
        let t_top = t0.elapsed();
        println!(
            "top-{k:<3} PTQ: {} answers in {:.2} ms ({:.0}% of full time)",
            top.len(),
            t_top.as_secs_f64() * 1e3,
            100.0 * t_top.as_secs_f64() / t_full.as_secs_f64()
        );
    }

    let stats = engine.cache_stats();
    println!(
        "\nsession caches: {} rewrite hits / {} misses after serving the workload",
        stats.rewrite_hits, stats.rewrite_misses
    );
}
