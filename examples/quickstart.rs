//! Quickstart: match two small schemas, derive possible mappings, open a
//! query session behind an [`EngineRegistry`], serve a batch, round-trip
//! the whole session through an on-disk snapshot, and answer the same
//! query over HTTP — the full `uxm serve` stack, in-process.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use uxm::prelude::*;
use uxm::twig::TwigPattern;

fn main() {
    // 1. Two purchase-order schemas in different naming conventions.
    let source = Schema::parse_outline(
        "Order(Buyer(Name Contact(EMail)) DeliverTo(Address(City Street)) \
         POLine*(LineNo Quantity UnitPrice))",
    )
    .unwrap();
    let target = Schema::parse_outline(
        "PURCHASE_ORDER(BUYER_PARTY(NAME CONTACT(E_MAIL)) \
         DELIVER_TO(ADDRESS(CITY STREET)) \
         PO_LINE(LINE_NO QUANTITY UNIT_PRICE))",
    )
    .unwrap();
    println!("source: {source}");
    println!("target: {target}\n");

    // 2. Match them (a COMA++-style composite matcher).
    let matching = Matcher::default().match_schemas(&source, &target);
    println!("matcher found {} correspondences", matching.capacity());

    // 3. Derive the top-16 possible mappings, with probabilities.
    let mappings = PossibleMappings::top_h(&matching, 16);
    println!("derived {} possible mappings", mappings.len());
    for (id, m) in mappings.iter().take(3) {
        println!("  {id:?}: {} pairs, p = {:.3}", m.len(), m.prob);
    }

    // 4. Generate a source document and build the session engine: block
    //    tree plus derived state (interned labels, relevance bitsets,
    //    sharded rewrite caches) — built once, then shared freely, since
    //    the engine is `Send + Sync`.
    let doc = Document::generate(&source, &DocGenConfig::small(), 42);
    let engine = QueryEngine::build(mappings, doc, &BlockTreeConfig::default());
    println!(
        "\nblock tree: {} c-blocks (min support {})",
        engine.tree().block_count(),
        engine.tree().min_support
    );

    // 5. Serve it through a registry. A real service registers one engine
    //    per (schema pair, document) under a memory budget; queries are
    //    answered in batches, concurrently under `--features parallel`.
    let registry = EngineRegistry::with_config(RegistryConfig {
        memory_budget: 64 << 20, // 64 MiB of resident engines
        ..RegistryConfig::default()
    })
    .snapshot_dir(std::env::temp_dir().join("uxm-quickstart"));
    registry.insert("purchase-orders", engine);

    let q = TwigPattern::parse("PURCHASE_ORDER//E_MAIL").unwrap();
    // Distinct granularity merges identical match sets and reports which
    // mappings contributed to each answer (provenance).
    let distinct = Query::ptq(q.clone()).with_granularity(Granularity::Distinct);
    let answers = registry.batch(&[
        BatchQuery::new("purchase-orders", distinct.clone()),
        BatchQuery::new("purchase-orders", Query::topk(q.clone(), 3)),
    ]);
    let handle = registry.get("purchase-orders").unwrap();
    println!(
        "\nquery: {q}  (against a {}-node source document)",
        handle.document().len()
    );
    if let Ok(full) = &answers[0] {
        for answer in &full.answers {
            let texts: Vec<&str> = answer
                .matches
                .iter()
                .filter_map(|m| handle.document().text(*m.nodes.last().unwrap()))
                .collect();
            println!(
                "  p = {:.3} (from {} mapping(s)): {texts:?}",
                answer.probability,
                answer.mappings.len()
            );
        }
    }

    // 6. Persist the session and hydrate it back — a restarted service
    //    warms up from the snapshot instead of re-matching schemas.
    let path = registry.save("purchase-orders").unwrap();
    let restarted = EngineRegistry::new().snapshot_dir(path.parent().unwrap());
    let rehydrated = restarted.fetch("purchase-orders").unwrap();
    assert_eq!(
        rehydrated.run(&distinct).unwrap().answers,
        handle.run(&distinct).unwrap().answers
    );
    println!(
        "\nsnapshot: {} ({} bytes) rehydrates to identical answers",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // 7. The same registry over HTTP — what `uxm serve` runs. The
    //    in-process `Client` speaks the canonical JSON wire format over
    //    a real loopback socket (docs/wire-format.md, docs/serving.md).
    let served = Server::bind(
        std::sync::Arc::new(restarted),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .start();
    let mut client = uxm::core::server::Client::connect(served.addr()).unwrap();
    let (status, body) = client.query("purchase-orders", &distinct).unwrap();
    assert_eq!(status, 200);
    let over_http = uxm::core::json::Json::parse(&body).unwrap();
    assert_eq!(
        over_http.get("answers").unwrap().to_string(),
        rehydrated
            .run(&distinct)
            .unwrap()
            .to_json()
            .get("answers")
            .unwrap()
            .to_string(),
        "HTTP answers are the engine's answers, byte for byte"
    );
    println!(
        "served over http://{}: {} bytes of canonical JSON, same answers",
        served.addr(),
        body.len()
    );
    served.shutdown();
}
