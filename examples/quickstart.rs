//! Quickstart: match two small schemas, derive possible mappings, build a
//! block tree, and run a probabilistic twig query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use uxm::prelude::*;

fn main() {
    // 1. Two purchase-order schemas in different naming conventions.
    let source = Schema::parse_outline(
        "Order(Buyer(Name Contact(EMail)) DeliverTo(Address(City Street)) \
         POLine*(LineNo Quantity UnitPrice))",
    )
    .unwrap();
    let target = Schema::parse_outline(
        "PURCHASE_ORDER(BUYER_PARTY(NAME CONTACT(E_MAIL)) \
         DELIVER_TO(ADDRESS(CITY STREET)) \
         PO_LINE(LINE_NO QUANTITY UNIT_PRICE))",
    )
    .unwrap();
    println!("source: {source}");
    println!("target: {target}\n");

    // 2. Match them (a COMA++-style composite matcher).
    let matching = Matcher::default().match_schemas(&source, &target);
    println!("matcher found {} correspondences", matching.capacity());

    // 3. Derive the top-16 possible mappings, with probabilities.
    let mappings = PossibleMappings::top_h(&matching, 16);
    println!("derived {} possible mappings", mappings.len());
    for (id, m) in mappings.iter().take(3) {
        println!("  {id:?}: {} pairs, p = {:.3}", m.len(), m.prob);
    }

    // 4. Generate a source document and open a query session: the engine
    //    builds the block tree plus its derived state (interned labels,
    //    relevance bitsets, rewrite cache) once, then serves any number
    //    of queries.
    let doc = Document::generate(&source, &DocGenConfig::small(), 42);
    let engine = QueryEngine::build(mappings, doc, &BlockTreeConfig::default());
    println!(
        "\nblock tree: {} c-blocks (min support {})",
        engine.tree().block_count(),
        engine.tree().min_support
    );

    // 5. Ask a probabilistic twig query *posed on the target schema*.
    let q = TwigPattern::parse("PURCHASE_ORDER//E_MAIL").unwrap();
    println!(
        "\nquery: {q}  (against a {}-node source document)",
        engine.document().len()
    );

    let answers = engine.ptq_with_tree(&q);
    for (matches, prob) in answers.aggregate() {
        let texts: Vec<&str> = matches
            .iter()
            .filter_map(|m| engine.document().text(*m.nodes.last().unwrap()))
            .collect();
        println!("  p = {prob:.3}: {texts:?}");
    }
}
