//! Top-h mapping generation (§V): whole-graph Murty/Pascoal ranking vs the
//! paper's partition-based divide and conquer, on dataset D6.
//!
//! ```sh
//! cargo run --release --example mapping_generation
//! ```

use std::time::Instant;
use uxm::assignment::murty::RankVariant;
use uxm::assignment::partition::{murty_top_h_mappings, partition, partition_top_h};
use uxm::datagen::datasets::{Dataset, DatasetId};

fn main() {
    let d6 = Dataset::load(DatasetId::D6);
    println!(
        "dataset D6: OpenTrans ({}) -> Apertum ({}), {} correspondences",
        d6.matching.source.len(),
        d6.matching.target.len(),
        d6.capacity()
    );

    // The sparse bipartite splits into many small partitions.
    let parts = partition(&d6.matching);
    let largest = parts.iter().map(|p| p.size()).max().unwrap_or(0);
    println!(
        "{} partitions; largest has {} elements (of {} matched)\n",
        parts.len(),
        largest,
        d6.matching.matched_sources().len() + d6.matching.matched_targets().len()
    );

    let h = 100;

    let t0 = Instant::now();
    let direct = murty_top_h_mappings(&d6.matching, h, RankVariant::PascoalLazy);
    let t_murty = t0.elapsed();
    println!("murty     top-{h}: {:>8.2} ms", t_murty.as_secs_f64() * 1e3);

    let t0 = Instant::now();
    let partitioned = partition_top_h(&d6.matching, h);
    let t_part = t0.elapsed();
    println!("partition top-{h}: {:>8.2} ms", t_part.as_secs_f64() * 1e3);
    println!(
        "improvement: {:.1}%\n",
        (1.0 - t_part.as_secs_f64() / t_murty.as_secs_f64()) * 100.0
    );

    // Both produce the same ranking (scores agree at every rank).
    assert_eq!(direct.len(), partitioned.len());
    for (i, (a, b)) in direct.iter().zip(&partitioned).enumerate() {
        assert!(
            (a.score - b.score).abs() < 1e-9,
            "rank {i}: {} vs {}",
            a.score,
            b.score
        );
    }
    println!("rankings agree at every rank; top mappings:");
    for (i, m) in partitioned.iter().take(5).enumerate() {
        println!(
            "  #{:<2} score {:.2}  ({} correspondences)",
            i + 1,
            m.score,
            m.pairs.len()
        );
    }
}
