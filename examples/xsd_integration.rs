//! Integrating two parties' purchase-order formats from their XSD files:
//! read both schemas, match them, inspect the uncertainty, and answer a
//! query — the full B2B scenario of the paper's introduction, starting
//! from the artifact real standards actually ship.
//!
//! ```sh
//! cargo run --release --example xsd_integration
//! ```

use uxm::prelude::*;

const SUPPLIER_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Order">
    <xs:complexType><xs:sequence>
      <xs:element name="BuyerParty">
        <xs:complexType><xs:sequence>
          <xs:element name="PartyName" type="xs:string"/>
          <xs:element name="ContactEMail" type="xs:string"/>
        </xs:sequence></xs:complexType>
      </xs:element>
      <xs:element name="OrderLine" maxOccurs="unbounded">
        <xs:complexType><xs:sequence>
          <xs:element name="LineNumber" type="xs:int"/>
          <xs:element name="Qty" type="xs:int"/>
          <xs:element name="UnitPrice" type="xs:decimal"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

const BUYER_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="PURCHASE_ORDER">
    <xsd:complexType><xsd:sequence>
      <xsd:element name="BUYER">
        <xsd:complexType><xsd:sequence>
          <xsd:element name="NAME" type="xsd:string"/>
          <xsd:element name="E_MAIL" type="xsd:string"/>
        </xsd:sequence></xsd:complexType>
      </xsd:element>
      <xsd:element name="PO_LINE" maxOccurs="unbounded">
        <xsd:complexType><xsd:sequence>
          <xsd:element name="LINE_NO" type="xsd:int"/>
          <xsd:element name="QUANTITY" type="xsd:int"/>
          <xsd:element name="UNIT_PRICE" type="xsd:decimal"/>
        </xsd:sequence></xsd:complexType>
      </xsd:element>
    </xsd:sequence></xsd:complexType>
  </xsd:element>
</xsd:schema>"#;

fn main() {
    // 1. Read both formats from XSD.
    let source = Schema::from_xsd(SUPPLIER_XSD).expect("supplier XSD");
    let target = Schema::from_xsd(BUYER_XSD).expect("buyer XSD");
    println!("supplier: {}", source.to_outline());
    println!("buyer:    {}\n", target.to_outline());

    // 2. Match, keep the uncertainty. The two parties' vocabularies are
    //    far apart (Order vs PURCHASE_ORDER), so accept weaker evidence.
    let matcher = Matcher {
        threshold: 0.45,
        ..Matcher::default()
    };
    let matching = matcher.match_schemas(&source, &target);
    println!("{} correspondences:", matching.capacity());
    for c in matching.correspondences() {
        println!(
            "  {:<30} ~ {:<35} {:.2}",
            source.path(c.source),
            target.path(c.target),
            c.score
        );
    }
    let mappings = PossibleMappings::top_h(&matching, 20);

    // 3. A supplier-side document, served through one query session in
    //    the buyer's vocabulary.
    let doc = Document::generate(&source, &DocGenConfig::small(), 3);
    let engine = QueryEngine::build(mappings, doc, &BlockTreeConfig::default());
    println!(
        "\n{} possible mappings, {} c-blocks",
        engine.mappings().len(),
        engine.tree().block_count()
    );
    let q = TwigPattern::parse("PURCHASE_ORDER/PO_LINE[./QUANTITY]/UNIT_PRICE").unwrap();
    println!("\nbuyer query: {q}");
    let result = engine.run(&Query::ptq(q)).unwrap();
    let doc = engine.document();
    for (m, p) in result.match_probabilities().into_iter().take(5) {
        let price_node = *m.nodes.last().expect("non-empty");
        println!(
            "  p = {:.2}  {} = {}",
            p,
            doc.path(price_node),
            doc.text(price_node).unwrap_or("?")
        );
    }
}
