/root/repo/target/release/deps/uxm_xml-3431725807052c22.d: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/symbol.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs

/root/repo/target/release/deps/libuxm_xml-3431725807052c22.rlib: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/symbol.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs

/root/repo/target/release/deps/libuxm_xml-3431725807052c22.rmeta: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/symbol.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs

crates/xml/src/lib.rs:
crates/xml/src/docgen.rs:
crates/xml/src/document.rs:
crates/xml/src/ids.rs:
crates/xml/src/parser.rs:
crates/xml/src/schema.rs:
crates/xml/src/symbol.rs:
crates/xml/src/writer.rs:
crates/xml/src/xsd.rs:
