/root/repo/target/release/deps/fig10_generation-73f7a2c9adcc2d91.d: crates/bench/benches/fig10_generation.rs

/root/repo/target/release/deps/fig10_generation-73f7a2c9adcc2d91: crates/bench/benches/fig10_generation.rs

crates/bench/benches/fig10_generation.rs:
