/root/repo/target/release/deps/uxm_matching-67c8b4db9447c441.d: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

/root/repo/target/release/deps/uxm_matching-67c8b4db9447c441: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

crates/matching/src/lib.rs:
crates/matching/src/correspondence.rs:
crates/matching/src/matcher.rs:
crates/matching/src/similarity.rs:
crates/matching/src/structural.rs:
