/root/repo/target/release/deps/extensions-4b5b99ab07edd5f0.d: crates/bench/benches/extensions.rs

/root/repo/target/release/deps/extensions-4b5b99ab07edd5f0: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
