/root/repo/target/release/deps/proptest-3bdb4e500f6b7d61.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-3bdb4e500f6b7d61: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
