/root/repo/target/release/deps/repro-5622d2d4977d7d68.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-5622d2d4977d7d68: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
