/root/repo/target/release/deps/rand-47d7920d5b0ea474.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-47d7920d5b0ea474.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-47d7920d5b0ea474.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
