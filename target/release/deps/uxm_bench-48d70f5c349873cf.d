/root/repo/target/release/deps/uxm_bench-48d70f5c349873cf.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libuxm_bench-48d70f5c349873cf.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/libuxm_bench-48d70f5c349873cf.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
