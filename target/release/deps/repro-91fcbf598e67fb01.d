/root/repo/target/release/deps/repro-91fcbf598e67fb01.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-91fcbf598e67fb01: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
