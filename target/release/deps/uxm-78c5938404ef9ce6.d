/root/repo/target/release/deps/uxm-78c5938404ef9ce6.d: src/lib.rs

/root/repo/target/release/deps/libuxm-78c5938404ef9ce6.rlib: src/lib.rs

/root/repo/target/release/deps/libuxm-78c5938404ef9ce6.rmeta: src/lib.rs

src/lib.rs:
