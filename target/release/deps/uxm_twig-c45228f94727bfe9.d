/root/repo/target/release/deps/uxm_twig-c45228f94727bfe9.d: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

/root/repo/target/release/deps/libuxm_twig-c45228f94727bfe9.rlib: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

/root/repo/target/release/deps/libuxm_twig-c45228f94727bfe9.rmeta: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

crates/twig/src/lib.rs:
crates/twig/src/matcher.rs:
crates/twig/src/naive.rs:
crates/twig/src/pattern.rs:
crates/twig/src/resolve.rs:
crates/twig/src/structural_join.rs:
