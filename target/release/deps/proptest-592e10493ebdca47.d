/root/repo/target/release/deps/proptest-592e10493ebdca47.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-592e10493ebdca47.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-592e10493ebdca47.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
