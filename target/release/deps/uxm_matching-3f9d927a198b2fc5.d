/root/repo/target/release/deps/uxm_matching-3f9d927a198b2fc5.d: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

/root/repo/target/release/deps/libuxm_matching-3f9d927a198b2fc5.rlib: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

/root/repo/target/release/deps/libuxm_matching-3f9d927a198b2fc5.rmeta: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

crates/matching/src/lib.rs:
crates/matching/src/correspondence.rs:
crates/matching/src/matcher.rs:
crates/matching/src/similarity.rs:
crates/matching/src/structural.rs:
