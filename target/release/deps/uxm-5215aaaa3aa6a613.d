/root/repo/target/release/deps/uxm-5215aaaa3aa6a613.d: src/bin/uxm.rs

/root/repo/target/release/deps/uxm-5215aaaa3aa6a613: src/bin/uxm.rs

src/bin/uxm.rs:
