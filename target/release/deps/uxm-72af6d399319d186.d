/root/repo/target/release/deps/uxm-72af6d399319d186.d: src/bin/uxm.rs

/root/repo/target/release/deps/uxm-72af6d399319d186: src/bin/uxm.rs

src/bin/uxm.rs:
