/root/repo/target/release/deps/fig10_query-eb07a292e044ecb6.d: crates/bench/benches/fig10_query.rs

/root/repo/target/release/deps/fig10_query-eb07a292e044ecb6: crates/bench/benches/fig10_query.rs

crates/bench/benches/fig10_query.rs:
