/root/repo/target/release/deps/uxm_xml-17fd73307e8c1b98.d: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs

/root/repo/target/release/deps/uxm_xml-17fd73307e8c1b98: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs

crates/xml/src/lib.rs:
crates/xml/src/docgen.rs:
crates/xml/src/document.rs:
crates/xml/src/ids.rs:
crates/xml/src/parser.rs:
crates/xml/src/schema.rs:
crates/xml/src/writer.rs:
crates/xml/src/xsd.rs:
