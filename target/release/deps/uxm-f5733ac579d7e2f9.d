/root/repo/target/release/deps/uxm-f5733ac579d7e2f9.d: src/lib.rs

/root/repo/target/release/deps/uxm-f5733ac579d7e2f9: src/lib.rs

src/lib.rs:
