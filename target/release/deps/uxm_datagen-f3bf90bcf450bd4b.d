/root/repo/target/release/deps/uxm_datagen-f3bf90bcf450bd4b.d: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

/root/repo/target/release/deps/libuxm_datagen-f3bf90bcf450bd4b.rlib: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

/root/repo/target/release/deps/libuxm_datagen-f3bf90bcf450bd4b.rmeta: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/datasets.rs:
crates/datagen/src/queries.rs:
crates/datagen/src/schema_gen.rs:
crates/datagen/src/vocab.rs:
