/root/repo/target/release/deps/uxm-8d65198c5d64cce2.d: src/lib.rs

/root/repo/target/release/deps/libuxm-8d65198c5d64cce2.rlib: src/lib.rs

/root/repo/target/release/deps/libuxm-8d65198c5d64cce2.rmeta: src/lib.rs

src/lib.rs:
