/root/repo/target/release/deps/uxm_datagen-19361c85b0cafc90.d: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

/root/repo/target/release/deps/uxm_datagen-19361c85b0cafc90: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/datasets.rs:
crates/datagen/src/queries.rs:
crates/datagen/src/schema_gen.rs:
crates/datagen/src/vocab.rs:
