/root/repo/target/release/deps/rand-59426a9fc20af961.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/rand-59426a9fc20af961: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
