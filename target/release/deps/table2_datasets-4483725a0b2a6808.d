/root/repo/target/release/deps/table2_datasets-4483725a0b2a6808.d: crates/bench/benches/table2_datasets.rs

/root/repo/target/release/deps/table2_datasets-4483725a0b2a6808: crates/bench/benches/table2_datasets.rs

crates/bench/benches/table2_datasets.rs:
