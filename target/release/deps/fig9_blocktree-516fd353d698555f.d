/root/repo/target/release/deps/fig9_blocktree-516fd353d698555f.d: crates/bench/benches/fig9_blocktree.rs

/root/repo/target/release/deps/fig9_blocktree-516fd353d698555f: crates/bench/benches/fig9_blocktree.rs

crates/bench/benches/fig9_blocktree.rs:
