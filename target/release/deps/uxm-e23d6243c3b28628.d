/root/repo/target/release/deps/uxm-e23d6243c3b28628.d: src/bin/uxm.rs

/root/repo/target/release/deps/uxm-e23d6243c3b28628: src/bin/uxm.rs

src/bin/uxm.rs:
