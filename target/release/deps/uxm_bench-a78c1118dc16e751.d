/root/repo/target/release/deps/uxm_bench-a78c1118dc16e751.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/release/deps/uxm_bench-a78c1118dc16e751: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
