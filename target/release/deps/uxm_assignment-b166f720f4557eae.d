/root/repo/target/release/deps/uxm_assignment-b166f720f4557eae.d: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

/root/repo/target/release/deps/uxm_assignment-b166f720f4557eae: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

crates/assignment/src/lib.rs:
crates/assignment/src/bipartite.rs:
crates/assignment/src/brute.rs:
crates/assignment/src/merge.rs:
crates/assignment/src/murty.rs:
crates/assignment/src/partition.rs:
crates/assignment/src/solver.rs:
