/root/repo/target/release/deps/uxm_assignment-7dba211ee18349e5.d: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

/root/repo/target/release/deps/libuxm_assignment-7dba211ee18349e5.rlib: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

/root/repo/target/release/deps/libuxm_assignment-7dba211ee18349e5.rmeta: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

crates/assignment/src/lib.rs:
crates/assignment/src/bipartite.rs:
crates/assignment/src/brute.rs:
crates/assignment/src/merge.rs:
crates/assignment/src/murty.rs:
crates/assignment/src/partition.rs:
crates/assignment/src/solver.rs:
