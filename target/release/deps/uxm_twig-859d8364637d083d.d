/root/repo/target/release/deps/uxm_twig-859d8364637d083d.d: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

/root/repo/target/release/deps/uxm_twig-859d8364637d083d: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

crates/twig/src/lib.rs:
crates/twig/src/matcher.rs:
crates/twig/src/naive.rs:
crates/twig/src/pattern.rs:
crates/twig/src/resolve.rs:
crates/twig/src/structural_join.rs:
