/root/repo/target/release/deps/criterion-bb0653d6a38497f6.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-bb0653d6a38497f6.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-bb0653d6a38497f6.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
