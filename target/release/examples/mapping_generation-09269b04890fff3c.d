/root/repo/target/release/examples/mapping_generation-09269b04890fff3c.d: examples/mapping_generation.rs

/root/repo/target/release/examples/mapping_generation-09269b04890fff3c: examples/mapping_generation.rs

examples/mapping_generation.rs:
