/root/repo/target/release/examples/dataspace_topk-3a040af6f2f62c59.d: examples/dataspace_topk.rs

/root/repo/target/release/examples/dataspace_topk-3a040af6f2f62c59: examples/dataspace_topk.rs

examples/dataspace_topk.rs:
