/root/repo/target/release/examples/__overhead-f84681b839620069.d: examples/__overhead.rs

/root/repo/target/release/examples/__overhead-f84681b839620069: examples/__overhead.rs

examples/__overhead.rs:
