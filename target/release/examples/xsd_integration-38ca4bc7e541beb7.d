/root/repo/target/release/examples/xsd_integration-38ca4bc7e541beb7.d: examples/xsd_integration.rs

/root/repo/target/release/examples/xsd_integration-38ca4bc7e541beb7: examples/xsd_integration.rs

examples/xsd_integration.rs:
