/root/repo/target/release/examples/purchase_order-f08d5a2860b4c37b.d: examples/purchase_order.rs

/root/repo/target/release/examples/purchase_order-f08d5a2860b4c37b: examples/purchase_order.rs

examples/purchase_order.rs:
