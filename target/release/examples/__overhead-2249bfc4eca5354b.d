/root/repo/target/release/examples/__overhead-2249bfc4eca5354b.d: crates/bench/examples/__overhead.rs

/root/repo/target/release/examples/__overhead-2249bfc4eca5354b: crates/bench/examples/__overhead.rs

crates/bench/examples/__overhead.rs:
