/root/repo/target/release/examples/__timing-b7e4593ebaa65e4d.d: examples/__timing.rs

/root/repo/target/release/examples/__timing-b7e4593ebaa65e4d: examples/__timing.rs

examples/__timing.rs:
