/root/repo/target/release/examples/quickstart-7d8d90f9ea4cb278.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7d8d90f9ea4cb278: examples/quickstart.rs

examples/quickstart.rs:
