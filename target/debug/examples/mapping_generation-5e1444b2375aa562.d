/root/repo/target/debug/examples/mapping_generation-5e1444b2375aa562.d: examples/mapping_generation.rs

/root/repo/target/debug/examples/libmapping_generation-5e1444b2375aa562.rmeta: examples/mapping_generation.rs

examples/mapping_generation.rs:
