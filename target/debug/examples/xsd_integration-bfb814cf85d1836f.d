/root/repo/target/debug/examples/xsd_integration-bfb814cf85d1836f.d: examples/xsd_integration.rs

/root/repo/target/debug/examples/xsd_integration-bfb814cf85d1836f: examples/xsd_integration.rs

examples/xsd_integration.rs:
