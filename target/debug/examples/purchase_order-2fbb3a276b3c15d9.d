/root/repo/target/debug/examples/purchase_order-2fbb3a276b3c15d9.d: examples/purchase_order.rs

/root/repo/target/debug/examples/purchase_order-2fbb3a276b3c15d9: examples/purchase_order.rs

examples/purchase_order.rs:
