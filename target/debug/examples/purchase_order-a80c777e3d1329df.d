/root/repo/target/debug/examples/purchase_order-a80c777e3d1329df.d: examples/purchase_order.rs

/root/repo/target/debug/examples/purchase_order-a80c777e3d1329df: examples/purchase_order.rs

examples/purchase_order.rs:
