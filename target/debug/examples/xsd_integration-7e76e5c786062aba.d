/root/repo/target/debug/examples/xsd_integration-7e76e5c786062aba.d: examples/xsd_integration.rs Cargo.toml

/root/repo/target/debug/examples/libxsd_integration-7e76e5c786062aba.rmeta: examples/xsd_integration.rs Cargo.toml

examples/xsd_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
