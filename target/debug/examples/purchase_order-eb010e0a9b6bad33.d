/root/repo/target/debug/examples/purchase_order-eb010e0a9b6bad33.d: examples/purchase_order.rs

/root/repo/target/debug/examples/libpurchase_order-eb010e0a9b6bad33.rmeta: examples/purchase_order.rs

examples/purchase_order.rs:
