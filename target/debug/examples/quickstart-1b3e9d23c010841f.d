/root/repo/target/debug/examples/quickstart-1b3e9d23c010841f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1b3e9d23c010841f: examples/quickstart.rs

examples/quickstart.rs:
