/root/repo/target/debug/examples/mapping_generation-6e9896a1d2719dac.d: examples/mapping_generation.rs

/root/repo/target/debug/examples/mapping_generation-6e9896a1d2719dac: examples/mapping_generation.rs

examples/mapping_generation.rs:
