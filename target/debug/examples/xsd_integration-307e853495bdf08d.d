/root/repo/target/debug/examples/xsd_integration-307e853495bdf08d.d: examples/xsd_integration.rs

/root/repo/target/debug/examples/xsd_integration-307e853495bdf08d: examples/xsd_integration.rs

examples/xsd_integration.rs:
