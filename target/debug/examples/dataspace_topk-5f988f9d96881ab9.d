/root/repo/target/debug/examples/dataspace_topk-5f988f9d96881ab9.d: examples/dataspace_topk.rs

/root/repo/target/debug/examples/dataspace_topk-5f988f9d96881ab9: examples/dataspace_topk.rs

examples/dataspace_topk.rs:
