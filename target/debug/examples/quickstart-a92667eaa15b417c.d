/root/repo/target/debug/examples/quickstart-a92667eaa15b417c.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-a92667eaa15b417c.rmeta: examples/quickstart.rs

examples/quickstart.rs:
