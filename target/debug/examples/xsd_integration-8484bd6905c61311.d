/root/repo/target/debug/examples/xsd_integration-8484bd6905c61311.d: examples/xsd_integration.rs

/root/repo/target/debug/examples/xsd_integration-8484bd6905c61311: examples/xsd_integration.rs

examples/xsd_integration.rs:
