/root/repo/target/debug/examples/mapping_generation-5ddcb9243ede509b.d: examples/mapping_generation.rs

/root/repo/target/debug/examples/mapping_generation-5ddcb9243ede509b: examples/mapping_generation.rs

examples/mapping_generation.rs:
