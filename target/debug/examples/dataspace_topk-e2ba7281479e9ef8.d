/root/repo/target/debug/examples/dataspace_topk-e2ba7281479e9ef8.d: examples/dataspace_topk.rs

/root/repo/target/debug/examples/dataspace_topk-e2ba7281479e9ef8: examples/dataspace_topk.rs

examples/dataspace_topk.rs:
