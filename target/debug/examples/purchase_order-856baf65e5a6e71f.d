/root/repo/target/debug/examples/purchase_order-856baf65e5a6e71f.d: examples/purchase_order.rs

/root/repo/target/debug/examples/purchase_order-856baf65e5a6e71f: examples/purchase_order.rs

examples/purchase_order.rs:
