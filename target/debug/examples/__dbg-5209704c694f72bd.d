/root/repo/target/debug/examples/__dbg-5209704c694f72bd.d: examples/__dbg.rs

/root/repo/target/debug/examples/__dbg-5209704c694f72bd: examples/__dbg.rs

examples/__dbg.rs:
