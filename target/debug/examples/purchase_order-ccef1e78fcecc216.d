/root/repo/target/debug/examples/purchase_order-ccef1e78fcecc216.d: examples/purchase_order.rs

/root/repo/target/debug/examples/libpurchase_order-ccef1e78fcecc216.rmeta: examples/purchase_order.rs

examples/purchase_order.rs:
