/root/repo/target/debug/examples/quickstart-95b08a9c1739461e.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-95b08a9c1739461e.rmeta: examples/quickstart.rs

examples/quickstart.rs:
