/root/repo/target/debug/examples/quickstart-77814b097c13395e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-77814b097c13395e: examples/quickstart.rs

examples/quickstart.rs:
