/root/repo/target/debug/examples/xsd_integration-26efe4955229dd82.d: examples/xsd_integration.rs

/root/repo/target/debug/examples/libxsd_integration-26efe4955229dd82.rmeta: examples/xsd_integration.rs

examples/xsd_integration.rs:
