/root/repo/target/debug/examples/mapping_generation-b1ceb095790ec7e4.d: examples/mapping_generation.rs Cargo.toml

/root/repo/target/debug/examples/libmapping_generation-b1ceb095790ec7e4.rmeta: examples/mapping_generation.rs Cargo.toml

examples/mapping_generation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
