/root/repo/target/debug/examples/dataspace_topk-12fc9891ec53986b.d: examples/dataspace_topk.rs

/root/repo/target/debug/examples/dataspace_topk-12fc9891ec53986b: examples/dataspace_topk.rs

examples/dataspace_topk.rs:
