/root/repo/target/debug/examples/dataspace_topk-2bd4980150f6cb65.d: examples/dataspace_topk.rs

/root/repo/target/debug/examples/libdataspace_topk-2bd4980150f6cb65.rmeta: examples/dataspace_topk.rs

examples/dataspace_topk.rs:
