/root/repo/target/debug/examples/dataspace_topk-bda52720d8ba30a8.d: examples/dataspace_topk.rs

/root/repo/target/debug/examples/libdataspace_topk-bda52720d8ba30a8.rmeta: examples/dataspace_topk.rs

examples/dataspace_topk.rs:
