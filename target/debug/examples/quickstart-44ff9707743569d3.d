/root/repo/target/debug/examples/quickstart-44ff9707743569d3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-44ff9707743569d3: examples/quickstart.rs

examples/quickstart.rs:
