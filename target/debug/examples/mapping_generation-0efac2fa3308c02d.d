/root/repo/target/debug/examples/mapping_generation-0efac2fa3308c02d.d: examples/mapping_generation.rs

/root/repo/target/debug/examples/mapping_generation-0efac2fa3308c02d: examples/mapping_generation.rs

examples/mapping_generation.rs:
