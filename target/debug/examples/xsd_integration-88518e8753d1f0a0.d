/root/repo/target/debug/examples/xsd_integration-88518e8753d1f0a0.d: examples/xsd_integration.rs

/root/repo/target/debug/examples/libxsd_integration-88518e8753d1f0a0.rmeta: examples/xsd_integration.rs

examples/xsd_integration.rs:
