/root/repo/target/debug/examples/purchase_order-7b4b2f3b42968608.d: examples/purchase_order.rs Cargo.toml

/root/repo/target/debug/examples/libpurchase_order-7b4b2f3b42968608.rmeta: examples/purchase_order.rs Cargo.toml

examples/purchase_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
