/root/repo/target/debug/examples/dataspace_topk-a210b48135402007.d: examples/dataspace_topk.rs Cargo.toml

/root/repo/target/debug/examples/libdataspace_topk-a210b48135402007.rmeta: examples/dataspace_topk.rs Cargo.toml

examples/dataspace_topk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
