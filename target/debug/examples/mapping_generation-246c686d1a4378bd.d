/root/repo/target/debug/examples/mapping_generation-246c686d1a4378bd.d: examples/mapping_generation.rs

/root/repo/target/debug/examples/libmapping_generation-246c686d1a4378bd.rmeta: examples/mapping_generation.rs

examples/mapping_generation.rs:
