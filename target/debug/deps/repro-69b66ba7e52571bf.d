/root/repo/target/debug/deps/repro-69b66ba7e52571bf.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-69b66ba7e52571bf.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
