/root/repo/target/debug/deps/table2_datasets-3c4f001f1cecda0e.d: crates/bench/benches/table2_datasets.rs

/root/repo/target/debug/deps/libtable2_datasets-3c4f001f1cecda0e.rmeta: crates/bench/benches/table2_datasets.rs

crates/bench/benches/table2_datasets.rs:
