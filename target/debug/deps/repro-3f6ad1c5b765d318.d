/root/repo/target/debug/deps/repro-3f6ad1c5b765d318.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-3f6ad1c5b765d318.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
