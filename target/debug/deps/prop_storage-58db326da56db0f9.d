/root/repo/target/debug/deps/prop_storage-58db326da56db0f9.d: tests/prop_storage.rs

/root/repo/target/debug/deps/prop_storage-58db326da56db0f9: tests/prop_storage.rs

tests/prop_storage.rs:
