/root/repo/target/debug/deps/uxm_bench-b9a499f56a2c5a40.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/uxm_bench-b9a499f56a2c5a40: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
