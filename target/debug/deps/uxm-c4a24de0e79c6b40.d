/root/repo/target/debug/deps/uxm-c4a24de0e79c6b40.d: src/lib.rs

/root/repo/target/debug/deps/uxm-c4a24de0e79c6b40: src/lib.rs

src/lib.rs:
