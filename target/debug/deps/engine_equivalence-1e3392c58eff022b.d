/root/repo/target/debug/deps/engine_equivalence-1e3392c58eff022b.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/libengine_equivalence-1e3392c58eff022b.rmeta: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
