/root/repo/target/debug/deps/uxm_core-45164ab4fcb0c057.d: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/block_tree.rs crates/core/src/compress.rs crates/core/src/engine.rs crates/core/src/keyword.rs crates/core/src/mapping.rs crates/core/src/path_ptq.rs crates/core/src/ptq.rs crates/core/src/ptq_tree.rs crates/core/src/rewrite.rs crates/core/src/semantics.rs crates/core/src/stats.rs crates/core/src/storage.rs crates/core/src/topk.rs Cargo.toml

/root/repo/target/debug/deps/libuxm_core-45164ab4fcb0c057.rmeta: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/block_tree.rs crates/core/src/compress.rs crates/core/src/engine.rs crates/core/src/keyword.rs crates/core/src/mapping.rs crates/core/src/path_ptq.rs crates/core/src/ptq.rs crates/core/src/ptq_tree.rs crates/core/src/rewrite.rs crates/core/src/semantics.rs crates/core/src/stats.rs crates/core/src/storage.rs crates/core/src/topk.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/block.rs:
crates/core/src/block_tree.rs:
crates/core/src/compress.rs:
crates/core/src/engine.rs:
crates/core/src/keyword.rs:
crates/core/src/mapping.rs:
crates/core/src/path_ptq.rs:
crates/core/src/ptq.rs:
crates/core/src/ptq_tree.rs:
crates/core/src/rewrite.rs:
crates/core/src/semantics.rs:
crates/core/src/stats.rs:
crates/core/src/storage.rs:
crates/core/src/topk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
