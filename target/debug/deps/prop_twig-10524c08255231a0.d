/root/repo/target/debug/deps/prop_twig-10524c08255231a0.d: tests/prop_twig.rs Cargo.toml

/root/repo/target/debug/deps/libprop_twig-10524c08255231a0.rmeta: tests/prop_twig.rs Cargo.toml

tests/prop_twig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
