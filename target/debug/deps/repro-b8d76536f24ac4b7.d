/root/repo/target/debug/deps/repro-b8d76536f24ac4b7.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-b8d76536f24ac4b7: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
