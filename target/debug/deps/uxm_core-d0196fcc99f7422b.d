/root/repo/target/debug/deps/uxm_core-d0196fcc99f7422b.d: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/block_tree.rs crates/core/src/compress.rs crates/core/src/engine.rs crates/core/src/keyword.rs crates/core/src/mapping.rs crates/core/src/path_ptq.rs crates/core/src/ptq.rs crates/core/src/ptq_tree.rs crates/core/src/rewrite.rs crates/core/src/semantics.rs crates/core/src/stats.rs crates/core/src/storage.rs crates/core/src/topk.rs

/root/repo/target/debug/deps/libuxm_core-d0196fcc99f7422b.rlib: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/block_tree.rs crates/core/src/compress.rs crates/core/src/engine.rs crates/core/src/keyword.rs crates/core/src/mapping.rs crates/core/src/path_ptq.rs crates/core/src/ptq.rs crates/core/src/ptq_tree.rs crates/core/src/rewrite.rs crates/core/src/semantics.rs crates/core/src/stats.rs crates/core/src/storage.rs crates/core/src/topk.rs

/root/repo/target/debug/deps/libuxm_core-d0196fcc99f7422b.rmeta: crates/core/src/lib.rs crates/core/src/block.rs crates/core/src/block_tree.rs crates/core/src/compress.rs crates/core/src/engine.rs crates/core/src/keyword.rs crates/core/src/mapping.rs crates/core/src/path_ptq.rs crates/core/src/ptq.rs crates/core/src/ptq_tree.rs crates/core/src/rewrite.rs crates/core/src/semantics.rs crates/core/src/stats.rs crates/core/src/storage.rs crates/core/src/topk.rs

crates/core/src/lib.rs:
crates/core/src/block.rs:
crates/core/src/block_tree.rs:
crates/core/src/compress.rs:
crates/core/src/engine.rs:
crates/core/src/keyword.rs:
crates/core/src/mapping.rs:
crates/core/src/path_ptq.rs:
crates/core/src/ptq.rs:
crates/core/src/ptq_tree.rs:
crates/core/src/rewrite.rs:
crates/core/src/semantics.rs:
crates/core/src/stats.rs:
crates/core/src/storage.rs:
crates/core/src/topk.rs:
