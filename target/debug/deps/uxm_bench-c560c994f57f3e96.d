/root/repo/target/debug/deps/uxm_bench-c560c994f57f3e96.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libuxm_bench-c560c994f57f3e96.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
