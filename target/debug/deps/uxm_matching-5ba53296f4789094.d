/root/repo/target/debug/deps/uxm_matching-5ba53296f4789094.d: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

/root/repo/target/debug/deps/libuxm_matching-5ba53296f4789094.rlib: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

/root/repo/target/debug/deps/libuxm_matching-5ba53296f4789094.rmeta: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

crates/matching/src/lib.rs:
crates/matching/src/correspondence.rs:
crates/matching/src/matcher.rs:
crates/matching/src/similarity.rs:
crates/matching/src/structural.rs:
