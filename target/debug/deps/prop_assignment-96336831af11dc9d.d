/root/repo/target/debug/deps/prop_assignment-96336831af11dc9d.d: tests/prop_assignment.rs

/root/repo/target/debug/deps/prop_assignment-96336831af11dc9d: tests/prop_assignment.rs

tests/prop_assignment.rs:
