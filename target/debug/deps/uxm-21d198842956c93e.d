/root/repo/target/debug/deps/uxm-21d198842956c93e.d: src/bin/uxm.rs Cargo.toml

/root/repo/target/debug/deps/libuxm-21d198842956c93e.rmeta: src/bin/uxm.rs Cargo.toml

src/bin/uxm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
