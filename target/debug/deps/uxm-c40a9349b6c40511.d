/root/repo/target/debug/deps/uxm-c40a9349b6c40511.d: src/bin/uxm.rs

/root/repo/target/debug/deps/uxm-c40a9349b6c40511: src/bin/uxm.rs

src/bin/uxm.rs:
