/root/repo/target/debug/deps/uxm_twig-6d7faa6e02a844cb.d: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs Cargo.toml

/root/repo/target/debug/deps/libuxm_twig-6d7faa6e02a844cb.rmeta: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs Cargo.toml

crates/twig/src/lib.rs:
crates/twig/src/matcher.rs:
crates/twig/src/naive.rs:
crates/twig/src/pattern.rs:
crates/twig/src/resolve.rs:
crates/twig/src/structural_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
