/root/repo/target/debug/deps/prop_assignment-91f7f2f11d504618.d: tests/prop_assignment.rs Cargo.toml

/root/repo/target/debug/deps/libprop_assignment-91f7f2f11d504618.rmeta: tests/prop_assignment.rs Cargo.toml

tests/prop_assignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
