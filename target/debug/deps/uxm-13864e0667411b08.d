/root/repo/target/debug/deps/uxm-13864e0667411b08.d: src/lib.rs

/root/repo/target/debug/deps/libuxm-13864e0667411b08.rlib: src/lib.rs

/root/repo/target/debug/deps/libuxm-13864e0667411b08.rmeta: src/lib.rs

src/lib.rs:
