/root/repo/target/debug/deps/table2_datasets-45ab13d68f9d49c9.d: crates/bench/benches/table2_datasets.rs

/root/repo/target/debug/deps/table2_datasets-45ab13d68f9d49c9: crates/bench/benches/table2_datasets.rs

crates/bench/benches/table2_datasets.rs:
