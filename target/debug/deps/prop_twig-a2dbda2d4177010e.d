/root/repo/target/debug/deps/prop_twig-a2dbda2d4177010e.d: tests/prop_twig.rs

/root/repo/target/debug/deps/prop_twig-a2dbda2d4177010e: tests/prop_twig.rs

tests/prop_twig.rs:
