/root/repo/target/debug/deps/fig9_blocktree-826a2a947ada5080.d: crates/bench/benches/fig9_blocktree.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_blocktree-826a2a947ada5080.rmeta: crates/bench/benches/fig9_blocktree.rs Cargo.toml

crates/bench/benches/fig9_blocktree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
