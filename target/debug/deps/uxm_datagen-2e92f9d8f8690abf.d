/root/repo/target/debug/deps/uxm_datagen-2e92f9d8f8690abf.d: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/libuxm_datagen-2e92f9d8f8690abf.rmeta: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/datasets.rs:
crates/datagen/src/queries.rs:
crates/datagen/src/schema_gen.rs:
crates/datagen/src/vocab.rs:
