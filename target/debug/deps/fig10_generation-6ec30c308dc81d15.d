/root/repo/target/debug/deps/fig10_generation-6ec30c308dc81d15.d: crates/bench/benches/fig10_generation.rs

/root/repo/target/debug/deps/fig10_generation-6ec30c308dc81d15: crates/bench/benches/fig10_generation.rs

crates/bench/benches/fig10_generation.rs:
