/root/repo/target/debug/deps/fig10_query-0fc6feac353d5358.d: crates/bench/benches/fig10_query.rs

/root/repo/target/debug/deps/libfig10_query-0fc6feac353d5358.rmeta: crates/bench/benches/fig10_query.rs

crates/bench/benches/fig10_query.rs:
