/root/repo/target/debug/deps/prop_storage-b3086ca0b1cedbc1.d: tests/prop_storage.rs Cargo.toml

/root/repo/target/debug/deps/libprop_storage-b3086ca0b1cedbc1.rmeta: tests/prop_storage.rs Cargo.toml

tests/prop_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
