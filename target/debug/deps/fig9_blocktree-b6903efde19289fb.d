/root/repo/target/debug/deps/fig9_blocktree-b6903efde19289fb.d: crates/bench/benches/fig9_blocktree.rs

/root/repo/target/debug/deps/fig9_blocktree-b6903efde19289fb: crates/bench/benches/fig9_blocktree.rs

crates/bench/benches/fig9_blocktree.rs:
