/root/repo/target/debug/deps/proptest-cb7b909343d7f225.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-cb7b909343d7f225.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
