/root/repo/target/debug/deps/uxm-6fd5f5e11a6d1741.d: src/bin/uxm.rs

/root/repo/target/debug/deps/uxm-6fd5f5e11a6d1741: src/bin/uxm.rs

src/bin/uxm.rs:
