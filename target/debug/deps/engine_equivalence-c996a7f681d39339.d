/root/repo/target/debug/deps/engine_equivalence-c996a7f681d39339.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-c996a7f681d39339: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
