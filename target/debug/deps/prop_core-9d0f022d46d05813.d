/root/repo/target/debug/deps/prop_core-9d0f022d46d05813.d: tests/prop_core.rs

/root/repo/target/debug/deps/libprop_core-9d0f022d46d05813.rmeta: tests/prop_core.rs

tests/prop_core.rs:
