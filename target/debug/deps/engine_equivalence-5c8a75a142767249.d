/root/repo/target/debug/deps/engine_equivalence-5c8a75a142767249.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-5c8a75a142767249: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
