/root/repo/target/debug/deps/prop_twig-d7ae312f303e3979.d: tests/prop_twig.rs

/root/repo/target/debug/deps/prop_twig-d7ae312f303e3979: tests/prop_twig.rs

tests/prop_twig.rs:
