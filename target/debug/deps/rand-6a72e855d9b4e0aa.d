/root/repo/target/debug/deps/rand-6a72e855d9b4e0aa.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6a72e855d9b4e0aa.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
