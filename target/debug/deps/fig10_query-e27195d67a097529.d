/root/repo/target/debug/deps/fig10_query-e27195d67a097529.d: crates/bench/benches/fig10_query.rs

/root/repo/target/debug/deps/libfig10_query-e27195d67a097529.rmeta: crates/bench/benches/fig10_query.rs

crates/bench/benches/fig10_query.rs:
