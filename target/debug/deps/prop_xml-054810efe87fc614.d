/root/repo/target/debug/deps/prop_xml-054810efe87fc614.d: tests/prop_xml.rs

/root/repo/target/debug/deps/prop_xml-054810efe87fc614: tests/prop_xml.rs

tests/prop_xml.rs:
