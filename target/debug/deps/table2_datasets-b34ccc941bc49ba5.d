/root/repo/target/debug/deps/table2_datasets-b34ccc941bc49ba5.d: crates/bench/benches/table2_datasets.rs

/root/repo/target/debug/deps/libtable2_datasets-b34ccc941bc49ba5.rmeta: crates/bench/benches/table2_datasets.rs

crates/bench/benches/table2_datasets.rs:
