/root/repo/target/debug/deps/uxm-77919848c4fb8a52.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuxm-77919848c4fb8a52.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
