/root/repo/target/debug/deps/uxm-2dca9c651a738d12.d: src/bin/uxm.rs

/root/repo/target/debug/deps/uxm-2dca9c651a738d12: src/bin/uxm.rs

src/bin/uxm.rs:
