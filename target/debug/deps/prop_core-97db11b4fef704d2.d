/root/repo/target/debug/deps/prop_core-97db11b4fef704d2.d: tests/prop_core.rs

/root/repo/target/debug/deps/prop_core-97db11b4fef704d2: tests/prop_core.rs

tests/prop_core.rs:
