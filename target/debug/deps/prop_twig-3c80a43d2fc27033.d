/root/repo/target/debug/deps/prop_twig-3c80a43d2fc27033.d: tests/prop_twig.rs

/root/repo/target/debug/deps/prop_twig-3c80a43d2fc27033: tests/prop_twig.rs

tests/prop_twig.rs:
