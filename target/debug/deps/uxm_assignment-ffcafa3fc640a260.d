/root/repo/target/debug/deps/uxm_assignment-ffcafa3fc640a260.d: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

/root/repo/target/debug/deps/libuxm_assignment-ffcafa3fc640a260.rmeta: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

crates/assignment/src/lib.rs:
crates/assignment/src/bipartite.rs:
crates/assignment/src/brute.rs:
crates/assignment/src/merge.rs:
crates/assignment/src/murty.rs:
crates/assignment/src/partition.rs:
crates/assignment/src/solver.rs:
