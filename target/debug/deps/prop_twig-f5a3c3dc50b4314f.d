/root/repo/target/debug/deps/prop_twig-f5a3c3dc50b4314f.d: tests/prop_twig.rs

/root/repo/target/debug/deps/libprop_twig-f5a3c3dc50b4314f.rmeta: tests/prop_twig.rs

tests/prop_twig.rs:
