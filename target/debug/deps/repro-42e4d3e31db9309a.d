/root/repo/target/debug/deps/repro-42e4d3e31db9309a.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-42e4d3e31db9309a: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
