/root/repo/target/debug/deps/rand-5dca215be8c02f41.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5dca215be8c02f41.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
