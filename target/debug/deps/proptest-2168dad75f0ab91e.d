/root/repo/target/debug/deps/proptest-2168dad75f0ab91e.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2168dad75f0ab91e.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
