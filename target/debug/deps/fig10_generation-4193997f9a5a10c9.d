/root/repo/target/debug/deps/fig10_generation-4193997f9a5a10c9.d: crates/bench/benches/fig10_generation.rs

/root/repo/target/debug/deps/libfig10_generation-4193997f9a5a10c9.rmeta: crates/bench/benches/fig10_generation.rs

crates/bench/benches/fig10_generation.rs:
