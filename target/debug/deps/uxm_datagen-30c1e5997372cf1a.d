/root/repo/target/debug/deps/uxm_datagen-30c1e5997372cf1a.d: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/uxm_datagen-30c1e5997372cf1a: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/datasets.rs:
crates/datagen/src/queries.rs:
crates/datagen/src/schema_gen.rs:
crates/datagen/src/vocab.rs:
