/root/repo/target/debug/deps/fig9_blocktree-4f8c63c89be0a386.d: crates/bench/benches/fig9_blocktree.rs

/root/repo/target/debug/deps/libfig9_blocktree-4f8c63c89be0a386.rmeta: crates/bench/benches/fig9_blocktree.rs

crates/bench/benches/fig9_blocktree.rs:
