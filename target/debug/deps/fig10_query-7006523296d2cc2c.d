/root/repo/target/debug/deps/fig10_query-7006523296d2cc2c.d: crates/bench/benches/fig10_query.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_query-7006523296d2cc2c.rmeta: crates/bench/benches/fig10_query.rs Cargo.toml

crates/bench/benches/fig10_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
