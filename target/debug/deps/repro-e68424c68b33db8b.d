/root/repo/target/debug/deps/repro-e68424c68b33db8b.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-e68424c68b33db8b.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
