/root/repo/target/debug/deps/fig10_generation-aefb41e7f18bff87.d: crates/bench/benches/fig10_generation.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_generation-aefb41e7f18bff87.rmeta: crates/bench/benches/fig10_generation.rs Cargo.toml

crates/bench/benches/fig10_generation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
