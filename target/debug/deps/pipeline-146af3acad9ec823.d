/root/repo/target/debug/deps/pipeline-146af3acad9ec823.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-146af3acad9ec823: tests/pipeline.rs

tests/pipeline.rs:
