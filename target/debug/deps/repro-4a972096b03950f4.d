/root/repo/target/debug/deps/repro-4a972096b03950f4.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4a972096b03950f4: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
