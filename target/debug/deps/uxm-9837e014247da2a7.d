/root/repo/target/debug/deps/uxm-9837e014247da2a7.d: src/bin/uxm.rs

/root/repo/target/debug/deps/uxm-9837e014247da2a7: src/bin/uxm.rs

src/bin/uxm.rs:
