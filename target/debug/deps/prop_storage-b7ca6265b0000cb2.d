/root/repo/target/debug/deps/prop_storage-b7ca6265b0000cb2.d: tests/prop_storage.rs

/root/repo/target/debug/deps/libprop_storage-b7ca6265b0000cb2.rmeta: tests/prop_storage.rs

tests/prop_storage.rs:
