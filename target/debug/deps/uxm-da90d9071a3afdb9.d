/root/repo/target/debug/deps/uxm-da90d9071a3afdb9.d: src/bin/uxm.rs

/root/repo/target/debug/deps/libuxm-da90d9071a3afdb9.rmeta: src/bin/uxm.rs

src/bin/uxm.rs:
