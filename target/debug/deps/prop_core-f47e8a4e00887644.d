/root/repo/target/debug/deps/prop_core-f47e8a4e00887644.d: tests/prop_core.rs

/root/repo/target/debug/deps/prop_core-f47e8a4e00887644: tests/prop_core.rs

tests/prop_core.rs:
