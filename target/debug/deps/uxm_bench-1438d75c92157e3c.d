/root/repo/target/debug/deps/uxm_bench-1438d75c92157e3c.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libuxm_bench-1438d75c92157e3c.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libuxm_bench-1438d75c92157e3c.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
