/root/repo/target/debug/deps/pipeline-b06dabd0c7189d31.d: tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-b06dabd0c7189d31.rmeta: tests/pipeline.rs

tests/pipeline.rs:
