/root/repo/target/debug/deps/uxm_bench-580a46b6e70b42be.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libuxm_bench-580a46b6e70b42be.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libuxm_bench-580a46b6e70b42be.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
