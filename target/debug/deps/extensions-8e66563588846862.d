/root/repo/target/debug/deps/extensions-8e66563588846862.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/libextensions-8e66563588846862.rmeta: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
