/root/repo/target/debug/deps/pipeline-74115b1e748adfaa.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-74115b1e748adfaa: tests/pipeline.rs

tests/pipeline.rs:
