/root/repo/target/debug/deps/fig9_blocktree-c60528838d681807.d: crates/bench/benches/fig9_blocktree.rs

/root/repo/target/debug/deps/libfig9_blocktree-c60528838d681807.rmeta: crates/bench/benches/fig9_blocktree.rs

crates/bench/benches/fig9_blocktree.rs:
