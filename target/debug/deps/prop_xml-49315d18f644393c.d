/root/repo/target/debug/deps/prop_xml-49315d18f644393c.d: tests/prop_xml.rs

/root/repo/target/debug/deps/libprop_xml-49315d18f644393c.rmeta: tests/prop_xml.rs

tests/prop_xml.rs:
