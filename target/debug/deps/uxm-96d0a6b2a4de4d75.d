/root/repo/target/debug/deps/uxm-96d0a6b2a4de4d75.d: src/lib.rs

/root/repo/target/debug/deps/uxm-96d0a6b2a4de4d75: src/lib.rs

src/lib.rs:
