/root/repo/target/debug/deps/uxm-aca0288d2972bc0d.d: src/lib.rs

/root/repo/target/debug/deps/uxm-aca0288d2972bc0d: src/lib.rs

src/lib.rs:
