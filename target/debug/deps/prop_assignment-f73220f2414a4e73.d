/root/repo/target/debug/deps/prop_assignment-f73220f2414a4e73.d: tests/prop_assignment.rs

/root/repo/target/debug/deps/prop_assignment-f73220f2414a4e73: tests/prop_assignment.rs

tests/prop_assignment.rs:
