/root/repo/target/debug/deps/uxm_twig-90996dd7f8180e9b.d: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

/root/repo/target/debug/deps/uxm_twig-90996dd7f8180e9b: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

crates/twig/src/lib.rs:
crates/twig/src/matcher.rs:
crates/twig/src/naive.rs:
crates/twig/src/pattern.rs:
crates/twig/src/resolve.rs:
crates/twig/src/structural_join.rs:
