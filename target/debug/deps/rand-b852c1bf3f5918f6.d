/root/repo/target/debug/deps/rand-b852c1bf3f5918f6.d: crates/compat/rand/src/lib.rs

/root/repo/target/debug/deps/rand-b852c1bf3f5918f6: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
