/root/repo/target/debug/deps/uxm-62639ab44b418dc4.d: src/bin/uxm.rs

/root/repo/target/debug/deps/libuxm-62639ab44b418dc4.rmeta: src/bin/uxm.rs

src/bin/uxm.rs:
