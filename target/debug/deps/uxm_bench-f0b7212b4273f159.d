/root/repo/target/debug/deps/uxm_bench-f0b7212b4273f159.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libuxm_bench-f0b7212b4273f159.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
