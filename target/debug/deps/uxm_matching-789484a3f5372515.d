/root/repo/target/debug/deps/uxm_matching-789484a3f5372515.d: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

/root/repo/target/debug/deps/libuxm_matching-789484a3f5372515.rmeta: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

crates/matching/src/lib.rs:
crates/matching/src/correspondence.rs:
crates/matching/src/matcher.rs:
crates/matching/src/similarity.rs:
crates/matching/src/structural.rs:
