/root/repo/target/debug/deps/prop_twig-f0ae403eac12297c.d: tests/prop_twig.rs

/root/repo/target/debug/deps/libprop_twig-f0ae403eac12297c.rmeta: tests/prop_twig.rs

tests/prop_twig.rs:
