/root/repo/target/debug/deps/uxm-28a0bf7e72ed58d3.d: src/bin/uxm.rs

/root/repo/target/debug/deps/uxm-28a0bf7e72ed58d3: src/bin/uxm.rs

src/bin/uxm.rs:
