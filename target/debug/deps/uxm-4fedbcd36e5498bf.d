/root/repo/target/debug/deps/uxm-4fedbcd36e5498bf.d: src/lib.rs

/root/repo/target/debug/deps/libuxm-4fedbcd36e5498bf.rmeta: src/lib.rs

src/lib.rs:
