/root/repo/target/debug/deps/prop_assignment-fb1a5904e858a97f.d: tests/prop_assignment.rs

/root/repo/target/debug/deps/libprop_assignment-fb1a5904e858a97f.rmeta: tests/prop_assignment.rs

tests/prop_assignment.rs:
