/root/repo/target/debug/deps/uxm-7f8acb6e4e16573c.d: src/bin/uxm.rs

/root/repo/target/debug/deps/libuxm-7f8acb6e4e16573c.rmeta: src/bin/uxm.rs

src/bin/uxm.rs:
