/root/repo/target/debug/deps/uxm_bench-527489735c1d55a9.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/libuxm_bench-527489735c1d55a9.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
