/root/repo/target/debug/deps/uxm_datagen-1ce6fc5dc99e1e16.d: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/libuxm_datagen-1ce6fc5dc99e1e16.rlib: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/libuxm_datagen-1ce6fc5dc99e1e16.rmeta: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/datasets.rs:
crates/datagen/src/queries.rs:
crates/datagen/src/schema_gen.rs:
crates/datagen/src/vocab.rs:
