/root/repo/target/debug/deps/uxm_xml-3dabf8ec365e5b2e.d: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/symbol.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs Cargo.toml

/root/repo/target/debug/deps/libuxm_xml-3dabf8ec365e5b2e.rmeta: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/symbol.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs Cargo.toml

crates/xml/src/lib.rs:
crates/xml/src/docgen.rs:
crates/xml/src/document.rs:
crates/xml/src/ids.rs:
crates/xml/src/parser.rs:
crates/xml/src/schema.rs:
crates/xml/src/symbol.rs:
crates/xml/src/writer.rs:
crates/xml/src/xsd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
