/root/repo/target/debug/deps/prop_storage-ef59ddfef92dcbe3.d: tests/prop_storage.rs

/root/repo/target/debug/deps/libprop_storage-ef59ddfef92dcbe3.rmeta: tests/prop_storage.rs

tests/prop_storage.rs:
