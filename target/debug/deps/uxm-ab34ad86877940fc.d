/root/repo/target/debug/deps/uxm-ab34ad86877940fc.d: src/bin/uxm.rs

/root/repo/target/debug/deps/libuxm-ab34ad86877940fc.rmeta: src/bin/uxm.rs

src/bin/uxm.rs:
