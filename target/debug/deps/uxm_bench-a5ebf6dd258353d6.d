/root/repo/target/debug/deps/uxm_bench-a5ebf6dd258353d6.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

/root/repo/target/debug/deps/uxm_bench-a5ebf6dd258353d6: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
