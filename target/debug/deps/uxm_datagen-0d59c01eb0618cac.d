/root/repo/target/debug/deps/uxm_datagen-0d59c01eb0618cac.d: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libuxm_datagen-0d59c01eb0618cac.rmeta: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/datasets.rs:
crates/datagen/src/queries.rs:
crates/datagen/src/schema_gen.rs:
crates/datagen/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
