/root/repo/target/debug/deps/uxm_xml-03f368b9a1ca33ea.d: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/symbol.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs

/root/repo/target/debug/deps/libuxm_xml-03f368b9a1ca33ea.rmeta: crates/xml/src/lib.rs crates/xml/src/docgen.rs crates/xml/src/document.rs crates/xml/src/ids.rs crates/xml/src/parser.rs crates/xml/src/schema.rs crates/xml/src/symbol.rs crates/xml/src/writer.rs crates/xml/src/xsd.rs

crates/xml/src/lib.rs:
crates/xml/src/docgen.rs:
crates/xml/src/document.rs:
crates/xml/src/ids.rs:
crates/xml/src/parser.rs:
crates/xml/src/schema.rs:
crates/xml/src/symbol.rs:
crates/xml/src/writer.rs:
crates/xml/src/xsd.rs:
