/root/repo/target/debug/deps/fig10_query-8c7a2d54d3f18af1.d: crates/bench/benches/fig10_query.rs

/root/repo/target/debug/deps/fig10_query-8c7a2d54d3f18af1: crates/bench/benches/fig10_query.rs

crates/bench/benches/fig10_query.rs:
