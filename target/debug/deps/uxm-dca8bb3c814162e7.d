/root/repo/target/debug/deps/uxm-dca8bb3c814162e7.d: src/bin/uxm.rs Cargo.toml

/root/repo/target/debug/deps/libuxm-dca8bb3c814162e7.rmeta: src/bin/uxm.rs Cargo.toml

src/bin/uxm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
