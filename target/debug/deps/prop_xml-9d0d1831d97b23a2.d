/root/repo/target/debug/deps/prop_xml-9d0d1831d97b23a2.d: tests/prop_xml.rs

/root/repo/target/debug/deps/prop_xml-9d0d1831d97b23a2: tests/prop_xml.rs

tests/prop_xml.rs:
