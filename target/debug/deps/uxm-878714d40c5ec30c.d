/root/repo/target/debug/deps/uxm-878714d40c5ec30c.d: src/lib.rs

/root/repo/target/debug/deps/libuxm-878714d40c5ec30c.rlib: src/lib.rs

/root/repo/target/debug/deps/libuxm-878714d40c5ec30c.rmeta: src/lib.rs

src/lib.rs:
