/root/repo/target/debug/deps/pipeline-055f7ebeed7763a6.d: tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-055f7ebeed7763a6.rmeta: tests/pipeline.rs

tests/pipeline.rs:
