/root/repo/target/debug/deps/uxm_datagen-cc23b9b718c290d0.d: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

/root/repo/target/debug/deps/libuxm_datagen-cc23b9b718c290d0.rmeta: crates/datagen/src/lib.rs crates/datagen/src/datasets.rs crates/datagen/src/queries.rs crates/datagen/src/schema_gen.rs crates/datagen/src/vocab.rs

crates/datagen/src/lib.rs:
crates/datagen/src/datasets.rs:
crates/datagen/src/queries.rs:
crates/datagen/src/schema_gen.rs:
crates/datagen/src/vocab.rs:
