/root/repo/target/debug/deps/uxm_twig-4a3bdd956a680e94.d: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

/root/repo/target/debug/deps/libuxm_twig-4a3bdd956a680e94.rlib: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

/root/repo/target/debug/deps/libuxm_twig-4a3bdd956a680e94.rmeta: crates/twig/src/lib.rs crates/twig/src/matcher.rs crates/twig/src/naive.rs crates/twig/src/pattern.rs crates/twig/src/resolve.rs crates/twig/src/structural_join.rs

crates/twig/src/lib.rs:
crates/twig/src/matcher.rs:
crates/twig/src/naive.rs:
crates/twig/src/pattern.rs:
crates/twig/src/resolve.rs:
crates/twig/src/structural_join.rs:
