/root/repo/target/debug/deps/table2_datasets-58a012ba92a94ae2.d: crates/bench/benches/table2_datasets.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_datasets-58a012ba92a94ae2.rmeta: crates/bench/benches/table2_datasets.rs Cargo.toml

crates/bench/benches/table2_datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
