/root/repo/target/debug/deps/prop_assignment-4d86ded1f3c47dcd.d: tests/prop_assignment.rs

/root/repo/target/debug/deps/prop_assignment-4d86ded1f3c47dcd: tests/prop_assignment.rs

tests/prop_assignment.rs:
