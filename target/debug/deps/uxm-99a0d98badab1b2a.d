/root/repo/target/debug/deps/uxm-99a0d98badab1b2a.d: src/lib.rs

/root/repo/target/debug/deps/libuxm-99a0d98badab1b2a.rmeta: src/lib.rs

src/lib.rs:
