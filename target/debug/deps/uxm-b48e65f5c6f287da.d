/root/repo/target/debug/deps/uxm-b48e65f5c6f287da.d: src/lib.rs

/root/repo/target/debug/deps/libuxm-b48e65f5c6f287da.rmeta: src/lib.rs

src/lib.rs:
