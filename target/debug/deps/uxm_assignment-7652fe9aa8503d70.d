/root/repo/target/debug/deps/uxm_assignment-7652fe9aa8503d70.d: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libuxm_assignment-7652fe9aa8503d70.rmeta: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs Cargo.toml

crates/assignment/src/lib.rs:
crates/assignment/src/bipartite.rs:
crates/assignment/src/brute.rs:
crates/assignment/src/merge.rs:
crates/assignment/src/murty.rs:
crates/assignment/src/partition.rs:
crates/assignment/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
