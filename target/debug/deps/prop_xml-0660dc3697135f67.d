/root/repo/target/debug/deps/prop_xml-0660dc3697135f67.d: tests/prop_xml.rs Cargo.toml

/root/repo/target/debug/deps/libprop_xml-0660dc3697135f67.rmeta: tests/prop_xml.rs Cargo.toml

tests/prop_xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
