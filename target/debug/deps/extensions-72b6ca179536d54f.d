/root/repo/target/debug/deps/extensions-72b6ca179536d54f.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/extensions-72b6ca179536d54f: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
