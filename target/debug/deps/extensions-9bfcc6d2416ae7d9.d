/root/repo/target/debug/deps/extensions-9bfcc6d2416ae7d9.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/libextensions-9bfcc6d2416ae7d9.rmeta: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
