/root/repo/target/debug/deps/uxm_matching-42447d331c954fa0.d: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs Cargo.toml

/root/repo/target/debug/deps/libuxm_matching-42447d331c954fa0.rmeta: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs Cargo.toml

crates/matching/src/lib.rs:
crates/matching/src/correspondence.rs:
crates/matching/src/matcher.rs:
crates/matching/src/similarity.rs:
crates/matching/src/structural.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
