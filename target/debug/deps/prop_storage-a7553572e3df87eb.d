/root/repo/target/debug/deps/prop_storage-a7553572e3df87eb.d: tests/prop_storage.rs

/root/repo/target/debug/deps/prop_storage-a7553572e3df87eb: tests/prop_storage.rs

tests/prop_storage.rs:
