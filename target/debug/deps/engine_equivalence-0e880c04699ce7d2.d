/root/repo/target/debug/deps/engine_equivalence-0e880c04699ce7d2.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-0e880c04699ce7d2: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
