/root/repo/target/debug/deps/prop_xml-bad42646ce98f70b.d: tests/prop_xml.rs

/root/repo/target/debug/deps/libprop_xml-bad42646ce98f70b.rmeta: tests/prop_xml.rs

tests/prop_xml.rs:
