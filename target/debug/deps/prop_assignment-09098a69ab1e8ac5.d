/root/repo/target/debug/deps/prop_assignment-09098a69ab1e8ac5.d: tests/prop_assignment.rs

/root/repo/target/debug/deps/libprop_assignment-09098a69ab1e8ac5.rmeta: tests/prop_assignment.rs

tests/prop_assignment.rs:
