/root/repo/target/debug/deps/prop_xml-1c3ead34c26d0c79.d: tests/prop_xml.rs

/root/repo/target/debug/deps/prop_xml-1c3ead34c26d0c79: tests/prop_xml.rs

tests/prop_xml.rs:
