/root/repo/target/debug/deps/uxm_assignment-81174799fb904bfb.d: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

/root/repo/target/debug/deps/uxm_assignment-81174799fb904bfb: crates/assignment/src/lib.rs crates/assignment/src/bipartite.rs crates/assignment/src/brute.rs crates/assignment/src/merge.rs crates/assignment/src/murty.rs crates/assignment/src/partition.rs crates/assignment/src/solver.rs

crates/assignment/src/lib.rs:
crates/assignment/src/bipartite.rs:
crates/assignment/src/brute.rs:
crates/assignment/src/merge.rs:
crates/assignment/src/murty.rs:
crates/assignment/src/partition.rs:
crates/assignment/src/solver.rs:
