/root/repo/target/debug/deps/proptest-42c7468dd1174d79.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-42c7468dd1174d79: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
