/root/repo/target/debug/deps/engine_equivalence-617dfec5989ad8c5.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/libengine_equivalence-617dfec5989ad8c5.rmeta: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
