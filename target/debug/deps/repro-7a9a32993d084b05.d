/root/repo/target/debug/deps/repro-7a9a32993d084b05.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-7a9a32993d084b05.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
