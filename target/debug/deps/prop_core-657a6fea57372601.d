/root/repo/target/debug/deps/prop_core-657a6fea57372601.d: tests/prop_core.rs

/root/repo/target/debug/deps/libprop_core-657a6fea57372601.rmeta: tests/prop_core.rs

tests/prop_core.rs:
