/root/repo/target/debug/deps/uxm-862be28343ee87fa.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libuxm-862be28343ee87fa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
