/root/repo/target/debug/deps/uxm-2d158b5bfd512a7b.d: src/lib.rs

/root/repo/target/debug/deps/libuxm-2d158b5bfd512a7b.rlib: src/lib.rs

/root/repo/target/debug/deps/libuxm-2d158b5bfd512a7b.rmeta: src/lib.rs

src/lib.rs:
