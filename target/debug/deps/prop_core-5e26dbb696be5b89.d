/root/repo/target/debug/deps/prop_core-5e26dbb696be5b89.d: tests/prop_core.rs

/root/repo/target/debug/deps/prop_core-5e26dbb696be5b89: tests/prop_core.rs

tests/prop_core.rs:
