/root/repo/target/debug/deps/proptest-63c019dcdd876d67.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-63c019dcdd876d67.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-63c019dcdd876d67.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
