/root/repo/target/debug/deps/rand-c7af0faa00d1097f.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-c7af0faa00d1097f.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
