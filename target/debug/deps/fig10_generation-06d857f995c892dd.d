/root/repo/target/debug/deps/fig10_generation-06d857f995c892dd.d: crates/bench/benches/fig10_generation.rs

/root/repo/target/debug/deps/libfig10_generation-06d857f995c892dd.rmeta: crates/bench/benches/fig10_generation.rs

crates/bench/benches/fig10_generation.rs:
