/root/repo/target/debug/deps/uxm_bench-cd954f39a55ae5db.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libuxm_bench-cd954f39a55ae5db.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
