/root/repo/target/debug/deps/uxm-96969d3ced9630a1.d: src/lib.rs

/root/repo/target/debug/deps/libuxm-96969d3ced9630a1.rmeta: src/lib.rs

src/lib.rs:
