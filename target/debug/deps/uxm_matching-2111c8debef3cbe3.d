/root/repo/target/debug/deps/uxm_matching-2111c8debef3cbe3.d: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

/root/repo/target/debug/deps/uxm_matching-2111c8debef3cbe3: crates/matching/src/lib.rs crates/matching/src/correspondence.rs crates/matching/src/matcher.rs crates/matching/src/similarity.rs crates/matching/src/structural.rs

crates/matching/src/lib.rs:
crates/matching/src/correspondence.rs:
crates/matching/src/matcher.rs:
crates/matching/src/similarity.rs:
crates/matching/src/structural.rs:
