/root/repo/target/debug/deps/criterion-de63b350d2cb195a.d: crates/compat/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-de63b350d2cb195a.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
