/root/repo/target/debug/deps/prop_core-5eee37bb0b2354e0.d: tests/prop_core.rs Cargo.toml

/root/repo/target/debug/deps/libprop_core-5eee37bb0b2354e0.rmeta: tests/prop_core.rs Cargo.toml

tests/prop_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
