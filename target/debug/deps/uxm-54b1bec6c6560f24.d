/root/repo/target/debug/deps/uxm-54b1bec6c6560f24.d: src/bin/uxm.rs

/root/repo/target/debug/deps/uxm-54b1bec6c6560f24: src/bin/uxm.rs

src/bin/uxm.rs:
