/root/repo/target/debug/deps/prop_storage-1d133769bacc7fdf.d: tests/prop_storage.rs

/root/repo/target/debug/deps/prop_storage-1d133769bacc7fdf: tests/prop_storage.rs

tests/prop_storage.rs:
