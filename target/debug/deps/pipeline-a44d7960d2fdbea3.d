/root/repo/target/debug/deps/pipeline-a44d7960d2fdbea3.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-a44d7960d2fdbea3: tests/pipeline.rs

tests/pipeline.rs:
