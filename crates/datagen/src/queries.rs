//! The Q1–Q10 query workload (paper Table III).
//!
//! The queries are posed on D7's target schema (Apertum). Table III
//! abbreviates `BuyerPartID` as `BPID` and `UnitPrice` as `UP`; here the
//! full element names are used, and the `LineNO` typo of Q6 is normalized.

use uxm_twig::TwigPattern;

/// The ten PTQs of Table III, in order.
pub const PAPER_QUERIES: [&str; 10] = [
    // Q1
    "Order/DeliverTo/Address[./City][./Country]/Street",
    // Q2
    "Order/DeliverTo/Contact/EMail",
    // Q3
    "Order/DeliverTo[./Address/City]/Contact/EMail",
    // Q4
    "Order/POLine[./LineNo]//UnitPrice",
    // Q5
    "Order/POLine[./LineNo][.//UnitPrice]/Quantity",
    // Q6
    "Order/POLine[./BuyerPartID][./LineNo][.//UnitPrice]/Quantity",
    // Q7 (the paper's default analysis query is D7/Q7)
    "Order[./DeliverTo//Street]/POLine[.//BuyerPartID][.//UnitPrice]/Quantity",
    // Q8
    "Order[./DeliverTo[.//EMail]//Street]/POLine[.//UnitPrice]/Quantity",
    // Q9
    "Order[./Buyer/Contact]/POLine[.//BuyerPartID]/Quantity",
    // Q10 (used for the τ / |M| / top-k sweeps)
    "Order[./Buyer/Contact][./DeliverTo//City]//BuyerPartID",
];

/// Parses all ten queries.
pub fn paper_queries() -> Vec<TwigPattern> {
    PAPER_QUERIES
        .iter()
        .map(|s| TwigPattern::parse(s).expect("paper query parses"))
        .collect()
}

/// Parses one query by 1-based index (Q1..Q10).
pub fn paper_query(n: usize) -> TwigPattern {
    assert!((1..=10).contains(&n), "queries are Q1..Q10");
    TwigPattern::parse(PAPER_QUERIES[n - 1]).expect("paper query parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{Dataset, DatasetId};

    #[test]
    fn all_queries_parse() {
        let qs = paper_queries();
        assert_eq!(qs.len(), 10);
        for (i, q) in qs.iter().enumerate() {
            assert!(q.len() >= 3, "Q{} too small", i + 1);
        }
    }

    #[test]
    fn query_labels_exist_in_d7_target() {
        let d = Dataset::load(DatasetId::D7);
        let target = &d.matching.target;
        for (i, q) in paper_queries().iter().enumerate() {
            for label in q.labels() {
                assert!(
                    !target.nodes_with_label(label).is_empty(),
                    "Q{}: label {label} missing from Apertum",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn paper_query_index_bounds() {
        assert_eq!(paper_query(1).node(paper_query(1).root()).label, "Order");
        assert_eq!(paper_query(10).len(), 6);
    }

    #[test]
    #[should_panic(expected = "Q1..Q10")]
    fn paper_query_zero_panics() {
        paper_query(0);
    }
}
