//! Corpus-scale document generation: thousands of documents, millions
//! of nodes, power-law sized and power-law labeled — the working sets
//! the soak harness (`repro soak`) puts behind a budget-constrained
//! registry.
//!
//! [`uxm_xml::DocGenConfig`]-based generation is fine at `Order.xml`
//! scale (~3.5 k nodes) but its grow phase re-scans candidate parents
//! for saturation on every step, which is quadratic-ish and painful at
//! millions of nodes. [`corpus_document`] keeps the same two-phase shape
//! (cover every schema element, then grow repeatable subtrees) with two
//! changes:
//!
//! * **O(total nodes)** growth — parents are drawn uniformly from a
//!   per-element instance list, no saturation scans; amortized O(1)
//!   bookkeeping per emitted node.
//! * **Zipf-weighted repeatables** — growth steps pick which repeatable
//!   element to clone from a Zipf(`alpha`) distribution over the
//!   schema's repeatable elements, so label frequencies in the corpus
//!   follow the power law real document collections show (a handful of
//!   hot elements dominate, a long tail stays rare).
//!
//! Document sizes across the corpus follow the same power law
//! ([`CorpusConfig::doc_sizes`]): a few giant documents and a long tail
//! of small ones, so a memory budget sized for the median is genuinely
//! exceeded by the head — exactly the regime LRU thrash protection is
//! for. Everything is deterministic per seed.

use crate::schema_gen::{generate_schema, Standard};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uxm_xml::ids::SchemaNodeId;
use uxm_xml::{Document, Schema};

/// Shape of a generated corpus: how many documents, how many nodes in
/// total, how skewed, and from which seed.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of documents in the corpus.
    pub documents: usize,
    /// Total nodes across all documents; individual document sizes are
    /// the power-law split of [`CorpusConfig::doc_sizes`].
    pub total_nodes: usize,
    /// Power-law exponent for both document sizes and label skew.
    /// `1.0` is classic Zipf; higher is more skewed; `0.0` is uniform.
    pub alpha: f64,
    /// Master seed; document `i` derives its own seed from it, so any
    /// single document can be regenerated without the rest.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            documents: 1000,
            total_nodes: 2_000_000,
            alpha: 1.0,
            seed: 42,
        }
    }
}

/// No document shrinks below this, whatever the power law says —
/// every document must at least cover a small schema once.
const MIN_DOC_NODES: usize = 48;

impl CorpusConfig {
    /// The per-document node counts: document `i` (0-based) gets a share
    /// proportional to `(i+1)^-alpha`, floored at a small minimum, and
    /// the counts sum to within rounding of
    /// [`CorpusConfig::total_nodes`]. Index 0 is the giant head
    /// document; the tail is small and long.
    pub fn doc_sizes(&self) -> Vec<usize> {
        if self.documents == 0 {
            return Vec::new();
        }
        let weights: Vec<f64> = (0..self.documents)
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.alpha))
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total_weight) * self.total_nodes as f64).round() as usize)
            .map(|n| n.max(MIN_DOC_NODES))
            .collect();
        // Flooring the tail inflates the sum; take the excess back from
        // the head (largest first) so totals stay honest.
        let mut excess: usize = sizes.iter().sum::<usize>().saturating_sub(self.total_nodes);
        for s in sizes.iter_mut() {
            if excess == 0 {
                break;
            }
            let give = excess.min(s.saturating_sub(MIN_DOC_NODES));
            *s -= give;
            excess -= give;
        }
        sizes
    }

    /// The derived seed for document `i`.
    pub fn doc_seed(&self, i: usize) -> u64 {
        // SplitMix-style mix so neighboring documents get unrelated
        // streams from neighboring indices.
        let mut z = self
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Probability a leaf instance carries text content (corpus documents
/// are memory-weight realistic, not maximal).
const TEXT_PROB: f64 = 0.6;

/// Generates one corpus document of ~`target_nodes` nodes conforming to
/// `schema`, deterministically from `seed`. Growth work is linear in
/// the emitted node count; repeatable elements are cloned under
/// Zipf(`alpha`)-distributed selection (see the [module docs](self)).
/// The result may overshoot `target_nodes` by at most one repeated
/// subtree.
pub fn corpus_document(schema: &Schema, target_nodes: usize, alpha: f64, seed: u64) -> Document {
    let mut gen = CorpusGen {
        schema,
        rng: StdRng::seed_from_u64(seed),
        nodes: Vec::with_capacity(target_nodes + 16),
        instances: vec![Vec::new(); schema.len()],
        target_nodes,
    };
    gen.cover(schema.root(), None);
    gen.grow(alpha);
    gen.emit()
}

/// One node of the intermediate instance tree (emitted pre-order at the
/// end, preserving the `Document` invariant that ids are pre-order
/// ranks).
struct CorpusNode {
    schema: SchemaNodeId,
    children: Vec<usize>,
    text: bool,
}

struct CorpusGen<'a> {
    schema: &'a Schema,
    rng: StdRng,
    nodes: Vec<CorpusNode>,
    /// For each schema element, the instance indices created for it —
    /// the O(1) parent pool the grow phase draws from.
    instances: Vec<Vec<usize>>,
    target_nodes: usize,
}

impl<'a> CorpusGen<'a> {
    /// Phase 1: one instance per schema element, depth-first, within
    /// budget.
    fn cover(&mut self, snode: SchemaNodeId, parent: Option<usize>) -> usize {
        let idx = self.new_instance(snode, parent);
        for &child in self.schema.children(snode) {
            if self.nodes.len() >= self.target_nodes {
                break;
            }
            self.cover(child, Some(idx));
        }
        idx
    }

    /// Phase 2: Zipf-weighted subtree cloning until the target size.
    fn grow(&mut self, alpha: f64) {
        // Repeatable elements in schema order; rank i gets Zipf weight
        // (i+1)^-alpha. Cumulative weights make each draw a binary
        // search — no per-step scans of any kind.
        let repeatables: Vec<SchemaNodeId> = self
            .schema
            .ids()
            .filter(|&id| self.schema.node(id).repeatable && self.schema.parent(id).is_some())
            .collect();
        if repeatables.is_empty() {
            return;
        }
        let mut cum = Vec::with_capacity(repeatables.len());
        let mut running = 0.0f64;
        for i in 0..repeatables.len() {
            running += 1.0 / ((i + 1) as f64).powf(alpha);
            cum.push(running);
        }
        let total_weight = running;
        while self.nodes.len() < self.target_nodes {
            let x = self.rng.gen_range(0.0..total_weight);
            let k = cum.partition_point(|&c| c <= x).min(repeatables.len() - 1);
            let r = repeatables[k];
            let parent_schema = self.schema.parent(r).expect("repeatable root filtered out");
            let pool = &self.instances[parent_schema.idx()];
            if pool.is_empty() {
                // Parent element was cut off by the cover budget — with
                // target >= cover size this cannot happen, but a tiny
                // target must not loop forever.
                return;
            }
            let parent = pool[self.rng.gen_range(0..pool.len())];
            self.instantiate_subtree(r, parent);
        }
    }

    /// Clones the full subtree of `snode` under instance `parent`,
    /// iteratively (corpus subtrees are small, but growth runs millions
    /// of times — no recursion, no re-walks).
    fn instantiate_subtree(&mut self, snode: SchemaNodeId, parent: usize) {
        let mut stack = vec![(snode, parent)];
        while let Some((s, p)) = stack.pop() {
            let idx = self.new_instance(s, Some(p));
            for &child in self.schema.children(s).iter().rev() {
                stack.push((child, idx));
            }
        }
    }

    fn new_instance(&mut self, snode: SchemaNodeId, parent: Option<usize>) -> usize {
        let idx = self.nodes.len();
        let text = self.schema.is_leaf(snode) && self.rng.gen_bool(TEXT_PROB);
        self.nodes.push(CorpusNode {
            schema: snode,
            children: Vec::new(),
            text,
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(idx);
        }
        self.instances[snode.idx()].push(idx);
        idx
    }

    /// Emits the instance tree into a [`Document`] in pre-order. Leaf
    /// text is a short deterministic token — enough bytes to make
    /// engine footprints realistic without drowning the node arenas.
    fn emit(mut self) -> Document {
        let mut builder = Document::builder(self.schema.label(self.nodes[0].schema));
        let root = builder.root();
        if self.nodes[0].text {
            let value = self.leaf_value(0);
            builder.set_text(root, value);
        }
        let mut stack: Vec<(usize, uxm_xml::ids::DocNodeId)> = self.nodes[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, root))
            .collect();
        while let Some((gen_idx, parent_doc)) = stack.pop() {
            let doc_id =
                builder.add_child(parent_doc, self.schema.label(self.nodes[gen_idx].schema));
            if self.nodes[gen_idx].text {
                let value = self.leaf_value(gen_idx);
                builder.set_text(doc_id, value);
            }
            for &c in self.nodes[gen_idx].children.iter().rev() {
                stack.push((c, doc_id));
            }
        }
        builder.finish()
    }

    fn leaf_value(&mut self, idx: usize) -> String {
        format!("v{}-{}", idx % 9973, self.rng.gen_range(0u32..100_000))
    }
}

/// A ready-made corpus schema: the purchase-order backbone of
/// `standard` grown to `n_elements` elements (see
/// [`crate::schema_gen::generate_schema`]), which is what the soak
/// harness pairs and matches.
pub fn corpus_schema(standard: Standard, n_elements: usize, seed: u64) -> Schema {
    generate_schema(standard, n_elements, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity UnitPrice) \
             Note*(Text) Attachment*(Uri))",
        )
        .unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let s = schema();
        let a = corpus_document(&s, 5_000, 1.0, 7);
        let b = corpus_document(&s, 5_000, 1.0, 7);
        assert_eq!(uxm_xml::writer::to_xml(&a), uxm_xml::writer::to_xml(&b));
        let c = corpus_document(&s, 5_000, 1.0, 8);
        assert_ne!(uxm_xml::writer::to_xml(&a), uxm_xml::writer::to_xml(&c));
    }

    #[test]
    fn reaches_target_with_bounded_overshoot() {
        let s = schema();
        let d = corpus_document(&s, 10_000, 1.0, 3);
        assert!(d.len() >= 10_000, "doc too small: {}", d.len());
        // Overshoot bounded by one repeated subtree (POLine = 4 nodes).
        assert!(d.len() <= 10_004, "doc too large: {}", d.len());
    }

    #[test]
    fn grows_large_documents_fast() {
        // 200k nodes should be near-instant with O(n) growth; the seed
        // matters only for determinism. (The pre-refactor generator's
        // saturation scans made this size take minutes.)
        let s = schema();
        let start = std::time::Instant::now();
        let d = corpus_document(&s, 200_000, 1.0, 11);
        assert!(d.len() >= 200_000);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "200k-node generation took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn labels_follow_power_law() {
        let s = schema();
        let d = corpus_document(&s, 50_000, 1.2, 5);
        // Repeatables in schema order: POLine, Note, Attachment. Rank 0
        // gets Zipf weight 1, rank 2 weight 3^-1.2 ≈ 0.27 — the head
        // must clearly dominate the tail.
        let head = d.nodes_with_label("POLine").len();
        let tail = d.nodes_with_label("Attachment").len();
        assert!(head > 2 * tail, "no skew: head {head} vs tail {tail}");
        assert!(tail > 0, "tail still present");
    }

    #[test]
    fn doc_sizes_power_law_and_sum() {
        let config = CorpusConfig {
            documents: 100,
            total_nodes: 1_000_000,
            alpha: 1.0,
            seed: 1,
        };
        let sizes = config.doc_sizes();
        assert_eq!(sizes.len(), 100);
        let sum: usize = sizes.iter().sum();
        let drift = (sum as i64 - 1_000_000i64).unsigned_abs() as usize;
        assert!(drift <= 100 * MIN_DOC_NODES, "sum drifted: {sum}");
        assert!(sizes[0] > 10 * sizes[99], "head not dominant: {sizes:?}");
        assert!(sizes.iter().all(|&s| s >= MIN_DOC_NODES));
        // Deterministic: same config, same split.
        assert_eq!(sizes, config.doc_sizes());
    }

    #[test]
    fn doc_seeds_are_spread() {
        let config = CorpusConfig::default();
        let a = config.doc_seed(0);
        let b = config.doc_seed(1);
        assert_ne!(a, b);
        assert_eq!(a, config.doc_seed(0));
    }

    #[test]
    fn million_node_corpus_splits() {
        let config = CorpusConfig {
            documents: 2_000,
            total_nodes: 4_000_000,
            alpha: 1.1,
            seed: 9,
        };
        let sizes = config.doc_sizes();
        assert_eq!(sizes.len(), 2_000);
        assert!(sizes.iter().sum::<usize>() >= 3_900_000);
    }

    #[test]
    fn corpus_schema_is_deterministic() {
        let a = corpus_schema(Standard::Xcbl, 120, 3);
        let b = corpus_schema(Standard::Xcbl, 120, 3);
        assert_eq!(a.to_outline(), b.to_outline());
        assert!(a.len() >= 100);
    }
}
