//! # uxm-datagen — synthetic workloads reproducing the paper's Table II
//!
//! The paper evaluates on real e-commerce schemas (XCBL, OpenTrans,
//! Apertum, CIDX, Excel, Noris, Paragon) matched by COMA++, plus the XCBL
//! sample document `Order.xml`. None of those artifacts are
//! redistributable, so this crate generates stand-ins with the *published
//! statistics*: schema sizes, matcher options, correspondence capacities,
//! and mapping overlap (o-ratio) in the ranges of Table II.
//!
//! * [`vocab`] — an e-commerce concept vocabulary with per-standard naming
//!   styles, so that name-based matching behaves like it does on the real
//!   standards,
//! * [`schema_gen`] — seeded schema generation: a purchase-order backbone
//!   (which the paper's queries Q1–Q10 address) plus filler subtrees up to
//!   the published element counts,
//! * [`datasets`] — the D1–D10 dataset family,
//! * [`queries`] — the Q1–Q10 query workload (Table III),
//! * [`corpus`] — corpus-scale generation: thousands of documents,
//!   millions of nodes, power-law sizes and labels, for soak testing
//!   a budget-constrained serving stack.

pub mod corpus;
pub mod datasets;
pub mod queries;
pub mod schema_gen;
pub mod vocab;

pub use corpus::{corpus_document, CorpusConfig};
pub use datasets::{Dataset, DatasetId};
pub use queries::paper_queries;
