//! Naming styles and token vocabulary for the synthetic standards.
//!
//! Each e-commerce standard in Table II names the same purchase-order
//! concepts differently (`CONTACT_NAME` vs `ContactName` vs `ContactNm`).
//! This module renders token sequences in a standard's style and provides
//! the generic token pool used for filler subtrees.

/// How a standard renders multi-token element names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NamingStyle {
    /// `CONTACT_NAME` (XCBL, OpenTrans flavour).
    UpperSnake,
    /// `ContactName` (Apertum, Paragon flavour).
    CamelCase,
    /// `ContactNm` — camel case with truncated tokens (CIDX flavour).
    CamelAbbrev,
    /// `contactName` (Excel/Noris exports).
    LowerCamel,
}

impl NamingStyle {
    /// Renders `tokens` as one element name in this style.
    pub fn render(self, tokens: &[&str]) -> String {
        match self {
            NamingStyle::UpperSnake => tokens
                .iter()
                .map(|t| t.to_uppercase())
                .collect::<Vec<_>>()
                .join("_"),
            NamingStyle::CamelCase => tokens.iter().map(|t| capitalize(t)).collect(),
            NamingStyle::CamelAbbrev => tokens.iter().map(|t| capitalize(&abbreviate(t))).collect(),
            NamingStyle::LowerCamel => {
                let mut out = String::new();
                for (i, t) in tokens.iter().enumerate() {
                    if i == 0 {
                        out.push_str(&t.to_lowercase());
                    } else {
                        out.push_str(&capitalize(t));
                    }
                }
                out
            }
        }
    }
}

fn capitalize(t: &str) -> String {
    let mut cs = t.chars();
    match cs.next() {
        Some(c) => c.to_uppercase().chain(cs).collect(),
        None => String::new(),
    }
}

/// Truncates a token the way terse standards do (`quantity` → `qty`,
/// otherwise keep the first four characters).
fn abbreviate(t: &str) -> String {
    match t {
        "quantity" => "qty".into(),
        "number" => "no".into(),
        "reference" => "ref".into(),
        "description" => "desc".into(),
        "amount" => "amt".into(),
        "identifier" => "id".into(),
        _ if t.len() > 4 => t[..4].into(),
        _ => t.into(),
    }
}

/// Generic tokens for filler elements — drawn from real e-commerce schema
/// vocabulary so that cross-standard filler occasionally matches (keeping
/// the bipartite sparse but not empty, as in the paper's datasets).
pub const FILLER_TOKENS: &[&str] = &[
    "attachment",
    "reference",
    "code",
    "type",
    "detail",
    "group",
    "info",
    "spec",
    "item",
    "note",
    "tax",
    "rate",
    "period",
    "term",
    "charge",
    "allowance",
    "unit",
    "measure",
    "currency",
    "language",
    "region",
    "schedule",
    "packing",
    "transport",
    "route",
    "carrier",
    "mode",
    "account",
    "payment",
    "instrument",
    "card",
    "bank",
    "branch",
    "document",
    "version",
    "status",
    "history",
    "event",
    "time",
    "stamp",
    "location",
    "zone",
    "dock",
    "gate",
    "seal",
    "container",
    "weight",
    "volume",
    "dimension",
    "height",
    "width",
    "length",
    "hazard",
    "class",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn styles_render_distinctly() {
        let tokens = ["contact", "name"];
        assert_eq!(NamingStyle::UpperSnake.render(&tokens), "CONTACT_NAME");
        assert_eq!(NamingStyle::CamelCase.render(&tokens), "ContactName");
        assert_eq!(NamingStyle::LowerCamel.render(&tokens), "contactName");
        assert_eq!(NamingStyle::CamelAbbrev.render(&tokens), "ContName");
    }

    #[test]
    fn abbreviations() {
        assert_eq!(NamingStyle::CamelAbbrev.render(&["quantity"]), "Qty");
        assert_eq!(NamingStyle::CamelAbbrev.render(&["number"]), "No");
        assert_eq!(
            NamingStyle::CamelAbbrev.render(&["unit", "price"]),
            "UnitPric"
        );
    }

    #[test]
    fn single_token() {
        assert_eq!(NamingStyle::UpperSnake.render(&["order"]), "ORDER");
        assert_eq!(NamingStyle::CamelCase.render(&["order"]), "Order");
    }

    #[test]
    fn filler_pool_is_nonempty_and_unique() {
        let mut v = FILLER_TOKENS.to_vec();
        v.sort_unstable();
        let n = v.len();
        v.dedup();
        assert_eq!(n, v.len());
        assert!(n >= 40);
    }
}
