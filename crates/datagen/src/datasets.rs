//! The D1–D10 dataset family (paper Table II).
//!
//! Each dataset pairs two generated standard schemas and runs the
//! composite matcher with the option (`f`ragment / `c`ontext) Table II
//! lists. The published statistics (|S|, |T|, capacity, o-ratio) are kept
//! alongside so the reproduction harness can print paper-vs-measured.

use crate::schema_gen::{generate_schema, Standard};
use uxm_matching::{MatchStrategy, Matcher, SchemaMatching};

/// Identifiers for the ten matchings of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum DatasetId {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
    D8,
    D9,
    D10,
}

impl DatasetId {
    /// All ten ids, in order.
    pub fn all() -> [DatasetId; 10] {
        use DatasetId::*;
        [D1, D2, D3, D4, D5, D6, D7, D8, D9, D10]
    }

    /// The display name (`D1` … `D10`).
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::D1 => "D1",
            DatasetId::D2 => "D2",
            DatasetId::D3 => "D3",
            DatasetId::D4 => "D4",
            DatasetId::D5 => "D5",
            DatasetId::D6 => "D6",
            DatasetId::D7 => "D7",
            DatasetId::D8 => "D8",
            DatasetId::D9 => "D9",
            DatasetId::D10 => "D10",
        }
    }

    /// `(source standard, target standard, matcher option)` per Table II.
    pub fn spec(self) -> (Standard, Standard, MatchStrategy) {
        use MatchStrategy::{Context, Fragment};
        use Standard::*;
        match self {
            DatasetId::D1 => (Excel, Noris, Fragment),
            DatasetId::D2 => (Excel, Paragon, Context),
            DatasetId::D3 => (Excel, Paragon, Fragment),
            DatasetId::D4 => (Noris, Paragon, Context),
            DatasetId::D5 => (Noris, Paragon, Fragment),
            DatasetId::D6 => (OpenTrans, Apertum, Context),
            DatasetId::D7 => (Xcbl, Apertum, Context),
            DatasetId::D8 => (Xcbl, Cidx, Context),
            DatasetId::D9 => (Xcbl, OpenTrans, Context),
            DatasetId::D10 => (OpenTrans, Xcbl, Context),
        }
    }

    /// Paper-reported `(|S|, |T|, capacity, o-ratio)` for Table II.
    pub fn paper_row(self) -> (usize, usize, usize, f64) {
        match self {
            DatasetId::D1 => (48, 66, 30, 0.79),
            DatasetId::D2 => (48, 69, 47, 0.63),
            DatasetId::D3 => (48, 69, 31, 0.57),
            DatasetId::D4 => (66, 69, 41, 0.64),
            DatasetId::D5 => (66, 69, 21, 0.53),
            DatasetId::D6 => (247, 166, 77, 0.87),
            DatasetId::D7 => (1076, 166, 226, 0.84),
            DatasetId::D8 => (1076, 39, 127, 0.82),
            DatasetId::D9 => (1076, 247, 619, 0.91),
            DatasetId::D10 => (247, 1076, 619, 0.91),
        }
    }
}

/// A loaded dataset: the two schemas plus the matcher's output.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which Table II row this is.
    pub id: DatasetId,
    /// The schema matching (owns clones of both schemas).
    pub matching: SchemaMatching,
}

impl Dataset {
    /// Generates the dataset deterministically (schemas seeded per id).
    pub fn load(id: DatasetId) -> Dataset {
        let (src_std, tgt_std, strategy) = id.spec();
        let (s_size, t_size, _, _) = id.paper_row();
        let seed = 0xD5 + id as u64;
        let source = generate_schema(src_std, s_size, seed);
        let target = generate_schema(tgt_std, t_size, seed.wrapping_add(101));
        let matcher = match strategy {
            MatchStrategy::Fragment => Matcher::fragment(),
            MatchStrategy::Context => Matcher::context(),
        };
        let matching = matcher.match_schemas(&source, &target);
        Dataset { id, matching }
    }

    /// Loads all ten datasets (D7 and the XCBL pairs take the longest).
    pub fn load_all() -> Vec<Dataset> {
        DatasetId::all().into_iter().map(Dataset::load).collect()
    }

    /// Measured capacity (# correspondences).
    pub fn capacity(&self) -> usize {
        self.matching.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d7_shapes_match_paper() {
        let d = Dataset::load(DatasetId::D7);
        assert_eq!(d.matching.source.len(), 1076);
        assert_eq!(d.matching.target.len(), 166);
        // Capacity will not equal 226 exactly, but must be in a sane band:
        // sparse (far below |S|x|T|) yet non-trivial.
        let cap = d.capacity();
        assert!(cap > 50, "capacity {cap} too small");
        assert!(cap < 700, "capacity {cap} too large");
    }

    #[test]
    fn all_datasets_load_with_nonempty_matchings() {
        for id in DatasetId::all() {
            let d = Dataset::load(id);
            assert!(!d.matching.is_empty(), "{} empty", id.name());
            let (s, t, _, _) = id.paper_row();
            assert_eq!(d.matching.source.len(), s, "{}", id.name());
            assert_eq!(d.matching.target.len(), t, "{}", id.name());
        }
    }

    #[test]
    fn loading_is_deterministic() {
        let a = Dataset::load(DatasetId::D4);
        let b = Dataset::load(DatasetId::D4);
        assert_eq!(a.capacity(), b.capacity());
        assert_eq!(
            a.matching.correspondences().len(),
            b.matching.correspondences().len()
        );
    }

    #[test]
    fn query_backbone_is_matched_in_d7() {
        // The XCBL backbone must produce candidates for query-relevant
        // Apertum targets, or Q1-Q10 would be unanswerable.
        let d = Dataset::load(DatasetId::D7);
        let target = &d.matching.target;
        for label in ["DeliverTo", "POLine", "Quantity", "UnitPrice", "LineNo"] {
            let t = target.nodes_with_label(label)[0];
            assert!(
                !d.matching.candidates_for_target(t).is_empty(),
                "no candidates for target {label}"
            );
        }
    }
}
