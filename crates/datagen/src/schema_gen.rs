//! Seeded schema generation per e-commerce standard.
//!
//! Each standard has a hand-authored purchase-order *backbone* (the
//! concepts the paper's queries address, §VI Table III) in its own naming
//! style, padded with seeded *filler* subtrees up to the element count
//! published in Table II. Filler names draw from a shared e-commerce token
//! pool, so cross-standard filler occasionally matches — keeping the
//! matching bipartite sparse but non-trivial, as observed in the paper.

use crate::vocab::{NamingStyle, FILLER_TOKENS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uxm_xml::Schema;

/// The e-commerce standards of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Standard {
    /// XCBL (www.xcbl.org) — `UPPER_SNAKE`, the largest schema (1076).
    Xcbl,
    /// OpenTrans (www.opentrans.org) — `UPPER_SNAKE`, different synonyms.
    OpenTrans,
    /// Apertum — `CamelCase`; the target of D6/D7 and of queries Q1–Q10.
    Apertum,
    /// CIDX — abbreviated camel case, the smallest schema (39).
    Cidx,
    /// Excel export — `lowerCamel`.
    Excel,
    /// Noris — `CamelCase` with purchase-flavoured synonyms.
    Noris,
    /// Paragon — `CamelCase` with vendor-flavoured synonyms.
    Paragon,
}

impl Standard {
    /// The naming style used for filler elements.
    pub fn style(self) -> NamingStyle {
        match self {
            Standard::Xcbl | Standard::OpenTrans => NamingStyle::UpperSnake,
            Standard::Apertum | Standard::Noris | Standard::Paragon => NamingStyle::CamelCase,
            Standard::Cidx => NamingStyle::CamelAbbrev,
            Standard::Excel => NamingStyle::LowerCamel,
        }
    }

    /// The element count Table II reports for this standard.
    pub fn paper_size(self) -> usize {
        match self {
            Standard::Xcbl => 1076,
            Standard::OpenTrans => 247,
            Standard::Apertum => 166,
            Standard::Cidx => 39,
            Standard::Excel => 48,
            Standard::Noris => 66,
            Standard::Paragon => 69,
        }
    }

    /// Display name matching Table II.
    pub fn name(self) -> &'static str {
        match self {
            Standard::Xcbl => "XCBL",
            Standard::OpenTrans => "OT",
            Standard::Apertum => "Apertum",
            Standard::Cidx => "CIDX",
            Standard::Excel => "Excel",
            Standard::Noris => "Noris",
            Standard::Paragon => "Paragon",
        }
    }

    /// The hand-authored purchase-order backbone in outline syntax.
    ///
    /// `*` marks repeatable elements (drives document generation).
    pub fn backbone(self) -> &'static str {
        match self {
            Standard::Xcbl => {
                "ORDER(\
                 ORDER_HEADER(ORDER_DATE ORDER_NUMBER CURRENCY LANGUAGE) \
                 BUYER_PARTY(PARTY_ID NAME CONTACT(CONTACT_NAME E_MAIL PHONE)) \
                 SELLER_PARTY(PARTY_ID NAME CONTACT(CONTACT_NAME E_MAIL)) \
                 INVOICE_PARTY(PARTY_ID CONTACT(CONTACT_NAME E_MAIL)) \
                 DELIVER_TO(ADDRESS(STREET CITY POSTAL_CODE COUNTRY) \
                   CONTACT(CONTACT_NAME E_MAIL)) \
                 PO_LINE*(LINE_NO BUYER_PART_ID DESCRIPTION QUANTITY UNIT_PRICE \
                   DELIVERY_DATE) \
                 ORDER_SUMMARY(TOTAL_AMOUNT TAX_AMOUNT LINE_COUNT))"
            }
            Standard::OpenTrans => {
                "ORDER(\
                 ORDER_INFO(ORDER_DATE ORDER_ID CURRENCY) \
                 ORDER_PARTIES(\
                   BUYER_PARTY(PARTY_ID NAME CONTACT(CONTACT_NAME EMAIL)) \
                   SUPPLIER_PARTY(PARTY_ID NAME) \
                   INVOICE_PARTY(PARTY_ID CONTACT_NAME) \
                   DELIVERY_PARTY(ADDRESS(STREET CITY ZIP COUNTRY))) \
                 ORDER_ITEM_LIST(ORDER_ITEM*(\
                   LINE_ITEM_ID ARTICLE_ID(SUPPLIER_AID BUYER_AID DESCRIPTION_SHORT) \
                   QUANTITY ORDER_UNIT ARTICLE_PRICE(PRICE_AMOUNT PRICE_CURRENCY))) \
                 ORDER_SUMMARY(TOTAL_ITEM_NUM TOTAL_AMOUNT))"
            }
            Standard::Apertum => {
                "Order(\
                 Header(OrderDate OrderNumber Currency) \
                 Buyer(PartyID Name Contact(ContactName EMail Phone)) \
                 Supplier(PartyID Name Contact(ContactName EMail)) \
                 DeliverTo(Address(Street City PostalCode Country) \
                   Contact(ContactName EMail)) \
                 POLine*(LineNo BuyerPartID Description Quantity UnitPrice \
                   DeliveryDate) \
                 Summary(TotalAmount TaxAmount LineCount))"
            }
            Standard::Cidx => {
                "Order(\
                 OrderHead(OrderDate OrderNo) \
                 BuyerInfo(PartyId ContNm Email) \
                 ShipTo(Addr(Street City Zip Ctry)) \
                 LineItem*(LineNo PartNo Qty UnitPric Desc) \
                 Summ(TotAmt TaxAmt))"
            }
            Standard::Excel => {
                "order(\
                 header(orderDate orderNumber currency) \
                 buyer(name contactName email address(street city zip country)) \
                 seller(name contactName) \
                 line*(lineNo partId quantity unitPrice description) \
                 totals(totalAmount taxAmount))"
            }
            Standard::Noris => {
                "Purchase(\
                 PurchaseHeader(Date Number Currency) \
                 Customer(CustomerId CustomerName Contact(ContactName EMail)) \
                 Vendor(VendorId VendorName) \
                 Delivery(DeliveryAddress(Street City PostalCode Country)) \
                 PurchaseItem*(ItemNo PartNumber Quantity Price Description) \
                 Totals(TotalAmount Tax))"
            }
            Standard::Paragon => {
                "PurchaseOrder(\
                 OrderHeader(OrderDate OrderNumber CurrencyCode) \
                 BillTo(PartyId PartyName Contact(ContactName EmailAddress)) \
                 Vendor(VendorId VendorName Contact(ContactName)) \
                 ShipTo(ShipAddress(StreetName CityName PostCode CountryCode)) \
                 OrderLine*(LineNumber PartIdentifier OrderQuantity UnitPrice \
                   ItemDescription) \
                 OrderTotals(TotalValue TaxValue))"
            }
        }
    }
}

/// Generates a schema for `standard` with exactly `n_elements` elements
/// (backbone + seeded filler), deterministically from `seed`.
///
/// Panics if `n_elements` is smaller than the backbone.
pub fn generate_schema(standard: Standard, n_elements: usize, seed: u64) -> Schema {
    let mut schema = Schema::parse_outline(standard.backbone()).expect("backbone outline is valid");
    schema.name = standard.name().to_string();
    assert!(
        n_elements >= schema.len(),
        "{} backbone has {} elements, asked for {n_elements}",
        standard.name(),
        schema.len()
    );
    let mut rng = StdRng::seed_from_u64(seed ^ (standard as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let style = standard.style();
    // Group anchors: root plus any filler group can host further groups.
    let mut group_parents = vec![schema.root()];
    while schema.len() < n_elements {
        let parent = group_parents[rng.gen_range(0..group_parents.len())];
        let t1 = FILLER_TOKENS[rng.gen_range(0..FILLER_TOKENS.len())];
        let t2 = FILLER_TOKENS[rng.gen_range(0..FILLER_TOKENS.len())];
        let group_label = style.render(&[t1, t2]);
        // ~15% of filler groups repeat in instance documents.
        let repeatable = rng.gen_bool(0.15);
        let group = schema.add_child_full(parent, group_label, repeatable);
        let leaves = rng.gen_range(2..=5).min(n_elements - schema.len());
        for _ in 0..leaves {
            let lt = FILLER_TOKENS[rng.gen_range(0..FILLER_TOKENS.len())];
            let label = if rng.gen_bool(0.5) {
                style.render(&[lt])
            } else {
                let lt2 = FILLER_TOKENS[rng.gen_range(0..FILLER_TOKENS.len())];
                style.render(&[lt, lt2])
            };
            schema.add_child(group, label);
        }
        // Deeper nesting: a third of groups can host sub-groups.
        if rng.gen_bool(0.33) {
            group_parents.push(group);
        }
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Standard; 7] = [
        Standard::Xcbl,
        Standard::OpenTrans,
        Standard::Apertum,
        Standard::Cidx,
        Standard::Excel,
        Standard::Noris,
        Standard::Paragon,
    ];

    #[test]
    fn backbones_parse_and_fit_paper_sizes() {
        for std in ALL {
            let backbone = Schema::parse_outline(std.backbone())
                .unwrap_or_else(|e| panic!("{}: {e}", std.name()));
            assert!(
                backbone.len() <= std.paper_size(),
                "{} backbone {} > paper size {}",
                std.name(),
                backbone.len(),
                std.paper_size()
            );
        }
    }

    #[test]
    fn generated_schemas_hit_exact_size() {
        for std in ALL {
            let s = generate_schema(std, std.paper_size(), 42);
            assert_eq!(s.len(), std.paper_size(), "{}", std.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_schema(Standard::Apertum, 166, 7);
        let b = generate_schema(Standard::Apertum, 166, 7);
        assert_eq!(a.to_outline(), b.to_outline());
        let c = generate_schema(Standard::Apertum, 166, 8);
        assert_ne!(a.to_outline(), c.to_outline());
    }

    #[test]
    fn apertum_contains_all_query_labels() {
        let s = generate_schema(Standard::Apertum, 166, 42);
        for label in [
            "Order",
            "DeliverTo",
            "Address",
            "City",
            "Country",
            "Street",
            "Contact",
            "EMail",
            "POLine",
            "LineNo",
            "UnitPrice",
            "BuyerPartID",
            "Quantity",
            "Buyer",
        ] {
            assert!(
                !s.nodes_with_label(label).is_empty(),
                "missing query label {label}"
            );
        }
    }

    #[test]
    fn xcbl_has_repeatable_line_for_docgen() {
        let s = generate_schema(Standard::Xcbl, 1076, 42);
        let line = s.nodes_with_label("PO_LINE");
        assert_eq!(line.len(), 1);
        assert!(s.node(line[0]).repeatable);
    }

    #[test]
    fn query_critical_apertum_labels_are_unique() {
        // POLine-subtree labels must be unique so block anchors apply.
        let s = generate_schema(Standard::Apertum, 166, 42);
        for label in [
            "POLine",
            "LineNo",
            "UnitPrice",
            "BuyerPartID",
            "Quantity",
            "DeliverTo",
            "City",
            "Street",
            "Country",
        ] {
            assert_eq!(
                s.nodes_with_label(label).len(),
                1,
                "label {label} must be unique in Apertum"
            );
        }
    }
}
