//! Criterion benches for Fig 10(e)/(f): top-h mapping generation — murty
//! (whole bipartite) vs partition (divide and conquer), plus the
//! eager/lazy Murty ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uxm_assignment::murty::RankVariant;
use uxm_assignment::partition::{murty_top_h_mappings, partition_top_h_with};
use uxm_datagen::datasets::{Dataset, DatasetId};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_generation");
    g.sample_size(10);

    for id in [DatasetId::D1, DatasetId::D4, DatasetId::D6] {
        let d = Dataset::load(id);
        g.bench_with_input(BenchmarkId::new("murty_h100", id.name()), &d, |b, d| {
            b.iter(|| {
                std::hint::black_box(
                    murty_top_h_mappings(&d.matching, 100, RankVariant::PascoalLazy).len(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("partition_h100", id.name()), &d, |b, d| {
            b.iter(|| {
                std::hint::black_box(
                    partition_top_h_with(&d.matching, 100, RankVariant::PascoalLazy).len(),
                )
            });
        });
    }

    // Ablation: eager vs lazy ranking on D1.
    let d1 = Dataset::load(DatasetId::D1);
    g.bench_function("murty_eager_d1_h100", |b| {
        b.iter(|| {
            std::hint::black_box(
                murty_top_h_mappings(&d1.matching, 100, RankVariant::MurtyEager).len(),
            )
        });
    });

    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
