//! Criterion benches for the reproduction's extensions: storage codec,
//! node-granularity PTQ, and per-match semantics.

// The one-shot rows measure the deprecated legacy paths on purpose (the
// comparison against the warm engine session is the experiment).
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use uxm_bench::workload::{d7_workload, default_config};
use uxm_core::path_ptq::{ptq_basic_nodes, ptq_with_tree_nodes};
use uxm_core::ptq_tree::ptq_with_tree;
use uxm_core::semantics::match_probabilities;
use uxm_core::storage::{decode_compressed, encode_compressed, encode_plain};
use uxm_datagen::queries::paper_queries;
use uxm_xml::PathIndex;

fn bench_extensions(c: &mut Criterion) {
    let w = d7_workload(100, &default_config());
    let index = PathIndex::new(&w.doc);
    let q7 = &paper_queries()[6];

    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    g.bench_function("storage_encode_plain", |b| {
        b.iter(|| std::hint::black_box(encode_plain(&w.mappings).len()));
    });
    g.bench_function("storage_encode_compressed", |b| {
        b.iter(|| std::hint::black_box(encode_compressed(&w.mappings, &w.tree).len()));
    });
    let bytes = encode_compressed(&w.mappings, &w.tree);
    let (source, target) = (w.mappings.source.clone(), w.mappings.target.clone());
    g.bench_function("storage_decode_compressed", |b| {
        b.iter(|| {
            std::hint::black_box(
                decode_compressed(&bytes, source.clone(), target.clone())
                    .expect("roundtrip")
                    .0
                    .len(),
            )
        });
    });

    g.bench_function("path_index_build", |b| {
        b.iter(|| std::hint::black_box(PathIndex::new(&w.doc).len()));
    });
    g.bench_function("ptq_nodes_basic_Q7", |b| {
        b.iter(|| std::hint::black_box(ptq_basic_nodes(q7, &w.mappings, &w.doc, &index).len()));
    });
    g.bench_function("ptq_nodes_tree_Q7", |b| {
        b.iter(|| {
            std::hint::black_box(
                ptq_with_tree_nodes(q7, &w.mappings, &w.doc, &index, &w.tree).len(),
            )
        });
    });

    let full = ptq_with_tree(q7, &w.mappings, &w.doc, &w.tree);
    g.bench_function("match_probabilities_Q7", |b| {
        b.iter(|| std::hint::black_box(match_probabilities(&full).len()));
    });

    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
