//! Criterion benches for Fig 9: block-tree construction (Tc) and
//! compression, across τ and MAX_B.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uxm_core::block_tree::{BlockTree, BlockTreeConfig};
use uxm_core::compress::compress;
use uxm_core::mapping::PossibleMappings;
use uxm_datagen::datasets::{Dataset, DatasetId};

fn bench_blocktree(c: &mut Criterion) {
    let d7 = Dataset::load(DatasetId::D7);
    let pm = PossibleMappings::top_h(&d7.matching, 100);
    let target = &d7.matching.target;

    let mut g = c.benchmark_group("fig9_blocktree");
    g.sample_size(10);

    // Fig 9(a)/(b): construction across tau.
    for tau in [0.05, 0.2, 0.5] {
        g.bench_with_input(
            BenchmarkId::new("build_tau", tau.to_string()),
            &tau,
            |b, &tau| {
                let cfg = BlockTreeConfig {
                    tau,
                    ..BlockTreeConfig::default()
                };
                b.iter(|| std::hint::black_box(BlockTree::build(target, &pm, &cfg).block_count()));
            },
        );
    }

    // Fig 9(e): construction across MAX_B.
    for max_b in [20usize, 100, 300] {
        g.bench_with_input(
            BenchmarkId::new("build_max_b", max_b),
            &max_b,
            |b, &max_b| {
                let cfg = BlockTreeConfig {
                    max_blocks: max_b,
                    ..BlockTreeConfig::default()
                };
                b.iter(|| std::hint::black_box(BlockTree::build(target, &pm, &cfg).block_count()));
            },
        );
    }

    // Mapping compression (Algorithm 1 step 5).
    let tree = BlockTree::build(target, &pm, &BlockTreeConfig::default());
    g.bench_function("compress_d7_m100", |b| {
        b.iter(|| std::hint::black_box(compress(&pm, &tree).mappings.len()));
    });

    g.finish();
}

criterion_group!(benches, bench_blocktree);
criterion_main!(benches);
