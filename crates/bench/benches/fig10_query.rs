//! Criterion benches for Fig 9(f)/10(a)–(d): PTQ evaluation — basic vs
//! block-tree vs top-k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uxm_bench::workload::{d7_workload, default_config};
use uxm_core::ptq::ptq_basic;
use uxm_core::ptq_tree::ptq_with_tree;
use uxm_core::topk::topk_ptq;
use uxm_datagen::queries::paper_queries;

fn bench_query(c: &mut Criterion) {
    let w = d7_workload(100, &default_config());
    let queries = paper_queries();

    let mut g = c.benchmark_group("fig10_query");
    g.sample_size(10);

    // Representative queries: Q2 (linear), Q7 (the paper's default), Q10
    // (the sweep query).
    for qi in [2usize, 7, 10] {
        let q = &queries[qi - 1];
        g.bench_with_input(BenchmarkId::new("basic", format!("Q{qi}")), q, |b, q| {
            b.iter(|| std::hint::black_box(ptq_basic(q, &w.mappings, &w.doc).len()));
        });
        g.bench_with_input(BenchmarkId::new("block_tree", format!("Q{qi}")), q, |b, q| {
            b.iter(|| {
                std::hint::black_box(ptq_with_tree(q, &w.mappings, &w.doc, &w.tree).len())
            });
        });
    }

    // Fig 10(d): top-k at k = 10 on Q10.
    let q10 = &queries[9];
    g.bench_function("topk_k10_Q10", |b| {
        b.iter(|| std::hint::black_box(topk_ptq(q10, &w.mappings, &w.doc, &w.tree, 10).len()));
    });

    g.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
