//! Criterion benches for Fig 9(f)/10(a)–(d): PTQ evaluation — basic vs
//! block-tree vs top-k — plus the `QueryEngine` session layer on the same
//! workload: the legacy free functions rebuild session state per call,
//! while one warm engine session serves repeated queries from its
//! interned labels, relevance bitsets, and `(query, mapping)` rewrite
//! cache.

// The legacy free functions and engine methods are measured on purpose
// (one-shot vs warm-session comparison is the experiment).
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uxm_bench::workload::{d7_workload, default_config};
use uxm_core::ptq::ptq_basic;
use uxm_core::ptq_tree::ptq_with_tree;
use uxm_core::topk::topk_ptq;
use uxm_datagen::queries::paper_queries;

fn bench_query(c: &mut Criterion) {
    let w = d7_workload(100, &default_config());
    // One shared session for every engine benchmark: caches are keyed by
    // query string, so sharing changes nothing except setup cost.
    let engine = w.engine();
    let queries = paper_queries();

    let mut g = c.benchmark_group("fig10_query");
    g.sample_size(10);

    // Representative queries: Q2 (linear), Q7 (the paper's default), Q10
    // (the sweep query).
    for qi in [2usize, 7, 10] {
        let q = &queries[qi - 1];
        g.bench_with_input(BenchmarkId::new("basic", format!("Q{qi}")), q, |b, q| {
            b.iter(|| std::hint::black_box(ptq_basic(q, &w.mappings, &w.doc).len()));
        });
        g.bench_with_input(
            BenchmarkId::new("block_tree", format!("Q{qi}")),
            q,
            |b, q| {
                b.iter(|| {
                    std::hint::black_box(ptq_with_tree(q, &w.mappings, &w.doc, &w.tree).len())
                });
            },
        );
        // Engine, warm session: the repeated-query workload. The call in
        // the setup warms the caches; every timed iteration is then a
        // cache-served evaluation.
        std::hint::black_box(engine.ptq_with_tree(q).len());
        g.bench_with_input(
            BenchmarkId::new("engine_warm", format!("Q{qi}")),
            q,
            |b, q| {
                b.iter(|| std::hint::black_box(engine.ptq_with_tree(q).len()));
            },
        );
    }

    // Fig 10(d): top-k at k = 10 on Q10.
    let q10 = &queries[9];
    g.bench_function("topk_k10_Q10", |b| {
        b.iter(|| std::hint::black_box(topk_ptq(q10, &w.mappings, &w.doc, &w.tree, 10).len()));
    });
    std::hint::black_box(engine.topk(q10, 10).len());
    g.bench_function("engine_topk_k10_Q10", |b| {
        b.iter(|| std::hint::black_box(engine.topk(q10, 10).len()));
    });

    // The whole 10-query paper workload served twice over — the
    // repeated-query service scenario the engine targets, one session vs
    // per-call throwaway state.
    g.bench_function("engine_session_q1_q10_x2", |b| {
        b.iter(|| {
            let mut n = 0;
            for q in &queries {
                n += engine.ptq_with_tree(q).len();
                n += engine.ptq_with_tree(q).len();
            }
            std::hint::black_box(n)
        });
    });
    g.bench_function("legacy_session_q1_q10_x2", |b| {
        b.iter(|| {
            let mut n = 0;
            for q in &queries {
                n += ptq_with_tree(q, &w.mappings, &w.doc, &w.tree).len();
                n += ptq_with_tree(q, &w.mappings, &w.doc, &w.tree).len();
            }
            std::hint::black_box(n)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
