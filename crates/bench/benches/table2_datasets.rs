//! Criterion bench for Table II machinery: dataset loading (matcher run)
//! and o-ratio computation on a small dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use uxm_core::mapping::PossibleMappings;
use uxm_core::stats::o_ratio;
use uxm_datagen::datasets::{Dataset, DatasetId};

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);

    g.bench_function("load_d1_matcher", |b| {
        b.iter(|| std::hint::black_box(Dataset::load(DatasetId::D1).capacity()));
    });

    let d4 = Dataset::load(DatasetId::D4);
    let pm = PossibleMappings::top_h(&d4.matching, 100);
    g.bench_function("o_ratio_d4_m100", |b| {
        b.iter(|| std::hint::black_box(o_ratio(&pm)));
    });

    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
