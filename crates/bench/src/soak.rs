//! `repro soak` — sustained mixed-traffic overload against a
//! budget-constrained serving stack, writing `BENCH_soak.json`.
//!
//! The serving experiments in [`crate::figures`] measure steady-state
//! throughput; this harness measures *survival*. It builds a power-law
//! corpus of engines ([`uxm_datagen::corpus`]) whose working set
//! exceeds the registry's memory budget, puts them behind a
//! [`uxm_core::server::Server`] with tight admission limits, and then
//! drives it two ways at once for a configurable duration:
//!
//! * **closed-loop clients** — persistent connections issuing a mixed
//!   `/query` + `/batch` + `/stats` workload with Zipf-distributed
//!   engine popularity (a hot head, a cold tail that forces hydrations
//!   and evictions), plus periodic panic injections through the
//!   `/debug/panic` instrumentation route;
//! * **an open-loop connection storm** — half-written requests held
//!   open from a spray of short-lived sockets, the slow-loris shape
//!   that historically wedged worker pools.
//!
//! Throughout, the harness samples process RSS against the registry's
//! own accounting ([`uxm_core::registry::RegistryStats`]) to expose
//! eviction drift. At the end it asserts the invariants this bug class
//! is about: every response was typed canonical JSON with a known
//! status, and every worker still answers after the storm — zero
//! wedged workers, or the run fails loudly.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uxm_core::api::Query;
use uxm_core::block_tree::BlockTreeConfig;
use uxm_core::engine::QueryEngine;
use uxm_core::json::Json;
use uxm_core::mapping::PossibleMappings;
use uxm_core::registry::{BatchQuery, EngineRegistry, RegistryConfig, RegistryStats};
use uxm_core::router::{Router, RouterConfig};
use uxm_core::server::{Client, Server, ServerConfig};
use uxm_datagen::corpus::{corpus_document, CorpusConfig};
use uxm_matching::Matcher;
use uxm_twig::TwigPattern;
use uxm_xml::Schema;

/// Knobs for `repro soak` (all overridable from the command line).
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// How long the mixed-traffic phase runs.
    pub duration: Duration,
    /// Engines in the corpus (one document each).
    pub documents: usize,
    /// Total corpus nodes, split power-law across documents.
    pub total_nodes: usize,
    /// Registry memory budget in bytes; `0` derives ~40 % of the built
    /// corpus footprint, guaranteeing the working set exceeds it.
    pub budget: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Master seed — corpus, per-document, and per-client streams all
    /// derive from it, so a run is reproducible end to end.
    pub seed: u64,
    /// Shard count: `0` soaks a single registry behind [`Server`]; `N`
    /// puts `N` shard registries behind the consistent-hash
    /// [`Router`], splitting the budget evenly, and the report gains
    /// per-shard eviction/shed/thrash counters.
    pub shards: usize,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            duration: Duration::from_secs(30),
            documents: 24,
            total_nodes: 300_000,
            budget: 0,
            clients: 6,
            seed: 42,
            shards: 0,
        }
    }
}

/// Power-law exponent shared by document sizes, label skew, and the
/// clients' engine-popularity distribution.
const ALPHA: f64 = 1.0;
/// Worker threads for the soak server (small on purpose — overload must
/// be reachable on any host).
const WORKERS: usize = 4;
/// Connection-queue depth (small on purpose, see [`WORKERS`]).
const QUEUE_DEPTH: usize = 32;
/// Connections the storm tries to hold open concurrently.
const STORM_HELD: usize = 60;
/// Closed-loop requests between panic injections (per client). Small
/// enough that injections happen even when overload throttles each
/// client to a few requests per second.
const PANIC_EVERY: usize = 53;

/// The source/target schema family every corpus engine shares (the
/// *documents* differ per engine; matching is computed once).
const SOURCE_OUTLINE: &str = "Order(Buyer(Name Contact(EMail)) \
     POLine*(LineNo Quantity UnitPrice) Note*(Text) Attachment*(Uri))";
const TARGET_OUTLINE: &str = "PO(Purchaser(PName PContact(PEMail)) \
     Line(No Qty Amount) Memo(Body) Doc(Ref))";

/// Per-endpoint observations from one closed-loop client.
#[derive(Default)]
struct ClientTally {
    /// Latencies in µs keyed by endpoint ("query" | "batch" | "stats").
    latencies: HashMap<&'static str, Vec<u64>>,
    /// Response counts by HTTP status.
    statuses: HashMap<u16, u64>,
    /// Error-body `kind` counts for non-2xx responses.
    kinds: HashMap<String, u64>,
    /// Responses whose body was not parseable canonical JSON.
    malformed: u64,
    /// Reconnects after an I/O failure (sheds at connect included).
    reconnects: u64,
}

impl ClientTally {
    fn absorb(&mut self, other: ClientTally) {
        for (k, mut v) in other.latencies {
            self.latencies.entry(k).or_default().append(&mut v);
        }
        for (k, v) in other.statuses {
            *self.statuses.entry(k).or_default() += v;
        }
        for (k, v) in other.kinds {
            *self.kinds.entry(k).or_default() += v;
        }
        self.malformed += other.malformed;
        self.reconnects += other.reconnects;
    }
}

/// `VmRSS` of this process in bytes (0 where `/proc` is unavailable).
fn rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1]
}

/// The serving stack under soak: one registry behind a [`Server`], or
/// `N` shard registries behind the [`Router`].
enum Backend {
    Single(Arc<EngineRegistry>),
    Sharded(Arc<Router>),
}

impl Backend {
    /// Registry counters, summed across shards when sharded.
    fn stats(&self) -> RegistryStats {
        match self {
            Backend::Single(registry) => registry.stats(),
            Backend::Sharded(router) => router.shard_stats().into_iter().fold(
                RegistryStats {
                    resident_engines: 0,
                    resident_bytes: 0,
                    unreclaimed_bytes: 0,
                    evictions: 0,
                    shed_hydrations: 0,
                    hydrations: 0,
                    hydrate_p50_us: 0,
                    hydrate_max_us: 0,
                },
                |mut sum, (_, s)| {
                    sum.resident_engines += s.resident_engines;
                    sum.resident_bytes += s.resident_bytes;
                    sum.unreclaimed_bytes += s.unreclaimed_bytes;
                    sum.evictions += s.evictions;
                    sum.shed_hydrations += s.shed_hydrations;
                    sum.hydrations += s.hydrations;
                    // Latency percentiles do not sum: keep the worst
                    // shard's view, which is what an operator alerts on.
                    sum.hydrate_p50_us = sum.hydrate_p50_us.max(s.hydrate_p50_us);
                    sum.hydrate_max_us = sum.hydrate_max_us.max(s.hydrate_max_us);
                    sum
                },
            ),
        }
    }

    /// Per-shard counters (empty for the single-registry backend).
    fn per_shard(&self) -> Vec<(u64, RegistryStats)> {
        match self {
            Backend::Single(_) => Vec::new(),
            Backend::Sharded(router) => router.shard_stats(),
        }
    }
}

/// Builds the corpus engines, snapshots them into `dir`, and returns
/// `(names, total engine bytes)`.
/// One large corpus engine: the soak schema family over a single
/// `nodes`-node Zipf document. Shared with `figures::bench_layout`,
/// which uses it as the "bigger than any Table II dataset" row.
pub(crate) fn corpus_engine(nodes: usize) -> QueryEngine {
    let source = Schema::parse_outline(SOURCE_OUTLINE).expect("source outline");
    let target = Schema::parse_outline(TARGET_OUTLINE).expect("target outline");
    let matching = Matcher::context().match_schemas(&source, &target);
    let mappings = PossibleMappings::top_h(&matching, 16);
    let doc = corpus_document(&source, nodes, ALPHA, 1);
    QueryEngine::build(mappings, doc, &BlockTreeConfig::default())
}

pub(crate) fn build_corpus(cfg: &SoakConfig, dir: &std::path::Path) -> (Vec<String>, usize) {
    let source = Schema::parse_outline(SOURCE_OUTLINE).expect("source outline");
    let target = Schema::parse_outline(TARGET_OUTLINE).expect("target outline");
    let matching = Matcher::context().match_schemas(&source, &target);
    let mappings = PossibleMappings::top_h(&matching, 16);
    let corpus = CorpusConfig {
        documents: cfg.documents,
        total_nodes: cfg.total_nodes,
        alpha: ALPHA,
        seed: cfg.seed,
    };
    let sizes = corpus.doc_sizes();
    let builder = EngineRegistry::new().snapshot_dir(dir);
    let mut names = Vec::with_capacity(cfg.documents);
    let mut total_bytes = 0usize;
    for (i, &nodes) in sizes.iter().enumerate() {
        let doc = corpus_document(&source, nodes, ALPHA, corpus.doc_seed(i));
        let engine = QueryEngine::build(mappings.clone(), doc, &BlockTreeConfig::default());
        total_bytes += engine.approx_bytes();
        let name = format!("e{i:04}");
        builder.insert(&name, engine);
        builder.save(&name).expect("snapshot save");
        builder.remove(&name); // keep the build phase itself lean
        names.push(name);
    }
    (names, total_bytes)
}

/// The query mix (target-schema twigs the rewrite layer resolves).
fn query_bodies() -> Vec<String> {
    ["//Qty", "//PName", "PO//Amount", "//Body", "//Ref"]
        .iter()
        .map(|p| Query::ptq(TwigPattern::parse(p).expect("twig")).to_json_string())
        .collect()
}

/// Zipf(`ALPHA`) cumulative weights over `n` ranks.
fn zipf_cum(n: usize) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut running = 0.0;
    for i in 0..n {
        running += 1.0 / ((i + 1) as f64).powf(ALPHA);
        cum.push(running);
    }
    cum
}

fn zipf_pick(cum: &[f64], rng: &mut StdRng) -> usize {
    let total = *cum.last().expect("non-empty corpus");
    let x = rng.gen_range(0.0..total);
    cum.partition_point(|&c| c <= x).min(cum.len() - 1)
}

/// One closed-loop client: mixed `/query` + `/batch` + `/stats` traffic
/// (with periodic panic injections) over a persistent connection until
/// `deadline`, reconnecting whenever the server sheds or closes it.
#[allow(clippy::too_many_arguments)]
fn closed_loop(
    addr: std::net::SocketAddr,
    deadline: Instant,
    names: &[String],
    cum: &[f64],
    queries: &[String],
    id: usize,
    seed: u64,
    panics_sent: &AtomicU64,
) -> ClientTally {
    let mut rng = StdRng::seed_from_u64(seed ^ (0xC11E47 + id as u64));
    let mut tally = ClientTally::default();
    let mut client: Option<Client> = None;
    let mut sent = 0usize;
    while Instant::now() < deadline {
        let c = match client.as_mut() {
            Some(c) => c,
            None => {
                match Client::connect(addr).and_then(|c| c.read_timeout(Duration::from_secs(5))) {
                    Ok(c) => {
                        tally.reconnects += 1;
                        client.insert(c)
                    }
                    Err(_) => {
                        // Shed at accept (the server answered 429/503
                        // and closed) or transient socket trouble: back
                        // off a beat and retry.
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                }
            }
        };
        sent += 1;
        let started = Instant::now();
        let (endpoint, outcome) = if sent.is_multiple_of(PANIC_EVERY) {
            ("panic", c.post("/debug/panic", "{}"))
        } else {
            match rng.gen_range(0u32..10) {
                0..=6 => {
                    let engine = &names[zipf_pick(cum, &mut rng)];
                    let body = &queries[rng.gen_range(0..queries.len())];
                    ("query", c.post(&format!("/query/{engine}"), body))
                }
                7 | 8 => {
                    let mut items = Vec::new();
                    for _ in 0..rng.gen_range(2usize..=4) {
                        let e = &names[zipf_pick(cum, &mut rng)];
                        let q = &queries[rng.gen_range(0..queries.len())];
                        items.push(
                            BatchQuery::new(e.as_str(), Query::from_json_str(q).expect("query"))
                                .to_json(),
                        );
                    }
                    let body = Json::Arr(items).to_string();
                    ("batch", c.post("/batch", &body))
                }
                _ => ("stats", c.get("/stats")),
            }
        };
        match outcome {
            Ok((status, body)) => {
                if endpoint == "panic" {
                    // Count only injections the handler actually ran:
                    // one sent into a dead keep-alive connection gets
                    // no response, and one sent on a freshly shed
                    // connection (accepted at the TCP level, answered
                    // 429/503 inline, closed) reads the shed response
                    // instead of reaching the route.
                    if status == 500 {
                        panics_sent.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    tally
                        .latencies
                        .entry(endpoint)
                        .or_default()
                        .push(started.elapsed().as_micros() as u64);
                }
                *tally.statuses.entry(status).or_default() += 1;
                match Json::parse(&body) {
                    Ok(parsed) => {
                        if status >= 400 {
                            if let Some(kind) = parsed
                                .get("error")
                                .and_then(|e| e.get("kind"))
                                .and_then(|k| k.as_str())
                            {
                                *tally.kinds.entry(kind.to_string()).or_default() += 1;
                            } else {
                                tally.malformed += 1;
                            }
                        }
                    }
                    Err(_) => tally.malformed += 1,
                }
                if endpoint == "panic" || status == 429 || status == 503 {
                    // Shed and panic responses close the connection.
                    client = None;
                }
            }
            Err(_) => {
                // Connection died (keep-alive timeout, shed at the
                // socket, contained panic upstream): reconnect next
                // iteration.
                client = None;
            }
        }
    }
    tally
}

/// The open-loop storm: spray connections, send half a request, hold
/// them open — classic slow-loris pressure on the queue and the
/// per-client cap. Returns how many connections it opened.
fn storm(addr: std::net::SocketAddr, deadline: Instant) -> u64 {
    let mut held: std::collections::VecDeque<TcpStream> = std::collections::VecDeque::new();
    let mut opened = 0u64;
    while Instant::now() < deadline {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                opened += 1;
                stream
                    .set_write_timeout(Some(Duration::from_millis(100)))
                    .ok();
                // Half a request: a valid start, then silence.
                let _ = stream.write_all(b"POST /query/e0000 HTTP/1.1\r\ncontent-length: 100\r\n");
                held.push_back(stream);
                while held.len() > STORM_HELD {
                    held.pop_front(); // drop = close the oldest
                }
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    opened
}

fn stat_u64(stats: &Json, section: &str, key: &str) -> u64 {
    stats
        .get(section)
        .and_then(|s| s.get(key))
        .and_then(Json::as_usize)
        .unwrap_or(0) as u64
}

/// Runs the soak. Returns the printable report (and writes
/// `BENCH_soak.json`); panics — failing the run — if a protocol or
/// liveness invariant is violated.
pub fn soak(cfg: &SoakConfig) -> String {
    let scratch = std::env::temp_dir().join(format!("uxm-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "BENCH_soak — {}s mixed-traffic soak: {} engines, {} corpus nodes, seed {}{}",
        cfg.duration.as_secs(),
        cfg.documents,
        cfg.total_nodes,
        cfg.seed,
        if cfg.shards > 0 {
            format!(", {} shard(s)", cfg.shards)
        } else {
            String::new()
        }
    );

    let build_start = Instant::now();
    let (names, corpus_bytes) = build_corpus(cfg, &scratch);
    let budget = if cfg.budget > 0 {
        cfg.budget
    } else {
        (corpus_bytes * 2 / 5).max(1)
    };
    let _ = writeln!(
        out,
        "  corpus built in {:.1}s: {} bytes of engines, budget {} bytes ({}%)",
        build_start.elapsed().as_secs_f64(),
        corpus_bytes,
        budget,
        budget * 100 / corpus_bytes.max(1)
    );

    let server_config = ServerConfig {
        workers: WORKERS,
        queue_depth: QUEUE_DEPTH,
        max_conns_per_client: cfg.clients + 40,
        keep_alive_timeout: Duration::from_secs(1),
        retry_after_ms: 100,
        debug_panic_route: true,
        ..ServerConfig::default()
    };
    let registry_config = RegistryConfig {
        // A cluster budget of B over N shards is B/N per shard.
        memory_budget: budget / cfg.shards.max(1),
        thrash_evictions: 6,
        thrash_window: 512,
    };
    let (backend, addr, handle) = if cfg.shards > 0 {
        let router = Router::start(
            &scratch,
            RouterConfig {
                shards: cfg.shards,
                registry: registry_config,
                shard_server: ServerConfig {
                    workers: 2,
                    queue_depth: QUEUE_DEPTH,
                    max_conns_per_client: cfg.clients + 40,
                    retry_after_ms: 100,
                    ..ServerConfig::default()
                },
                ..RouterConfig::default()
            },
        )
        .expect("router start");
        let front = router
            .bind("127.0.0.1:0", server_config)
            .expect("bind loopback");
        let addr = front.local_addr();
        (Backend::Sharded(router), addr, front.start())
    } else {
        let registry =
            Arc::new(EngineRegistry::with_config(registry_config).snapshot_dir(&scratch));
        let server = Server::bind(Arc::clone(&registry), "127.0.0.1:0", server_config)
            .expect("bind loopback");
        let addr = server.local_addr();
        (Backend::Single(registry), addr, server.start())
    };

    let queries = query_bodies();
    let cum = zipf_cum(names.len());
    let deadline = Instant::now() + cfg.duration;
    let panics_sent = AtomicU64::new(0);

    let (tally, storm_opened, rss_samples) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..cfg.clients)
            .map(|id| {
                let (names, cum, queries, panics_sent) = (&names, &cum, &queries, &panics_sent);
                scope.spawn(move || {
                    closed_loop(
                        addr,
                        deadline,
                        names,
                        cum,
                        queries,
                        id,
                        cfg.seed,
                        panics_sent,
                    )
                })
            })
            .collect();
        let storm_thread = scope.spawn(move || storm(addr, deadline));

        // Main thread meanwhile samples RSS vs the registries' own
        // accounting (summed across shards when sharded).
        let mut samples: Vec<(u64, u64)> = Vec::new();
        while Instant::now() < deadline {
            let stats = backend.stats();
            samples.push((rss_bytes(), stats.footprint_bytes() as u64));
            std::thread::sleep(Duration::from_millis(250));
        }

        let mut tally = ClientTally::default();
        for c in clients {
            tally.absorb(c.join().expect("client thread"));
        }
        let storm_opened = storm_thread.join().expect("storm thread");
        (tally, storm_opened, samples)
    });

    // Give the queue a moment to drain the storm's leftovers, then
    // prove every worker still serves: WORKERS concurrent connections
    // must all answer.
    std::thread::sleep(Duration::from_millis(1500));
    let mut probes: Vec<Client> = Vec::new();
    for i in 0..WORKERS {
        let client = Client::connect(addr)
            .and_then(|c| c.read_timeout(Duration::from_secs(10)))
            .unwrap_or_else(|e| panic!("probe {i} could not connect: {e}"));
        probes.push(client);
    }
    for (i, probe) in probes.iter_mut().enumerate() {
        let (status, body) = probe
            .get("/healthz")
            .unwrap_or_else(|e| panic!("worker probe {i} wedged: {e}"));
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
    }
    let (_, stats_json) = probes[0].get("/stats").expect("final stats");
    let server_stats = Json::parse(&stats_json).expect("stats body parses");
    drop(probes);

    // Protocol invariant: every closed-loop response was typed JSON
    // with a known status.
    assert_eq!(
        tally.malformed, 0,
        "non-typed response bodies observed under overload"
    );
    let known = [200u16, 400, 404, 405, 413, 429, 500, 503];
    for status in tally.statuses.keys() {
        assert!(known.contains(status), "unexpected status {status}");
    }

    let reg_stats = backend.stats();
    let shard_rows = backend.per_shard();
    let shed_queue = stat_u64(&server_stats, "server", "shed_queue_full");
    let shed_client = stat_u64(&server_stats, "server", "shed_per_client");
    let panics_contained = stat_u64(&server_stats, "server", "panics_contained");

    // Liveness invariant: every injected panic was contained (the
    // server's counter can exceed ours only if a storm conn tripped
    // one, never fall short).
    assert!(
        panics_contained >= panics_sent.load(Ordering::Relaxed),
        "injected {} panics but the server contained {} (statuses {:?}, kinds {:?})",
        panics_sent.load(Ordering::Relaxed),
        panics_contained,
        tally.statuses,
        tally.kinds
    );

    handle.shutdown();
    if let Backend::Sharded(router) = &backend {
        router.shutdown();
    }
    let _ = std::fs::remove_dir_all(&scratch);

    // ----- report -----
    let mut endpoint_rows: Vec<(String, Json)> = Vec::new();
    let _ = writeln!(
        out,
        "  endpoint     count     p50(µs)     p99(µs)    p999(µs)     max(µs)"
    );
    let mut endpoints: Vec<&&str> = tally.latencies.keys().collect();
    endpoints.sort();
    for &&endpoint in &endpoints {
        let mut lats = tally.latencies[endpoint].clone();
        lats.sort_unstable();
        let (p50, p99, p999) = (
            percentile(&lats, 50.0),
            percentile(&lats, 99.0),
            percentile(&lats, 99.9),
        );
        let max = lats.last().copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "  {endpoint:<10} {:>7} {p50:>11} {p99:>11} {p999:>11} {max:>11}",
            lats.len()
        );
        endpoint_rows.push((
            endpoint.to_string(),
            Json::Obj(vec![
                ("count".into(), Json::uint(lats.len() as u64)),
                ("max_us".into(), Json::uint(max)),
                ("p50_us".into(), Json::uint(p50)),
                ("p99_us".into(), Json::uint(p99)),
                ("p999_us".into(), Json::uint(p999)),
            ]),
        ));
    }

    let mut statuses: Vec<(u16, u64)> = tally.statuses.iter().map(|(&s, &n)| (s, n)).collect();
    statuses.sort();
    let status_line = statuses
        .iter()
        .map(|(s, n)| format!("{s}:{n}"))
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(out, "  statuses: {status_line}");
    let mut kinds: Vec<(&String, &u64)> = tally.kinds.iter().collect();
    kinds.sort();
    let kind_line = kinds
        .iter()
        .map(|(k, n)| format!("{k}:{n}"))
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(out, "  error kinds: {kind_line}");
    let _ = writeln!(
        out,
        "  sheds: queue-full {shed_queue}, per-client {shed_client}; \
         storm opened {storm_opened} conns; {} reconnects",
        tally.reconnects
    );
    let _ = writeln!(
        out,
        "  registry: {} evictions, {} shed hydrations, resident {} B, unreclaimed {} B",
        reg_stats.evictions,
        reg_stats.shed_hydrations,
        reg_stats.resident_bytes,
        reg_stats.unreclaimed_bytes
    );
    for (id, s) in &shard_rows {
        let _ = writeln!(
            out,
            "    shard {id}: {} evictions, {} thrash-shed hydrations, \
             {} resident engine(s), resident {} B, unreclaimed {} B",
            s.evictions,
            s.shed_hydrations,
            s.resident_engines,
            s.resident_bytes,
            s.unreclaimed_bytes
        );
    }
    let max_rss = rss_samples.iter().map(|&(r, _)| r).max().unwrap_or(0);
    let max_drift = rss_samples
        .iter()
        .map(|&(rss, fp)| rss.saturating_sub(fp))
        .max()
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "  rss: max {} B, max rss-vs-footprint drift {} B over {} samples",
        max_rss,
        max_drift,
        rss_samples.len()
    );
    let _ = writeln!(
        out,
        "  panics: injected {}, contained {} — all workers alive at end",
        panics_sent.load(Ordering::Relaxed),
        panics_contained
    );

    let report = Json::Obj(vec![
        (
            "config".into(),
            Json::Obj(vec![
                ("budget_bytes".into(), Json::uint(budget as u64)),
                ("clients".into(), Json::uint(cfg.clients as u64)),
                ("documents".into(), Json::uint(cfg.documents as u64)),
                ("duration_s".into(), Json::uint(cfg.duration.as_secs())),
                ("seed".into(), Json::uint(cfg.seed)),
                ("shards".into(), Json::uint(cfg.shards as u64)),
                ("total_nodes".into(), Json::uint(cfg.total_nodes as u64)),
                ("workers".into(), Json::uint(WORKERS as u64)),
            ]),
        ),
        ("endpoints".into(), Json::Obj(endpoint_rows)),
        (
            "panics".into(),
            Json::Obj(vec![
                ("contained".into(), Json::uint(panics_contained)),
                (
                    "injected".into(),
                    Json::uint(panics_sent.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "registry".into(),
            Json::Obj(vec![
                ("corpus_bytes".into(), Json::uint(corpus_bytes as u64)),
                ("evictions".into(), Json::uint(reg_stats.evictions)),
                (
                    "hydrate_max_us".into(),
                    Json::uint(reg_stats.hydrate_max_us),
                ),
                (
                    "hydrate_p50_us".into(),
                    Json::uint(reg_stats.hydrate_p50_us),
                ),
                ("hydrations".into(), Json::uint(reg_stats.hydrations)),
                (
                    "resident_bytes".into(),
                    Json::uint(reg_stats.resident_bytes as u64),
                ),
                (
                    "shed_hydrations".into(),
                    Json::uint(reg_stats.shed_hydrations),
                ),
                (
                    "unreclaimed_bytes".into(),
                    Json::uint(reg_stats.unreclaimed_bytes as u64),
                ),
            ]),
        ),
        (
            "rss".into(),
            Json::Obj(vec![
                ("max_drift_bytes".into(), Json::uint(max_drift)),
                ("max_rss_bytes".into(), Json::uint(max_rss)),
                ("samples".into(), Json::uint(rss_samples.len() as u64)),
            ]),
        ),
        (
            "shards".into(),
            Json::Arr(
                shard_rows
                    .iter()
                    .map(|(id, s)| {
                        Json::Obj(vec![
                            ("evictions".into(), Json::uint(s.evictions)),
                            ("id".into(), Json::uint(*id)),
                            ("resident_bytes".into(), Json::uint(s.resident_bytes as u64)),
                            (
                                "resident_engines".into(),
                                Json::uint(s.resident_engines as u64),
                            ),
                            ("shed_hydrations".into(), Json::uint(s.shed_hydrations)),
                            (
                                "unreclaimed_bytes".into(),
                                Json::uint(s.unreclaimed_bytes as u64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "sheds".into(),
            Json::Obj(vec![
                ("per_client".into(), Json::uint(shed_client)),
                ("queue_full".into(), Json::uint(shed_queue)),
                ("storm_connections".into(), Json::uint(storm_opened)),
            ]),
        ),
        (
            "statuses".into(),
            Json::Obj(
                statuses
                    .iter()
                    .map(|&(s, n)| (s.to_string(), Json::uint(n)))
                    .collect(),
            ),
        ),
    ]);
    let path = "BENCH_soak.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cum_is_monotonic_and_skewed() {
        let cum = zipf_cum(10);
        assert_eq!(cum.len(), 10);
        assert!(cum.windows(2).all(|w| w[0] < w[1]));
        // Rank 0's mass is the largest single share.
        assert!(cum[0] > cum[9] - cum[8]);
    }

    #[test]
    fn zipf_pick_prefers_the_head() {
        let cum = zipf_cum(20);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 20];
        for _ in 0..10_000 {
            counts[zipf_pick(&cum, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[19] * 3, "head {counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn percentile_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 99.9), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn rss_reads_on_linux() {
        // On Linux this must be non-zero; elsewhere 0 is the contract.
        if cfg!(target_os = "linux") {
            assert!(rss_bytes() > 0);
        }
    }

    /// Both mini soaks write `BENCH_soak.json` in the working
    /// directory — serialize them so neither reads the other's file.
    static REPORT_FILE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// A miniature end-to-end soak — seconds, not minutes — exercising
    /// the whole harness: corpus build, overload, panic injection,
    /// invariant checks, and the JSON report.
    #[test]
    fn mini_soak_completes_with_typed_responses() {
        let _guard = REPORT_FILE.lock().unwrap_or_else(|p| p.into_inner());
        let cfg = SoakConfig {
            duration: Duration::from_secs(3),
            documents: 6,
            total_nodes: 12_000,
            budget: 0,
            clients: 3,
            seed: 7,
            shards: 0,
        };
        let report = soak(&cfg);
        assert!(report.contains("wrote BENCH_soak.json"));
        assert!(report.contains("all workers alive"));
        let written = std::fs::read_to_string("BENCH_soak.json").expect("report file");
        let parsed = Json::parse(written.trim()).expect("canonical JSON");
        assert!(parsed.get("endpoints").is_some());
        assert!(parsed.get("sheds").is_some());
        assert_eq!(
            parsed.get("shards").and_then(Json::as_arr).map(|a| a.len()),
            Some(0)
        );
    }

    /// The same harness against the sharded router: the report must
    /// carry one eviction/shed/thrash row per shard.
    #[test]
    fn mini_sharded_soak_reports_per_shard_counters() {
        let _guard = REPORT_FILE.lock().unwrap_or_else(|p| p.into_inner());
        let cfg = SoakConfig {
            duration: Duration::from_secs(3),
            documents: 6,
            total_nodes: 12_000,
            budget: 0,
            clients: 3,
            seed: 7,
            shards: 2,
        };
        let report = soak(&cfg);
        assert!(report.contains("wrote BENCH_soak.json"));
        assert!(report.contains("2 shard(s)"));
        assert!(report.contains("shard 0:"));
        assert!(report.contains("shard 1:"));
        let written = std::fs::read_to_string("BENCH_soak.json").expect("report file");
        let parsed = Json::parse(written.trim()).expect("canonical JSON");
        let rows = parsed
            .get("shards")
            .and_then(Json::as_arr)
            .expect("shards array");
        assert_eq!(rows.len(), 2);
        for row in rows {
            for key in ["evictions", "id", "resident_bytes", "shed_hydrations"] {
                assert!(row.get(key).is_some(), "shard row missing {key}");
            }
        }
    }
}
