//! `repro shard` — scatter-gather benchmark for the sharded registry,
//! writing `BENCH_shard.json`.
//!
//! Two phases, each run at 1 shard (the degenerate router — one
//! registry behind the scatter-gather front) and at 4 shards:
//!
//! * **Phase 1 — work split.** An open corpus sweep (`/query`
//!   round-robin over every engine plus periodic `/topk` scatter-
//!   gathers) with an unconstrained budget. The consistent-hash ring
//!   pins each engine to one owner, so the interesting number is the
//!   *largest single shard's* resident footprint: at 4 shards it
//!   should be roughly a quarter of the corpus — no shard ever does
//!   the whole cluster's hydration work.
//!
//! * **Phase 2 — tail isolation.** A tight per-shard budget plus a
//!   thrash gate, then two populations at once: *aggressors* cycling
//!   the cold tail of engines owned by one "hot" shard (a worst-case
//!   LRU churn), and *victims* querying a small set of engines that
//!   the 4-shard ring places on **other** shards. At 1 shard the
//!   aggressors evict the victims' engines from under them; at 4 the
//!   churn is confined to the hot shard and the victims' tail stays
//!   flat. The per-shard eviction/shed counters in the report show
//!   exactly where the thrash landed.
//!
//! No wall-clock assertion gates the run — the JSON report records
//! the latency distributions and counters for inspection; structural
//! invariants (typed responses, reachable engines) are asserted.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use uxm_core::api::Query;
use uxm_core::json::Json;
use uxm_core::registry::{RegistryConfig, RegistryStats};
use uxm_core::router::{Ring, Router, RouterConfig};
use uxm_core::server::{Client, ServerConfig};
use uxm_twig::TwigPattern;

use crate::soak::{build_corpus, SoakConfig};

/// Shard counts each phase compares.
const SHARD_COUNTS: [usize; 2] = [1, 4];
/// Driver threads per population.
const THREADS: usize = 3;
/// Every n-th phase-1 request is a `/topk` scatter-gather.
const TOPK_EVERY: usize = 16;
/// Victim engines sampled from the non-hot shards in phase 2.
const VICTIMS: usize = 4;

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((pct / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1]
}

/// One phase's wall-clock slice of the overall `--duration` budget
/// (four timed runs total, floor 2 s so tiny test runs still drive
/// real traffic).
fn phase_duration(cfg: &SoakConfig) -> Duration {
    (cfg.duration / 6).max(Duration::from_secs(2))
}

/// Starts a router (with its front server) over `dir`.
fn start_stack(
    dir: &std::path::Path,
    shards: usize,
    registry: RegistryConfig,
) -> (
    std::sync::Arc<Router>,
    std::net::SocketAddr,
    uxm_core::server::ServerHandle,
) {
    let router = Router::start(
        dir,
        RouterConfig {
            shards,
            registry,
            shard_server: ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
            ..RouterConfig::default()
        },
    )
    .expect("router start");
    let front = router
        .bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
    let addr = front.local_addr();
    let handle = front.start();
    (router, addr, handle)
}

/// Drives `names` round-robin from `THREADS` persistent connections
/// until `deadline`: mostly `/query`, every [`TOPK_EVERY`]-th request
/// a `/topk` scatter-gather. Returns `(latencies µs, errors)` —
/// any non-200 is an error (phase 1 runs unconstrained, nothing may
/// shed), and each thread asserts its bodies stay typed JSON.
fn drive_sweep(
    addr: std::net::SocketAddr,
    deadline: Instant,
    names: &[String],
    query: &str,
    topk_body: &str,
) -> (Vec<u64>, u64) {
    let errors = AtomicU64::new(0);
    let mut latencies = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let errors = &errors;
                scope.spawn(move || {
                    let mut lats = Vec::new();
                    let mut client: Option<Client> = None;
                    let mut i = t; // offset start so threads interleave
                    while Instant::now() < deadline {
                        let c = match client.as_mut() {
                            Some(c) => c,
                            None => match Client::connect(addr)
                                .and_then(|c| c.read_timeout(Duration::from_secs(10)))
                            {
                                Ok(c) => client.insert(c),
                                Err(_) => continue,
                            },
                        };
                        let started = Instant::now();
                        let outcome = if i % TOPK_EVERY == 0 {
                            c.post("/topk", topk_body)
                        } else {
                            c.post(&format!("/query/{}", names[i % names.len()]), query)
                        };
                        i += 1;
                        match outcome {
                            Ok((status, body)) => {
                                lats.push(started.elapsed().as_micros() as u64);
                                assert!(Json::parse(&body).is_ok(), "untyped body: {body}");
                                if status != 200 {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                    client = None;
                                }
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                client = None;
                            }
                        }
                    }
                    lats
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.append(&mut h.join().expect("sweep thread"));
        }
        all
    });
    latencies.sort_unstable();
    (latencies, errors.load(Ordering::Relaxed))
}

/// Phase-2 population: cycles `names` in a fixed order (aggressors —
/// worst-case LRU churn) or round-robin over a small hot set
/// (victims), recording latencies. 429/503 sheds are expected under
/// thrash; they close the connection and the thread reconnects.
fn drive_population(
    addr: std::net::SocketAddr,
    deadline: Instant,
    names: &[String],
    query: &str,
) -> (Vec<u64>, u64, u64) {
    let sheds = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    let mut latencies = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (sheds, requests) = (&sheds, &requests);
                scope.spawn(move || {
                    let mut lats = Vec::new();
                    let mut client: Option<Client> = None;
                    let mut i = t * (names.len() / THREADS).max(1);
                    while Instant::now() < deadline {
                        let c = match client.as_mut() {
                            Some(c) => c,
                            None => match Client::connect(addr)
                                .and_then(|c| c.read_timeout(Duration::from_secs(10)))
                            {
                                Ok(c) => client.insert(c),
                                Err(_) => continue,
                            },
                        };
                        let started = Instant::now();
                        let outcome = c.post(&format!("/query/{}", names[i % names.len()]), query);
                        i += 1;
                        match outcome {
                            Ok((status, _)) => {
                                requests.fetch_add(1, Ordering::Relaxed);
                                lats.push(started.elapsed().as_micros() as u64);
                                if status != 200 {
                                    sheds.fetch_add(1, Ordering::Relaxed);
                                    client = None;
                                }
                            }
                            Err(_) => client = None,
                        }
                    }
                    lats
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.append(&mut h.join().expect("population thread"));
        }
        all
    });
    latencies.sort_unstable();
    (
        latencies,
        requests.load(Ordering::Relaxed),
        sheds.load(Ordering::Relaxed),
    )
}

/// Canonical JSON rows for per-shard registry counters.
fn shard_rows(stats: &[(u64, RegistryStats)]) -> Json {
    Json::Arr(
        stats
            .iter()
            .map(|(id, s)| {
                Json::Obj(vec![
                    ("evictions".into(), Json::uint(s.evictions)),
                    ("id".into(), Json::uint(*id)),
                    ("resident_bytes".into(), Json::uint(s.resident_bytes as u64)),
                    (
                        "resident_engines".into(),
                        Json::uint(s.resident_engines as u64),
                    ),
                    ("shed_hydrations".into(), Json::uint(s.shed_hydrations)),
                ])
            })
            .collect(),
    )
}

/// Latency summary members (alphabetical, canonical).
fn latency_members(sorted: &[u64]) -> Vec<(String, Json)> {
    vec![
        ("count".into(), Json::uint(sorted.len() as u64)),
        (
            "max_us".into(),
            Json::uint(sorted.last().copied().unwrap_or(0)),
        ),
        ("p50_us".into(), Json::uint(percentile(sorted, 50.0))),
        ("p99_us".into(), Json::uint(percentile(sorted, 99.0))),
    ]
}

/// Runs the shard benchmark. Returns the printable report and writes
/// `BENCH_shard.json`.
pub fn shard_bench(cfg: &SoakConfig) -> String {
    let scratch = std::env::temp_dir().join(format!("uxm-shard-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let phase = phase_duration(cfg);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "BENCH_shard — scatter-gather router at {:?} shards, {:.1}s per run: \
         {} engines, {} corpus nodes, seed {}",
        SHARD_COUNTS,
        phase.as_secs_f64(),
        cfg.documents,
        cfg.total_nodes,
        cfg.seed
    );

    let build_start = Instant::now();
    let (names, corpus_bytes) = build_corpus(cfg, &scratch);
    let _ = writeln!(
        out,
        "  corpus built in {:.1}s: {corpus_bytes} bytes of engines",
        build_start.elapsed().as_secs_f64()
    );

    let query = Query::ptq(TwigPattern::parse("//Qty").expect("twig")).to_json_string();
    let topk_body = Json::Obj(vec![(
        "query".into(),
        Query::topk(TwigPattern::parse("PO//Amount").expect("twig"), 4).to_json(),
    )])
    .to_string();

    // ---- phase 1: work split under an unconstrained budget ----
    let mut phase1_rows: Vec<Json> = Vec::new();
    let _ = writeln!(out, "  phase 1 — work split (budget off):");
    for &shards in &SHARD_COUNTS {
        let (router, addr, handle) = start_stack(&scratch, shards, RegistryConfig::default());
        let (lats, errors) = drive_sweep(addr, Instant::now() + phase, &names, &query, &topk_body);
        assert_eq!(errors, 0, "phase 1 runs unconstrained; nothing may fail");
        let stats = router.shard_stats();
        handle.shutdown();
        router.shutdown();
        let max_resident = stats
            .iter()
            .map(|(_, s)| s.resident_bytes)
            .max()
            .unwrap_or(0);
        let total_resident: usize = stats.iter().map(|(_, s)| s.resident_bytes).sum();
        let rps = lats.len() as f64 / phase.as_secs_f64();
        let _ = writeln!(
            out,
            "    {shards} shard(s): {} reqs ({rps:.0}/s), p50 {} µs, p99 {} µs; \
             max shard resident {max_resident} B of {total_resident} B total",
            lats.len(),
            percentile(&lats, 50.0),
            percentile(&lats, 99.0),
        );
        let mut members = latency_members(&lats);
        members.push((
            "max_shard_resident_bytes".into(),
            Json::uint(max_resident as u64),
        ));
        members.push(("shard_count".into(), Json::uint(shards as u64)));
        members.push(("shards".into(), shard_rows(&stats)));
        members.push((
            "total_resident_bytes".into(),
            Json::uint(total_resident as u64),
        ));
        members.sort_by(|a, b| a.0.cmp(&b.0));
        phase1_rows.push(Json::Obj(members));
    }

    // ---- phase 2: tail isolation under thrash ----
    // Partition the corpus by the 4-shard ring: aggressors churn the
    // hot shard's engines, victims live on the other shards. The same
    // populations run against the 1-shard stack, where "isolation"
    // cannot exist — everyone shares one LRU.
    let ring = Ring::build(&[0, 1, 2, 3], RouterConfig::default().vnodes);
    let mut by_owner: std::collections::HashMap<u64, Vec<&String>> = Default::default();
    for name in &names {
        by_owner.entry(ring.owner(name)).or_default().push(name);
    }
    let hot = *by_owner
        .iter()
        .max_by_key(|(id, v)| (v.len(), std::cmp::Reverse(**id)))
        .expect("non-empty corpus")
        .0;
    let aggressor_names: Vec<String> = by_owner[&hot].iter().map(|n| n.to_string()).collect();
    // Victims round-robin across the non-hot shards (ascending id, so
    // the pick is deterministic) for shard diversity.
    let mut others: Vec<u64> = by_owner.keys().copied().filter(|&id| id != hot).collect();
    others.sort_unstable();
    let mut victim_names: Vec<String> = Vec::new();
    let mut depth = 0;
    while victim_names.len() < VICTIMS {
        let before = victim_names.len();
        for &id in &others {
            if victim_names.len() >= VICTIMS {
                break;
            }
            if let Some(n) = by_owner[&id].get(depth) {
                victim_names.push((*n).clone());
            }
        }
        if victim_names.len() == before {
            break; // tiny corpus: take what exists
        }
        depth += 1;
    }
    assert!(
        !victim_names.is_empty(),
        "4-shard ring left no victim engines"
    );
    // Cluster budget tight enough that the hot shard's slice thrashes:
    // 40 % of the corpus, matching the soak's derivation.
    let budget = if cfg.budget > 0 {
        cfg.budget
    } else {
        (corpus_bytes * 2 / 5).max(1)
    };
    let _ = writeln!(
        out,
        "  phase 2 — tail isolation: budget {budget} B, hot shard {hot} \
         ({} aggressor engines), {} victim engines",
        aggressor_names.len(),
        victim_names.len()
    );
    let mut phase2_rows: Vec<Json> = Vec::new();
    for &shards in &SHARD_COUNTS {
        let (router, addr, handle) = start_stack(
            &scratch,
            shards,
            RegistryConfig {
                memory_budget: budget / shards,
                thrash_evictions: 6,
                thrash_window: 512,
            },
        );
        let deadline = Instant::now() + phase;
        let ((agg_lats, agg_reqs, agg_sheds), (vic_lats, vic_reqs, vic_sheds)) =
            std::thread::scope(|scope| {
                let agg =
                    scope.spawn(|| drive_population(addr, deadline, &aggressor_names, &query));
                let vic = scope.spawn(|| drive_population(addr, deadline, &victim_names, &query));
                (
                    agg.join().expect("aggressors"),
                    vic.join().expect("victims"),
                )
            });
        let stats = router.shard_stats();
        handle.shutdown();
        router.shutdown();
        assert!(
            vic_reqs > 0,
            "victims made no requests at {shards} shard(s)"
        );
        let _ = writeln!(
            out,
            "    {shards} shard(s): victims p50 {} µs, p99 {} µs ({vic_reqs} reqs, \
             {vic_sheds} shed); aggressors p99 {} µs ({agg_reqs} reqs, {agg_sheds} shed)",
            percentile(&vic_lats, 50.0),
            percentile(&vic_lats, 99.0),
            percentile(&agg_lats, 99.0),
        );
        for (id, s) in &stats {
            let _ = writeln!(
                out,
                "      shard {id}: {} evictions, {} thrash-shed hydrations",
                s.evictions, s.shed_hydrations
            );
        }
        phase2_rows.push(Json::Obj(vec![
            (
                "aggressors".into(),
                Json::Obj({
                    let mut m = latency_members(&agg_lats);
                    m.push(("requests".into(), Json::uint(agg_reqs)));
                    m.push(("sheds".into(), Json::uint(agg_sheds)));
                    m
                }),
            ),
            ("shard_count".into(), Json::uint(shards as u64)),
            ("shards".into(), shard_rows(&stats)),
            (
                "victims".into(),
                Json::Obj({
                    let mut m = latency_members(&vic_lats);
                    m.push(("requests".into(), Json::uint(vic_reqs)));
                    m.push(("sheds".into(), Json::uint(vic_sheds)));
                    m
                }),
            ),
        ]));
    }

    let _ = std::fs::remove_dir_all(&scratch);

    let report = Json::Obj(vec![
        (
            "config".into(),
            Json::Obj(vec![
                ("corpus_bytes".into(), Json::uint(corpus_bytes as u64)),
                ("documents".into(), Json::uint(cfg.documents as u64)),
                ("phase_seconds".into(), Json::uint(phase.as_secs())),
                ("seed".into(), Json::uint(cfg.seed)),
                ("total_nodes".into(), Json::uint(cfg.total_nodes as u64)),
            ]),
        ),
        ("phase1_work_split".into(), Json::Arr(phase1_rows)),
        ("phase2_tail_isolation".into(), Json::Arr(phase2_rows)),
    ]);
    let path = "BENCH_shard.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_duration_has_a_floor() {
        let quick = SoakConfig {
            duration: Duration::from_millis(100),
            ..SoakConfig::default()
        };
        assert_eq!(phase_duration(&quick), Duration::from_secs(2));
        let long = SoakConfig {
            duration: Duration::from_secs(60),
            ..SoakConfig::default()
        };
        assert_eq!(phase_duration(&long), Duration::from_secs(10));
    }

    /// A miniature end-to-end run of both phases against a small
    /// corpus — the full harness, seconds not minutes.
    #[test]
    fn mini_shard_bench_reports_both_phases() {
        let cfg = SoakConfig {
            duration: Duration::from_secs(1), // floor: 2 s per run
            documents: 8,
            total_nodes: 16_000,
            budget: 0,
            clients: 2,
            seed: 11,
            shards: 0,
        };
        let report = shard_bench(&cfg);
        assert!(report.contains("phase 1 — work split"));
        assert!(report.contains("phase 2 — tail isolation"));
        assert!(report.contains("wrote BENCH_shard.json"));
        let written = std::fs::read_to_string("BENCH_shard.json").expect("report file");
        let parsed = Json::parse(written.trim()).expect("canonical JSON");
        for phase in ["phase1_work_split", "phase2_tail_isolation"] {
            let rows = parsed.get(phase).and_then(Json::as_arr).expect(phase);
            assert_eq!(rows.len(), SHARD_COUNTS.len(), "{phase} rows");
        }
    }
}
