//! # uxm-bench — the reproduction harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VI).
//! The `repro` binary prints paper-style tables; the Criterion benches in
//! `benches/` provide statistically careful microbenchmarks of the same
//! code paths.
//!
//! Run `cargo run --release -p uxm-bench --bin repro -- all` for the full
//! sweep, or pass an experiment id (`table2`, `fig9a` … `fig10f`).

pub mod figures;
pub mod shard;
pub mod soak;
pub mod workload;

/// Wall-clock seconds for `runs` executions of `f`, averaged.
pub fn time_avg<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    assert!(runs > 0);
    let start = std::time::Instant::now();
    for _ in 0..runs {
        f();
    }
    start.elapsed().as_secs_f64() / runs as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn time_avg_measures_something() {
        let t = super::time_avg(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
        assert!(t < 1.0);
    }
}
