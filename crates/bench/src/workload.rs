//! Shared experiment workloads.
//!
//! The paper's defaults (§VI-A): dataset D7, `|M| = 100`, `τ = 0.2`,
//! `MAX_B = 500`, `MAX_F = 500`, source document `Order.xml` (3 473
//! nodes), each data point averaged over repeated runs.

use uxm_core::block_tree::{BlockTree, BlockTreeConfig};
use uxm_core::engine::QueryEngine;
use uxm_core::mapping::PossibleMappings;
use uxm_datagen::datasets::{Dataset, DatasetId};
use uxm_xml::{DocGenConfig, Document};

/// Paper default `|M|`.
pub const DEFAULT_M: usize = 100;
/// Paper default confidence threshold.
pub const DEFAULT_TAU: f64 = 0.2;
/// Paper default `MAX_B` / `MAX_F`.
pub const DEFAULT_MAX: usize = 500;
/// Document seed for the `Order.xml` stand-in.
pub const DOC_SEED: u64 = 0x0D0C;

/// A fully prepared query workload over one dataset.
pub struct QueryWorkload {
    /// The loaded dataset (schemas + matching).
    pub dataset: Dataset,
    /// The derived possible-mapping set.
    pub mappings: PossibleMappings,
    /// The source document the queries run against.
    pub doc: Document,
    /// The block tree built with the given configuration.
    pub tree: BlockTree,
}

impl QueryWorkload {
    /// A [`QueryEngine`] session over this workload (clones the shared
    /// data into the engine; build it once per experiment).
    pub fn engine(&self) -> QueryEngine {
        QueryEngine::new(self.mappings.clone(), self.doc.clone(), self.tree.clone())
    }
}

/// Builds the paper's default D7 workload with `m` possible mappings.
pub fn d7_workload(m: usize, config: &BlockTreeConfig) -> QueryWorkload {
    workload_for(DatasetId::D7, m, config)
}

/// Builds a query workload for any dataset.
pub fn workload_for(id: DatasetId, m: usize, config: &BlockTreeConfig) -> QueryWorkload {
    let dataset = Dataset::load(id);
    let mappings = PossibleMappings::top_h(&dataset.matching, m);
    let doc = Document::generate(
        &dataset.matching.source,
        &DocGenConfig::order_xml(),
        DOC_SEED,
    );
    let tree = BlockTree::build(&dataset.matching.target, &mappings, config);
    QueryWorkload {
        dataset,
        mappings,
        doc,
        tree,
    }
}

/// The default block-tree configuration of §VI-A.
pub fn default_config() -> BlockTreeConfig {
    BlockTreeConfig {
        tau: DEFAULT_TAU,
        max_blocks: DEFAULT_MAX,
        max_failures: DEFAULT_MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d7_workload_assembles() {
        let w = d7_workload(20, &default_config());
        assert_eq!(w.mappings.len(), 20);
        assert!(w.doc.len() >= 3000);
        assert_eq!(w.dataset.matching.target.len(), 166);
    }
}
