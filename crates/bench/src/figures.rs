//! One function per table/figure of the paper's evaluation (§VI).
//!
//! Every function returns a printable table. Absolute times will differ
//! from the paper (2010 C++ testbed vs this Rust reproduction); the
//! *shapes* — who wins, trends over τ / |M| / k / h — are the target.

use crate::time_avg;
use crate::workload::{d7_workload, default_config, workload_for, DEFAULT_M};
use std::fmt::Write as _;
use uxm_assignment::murty::RankVariant;
use uxm_assignment::partition::{murty_top_h_mappings, partition, partition_top_h_with};
use uxm_core::aggregate::AggFunc;
use uxm_core::api::{EvaluatorHint, Query};
use uxm_core::block_tree::{BlockTree, BlockTreeConfig};
use uxm_core::compress::compression_ratio;
use uxm_core::json::Json;
use uxm_core::mapping::PossibleMappings;
use uxm_core::planner::Evaluator;
use uxm_core::stats::{avg_block_size, block_size_histogram, max_block_coverage, o_ratio};
use uxm_datagen::datasets::{Dataset, DatasetId};
use uxm_datagen::queries::paper_queries;
use uxm_twig::TwigPattern;
// The one-shot timing experiments measure the paper's *legacy* per-call
// paths (throwaway session per query) on purpose — that is exactly what
// Fig 9(f)/10 plot. They are the only remaining consumers of the
// deprecated shims outside the shim-coverage tests.
#[allow(deprecated)]
use uxm_core::ptq::ptq_basic;
#[allow(deprecated)]
use uxm_core::ptq_tree::ptq_with_tree;
#[allow(deprecated)]
use uxm_core::topk::topk_ptq;

/// Shared knobs for the repro run.
#[derive(Clone, Debug)]
pub struct ReproConfig {
    /// Repetitions per timed data point (the paper uses 50).
    pub runs: usize,
    /// `|M|` for query experiments.
    pub m: usize,
    /// Knobs for the `soak` experiment.
    pub soak: crate::soak::SoakConfig,
    /// When set, `bench_layout` exits nonzero unless v3 cold hydration
    /// beats v2 on the large `corpus` document (the CI latency gate).
    pub assert_hydration: bool,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            runs: 5,
            m: DEFAULT_M,
            soak: crate::soak::SoakConfig::default(),
            assert_hydration: false,
        }
    }
}

/// The τ sweep used by Fig 9(a)/(b).
const TAU_SWEEP: [f64; 11] = [0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Table II: dataset statistics, paper vs measured.
pub fn table2(cfg: &ReproConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table II — schema matching datasets (paper → measured)\n\
         {:<4} {:>5} {:>5} {:>4}  {:>9} {:>9}  {:>8} {:>8}",
        "ID", "|S|", "|T|", "opt", "Cap(ppr)", "Cap(msr)", "o-r(ppr)", "o-r(msr)"
    );
    for id in DatasetId::all() {
        let d = Dataset::load(id);
        let (s, t, cap_paper, o_paper) = id.paper_row();
        let (_, _, strategy) = id.spec();
        let pm = PossibleMappings::top_h(&d.matching, cfg.m);
        let o_measured = o_ratio(&pm);
        let _ = writeln!(
            out,
            "{:<4} {:>5} {:>5} {:>4}  {:>9} {:>9}  {:>8.2} {:>8.2}",
            id.name(),
            s,
            t,
            match strategy {
                uxm_matching::MatchStrategy::Fragment => "f",
                uxm_matching::MatchStrategy::Context => "c",
            },
            cap_paper,
            d.capacity(),
            o_paper,
            o_measured,
        );
    }
    out
}

/// Fig 9(a): compression ratio vs τ (D7, |M| = 100).
pub fn fig9a(cfg: &ReproConfig) -> String {
    let w = d7_workload(cfg.m, &default_config());
    let mut out = String::from("Fig 9(a) — compression ratio vs tau (D7)\n  tau   ratio\n");
    for tau in TAU_SWEEP {
        let tree = BlockTree::build(
            &w.dataset.matching.target,
            &w.mappings,
            &BlockTreeConfig {
                tau,
                ..default_config()
            },
        );
        let ratio = compression_ratio(&w.mappings, &tree);
        let _ = writeln!(out, "{:>5.2} {:>7.2}%", tau, ratio * 100.0);
    }
    out
}

/// Fig 9(b): number of c-blocks vs τ (D7, |M| = 100).
pub fn fig9b(cfg: &ReproConfig) -> String {
    let w = d7_workload(cfg.m, &default_config());
    let mut out = String::from("Fig 9(b) — #c-blocks vs tau (D7)\n  tau  blocks\n");
    for tau in TAU_SWEEP {
        let tree = BlockTree::build(
            &w.dataset.matching.target,
            &w.mappings,
            &BlockTreeConfig {
                tau,
                max_blocks: 5000,
                max_failures: 5000,
            },
        );
        let _ = writeln!(out, "{:>5.2} {:>7}", tau, tree.block_count());
    }
    out
}

/// Fig 9(c): distribution of c-block sizes (D7 defaults).
pub fn fig9c(cfg: &ReproConfig) -> String {
    let w = d7_workload(cfg.m, &default_config());
    let hist = block_size_histogram(&w.tree);
    let target = &w.dataset.matching.target;
    let mut out =
        String::from("Fig 9(c) — c-block size distribution (D7)\n  size  frac-of-T  count\n");
    for (size, &count) in hist.iter().enumerate() {
        if count > 0 {
            let _ = writeln!(
                out,
                "{:>5} {:>9.3} {:>6}",
                size,
                size as f64 / target.len() as f64,
                count
            );
        }
    }
    let _ = writeln!(
        out,
        "blocks: {}   avg size: {:.2}   largest covers {:.1}% of target nodes",
        w.tree.block_count(),
        avg_block_size(&w.tree),
        max_block_coverage(&w.tree, target) * 100.0
    );
    let multi = w.tree.blocks().iter().filter(|b| b.len() > 1).count();
    let _ = writeln!(
        out,
        "blocks larger than one correspondence: {:.0}%",
        100.0 * multi as f64 / w.tree.block_count().max(1) as f64
    );
    out
}

/// Fig 9(d): block-tree construction time per dataset, |M| ∈ {100, 200}.
pub fn fig9d(cfg: &ReproConfig) -> String {
    let mut out = String::from("Fig 9(d) — construction time Tc (s)\n  ID    |M|=100   |M|=200\n");
    for id in DatasetId::all() {
        let d = Dataset::load(id);
        let mut cells = Vec::new();
        for m in [100usize, 200] {
            let pm = PossibleMappings::top_h(&d.matching, m);
            let tc = time_avg(cfg.runs, || {
                let tree = BlockTree::build(&d.matching.target, &pm, &default_config());
                let _ = uxm_core::compress::compress(&pm, &tree);
                std::hint::black_box(tree.block_count());
            });
            cells.push(tc);
        }
        let _ = writeln!(out, "{:<5} {:>8.4} {:>9.4}", id.name(), cells[0], cells[1]);
    }
    out
}

/// Fig 9(e): construction time vs MAX_B (D7).
pub fn fig9e(cfg: &ReproConfig) -> String {
    let d = Dataset::load(DatasetId::D7);
    let pm = PossibleMappings::top_h(&d.matching, cfg.m);
    let mut out = String::from("Fig 9(e) — Tc vs MAX_B (D7)\n  MAX_B      Tc(s)  blocks\n");
    for max_b in [20, 60, 100, 160, 200, 260, 300] {
        let config = BlockTreeConfig {
            max_blocks: max_b,
            ..default_config()
        };
        let mut blocks = 0;
        let tc = time_avg(cfg.runs, || {
            let tree = BlockTree::build(&d.matching.target, &pm, &config);
            blocks = tree.block_count();
        });
        let _ = writeln!(out, "{:>7} {:>10.4} {:>7}", max_b, tc, blocks);
    }
    out
}

/// Fig 9(f) / Fig 10(a): per-query time, basic vs block-tree, plus the
/// warm `QueryEngine` session (one session serving the repeated queries —
/// the reproduction's service-layer extension).
#[allow(deprecated)] // measures the legacy one-shot paths on purpose
pub fn fig9f_10a(cfg: &ReproConfig, m: usize) -> String {
    let w = d7_workload(m, &default_config());
    let engine = w.engine();
    let queries = paper_queries();
    let engine_queries: Vec<Query> = queries
        .iter()
        .map(|q| Query::ptq(q.clone()).with_evaluator(EvaluatorHint::BlockTree))
        .collect();
    let mut out = format!(
        "Fig {} — query time Tq (s), |M| = {m}\n  Q     basic  block-tree   speedup  engine(warm)\n",
        if m <= DEFAULT_M { "9(f)" } else { "10(a)" }
    );
    let mut total_basic = 0.0;
    let mut total_tree = 0.0;
    let mut total_engine = 0.0;
    for (i, q) in queries.iter().enumerate() {
        let tb = time_avg(cfg.runs, || {
            std::hint::black_box(ptq_basic(q, &w.mappings, &w.doc).len());
        });
        let tt = time_avg(cfg.runs, || {
            std::hint::black_box(ptq_with_tree(q, &w.mappings, &w.doc, &w.tree).len());
        });
        // Warm the session caches, then time cache-served evaluation
        // through the unified entry point.
        std::hint::black_box(engine.run(&engine_queries[i]).expect("valid query").len());
        let te = time_avg(cfg.runs, || {
            std::hint::black_box(engine.run(&engine_queries[i]).expect("valid query").len());
        });
        total_basic += tb;
        total_tree += tt;
        total_engine += te;
        let _ = writeln!(
            out,
            "  Q{:<3} {:>7.4} {:>10.4} {:>8.1}% {:>12.4}",
            i + 1,
            tb,
            tt,
            (1.0 - tt / tb) * 100.0,
            te
        );
    }
    let _ = writeln!(
        out,
        "  avg  {:>7.4} {:>10.4} {:>8.1}% {:>12.4}",
        total_basic / 10.0,
        total_tree / 10.0,
        (1.0 - total_tree / total_basic) * 100.0,
        total_engine / 10.0
    );
    out
}

/// Fig 10(b): Q10 time vs τ (block-tree algorithm).
#[allow(deprecated)] // measures the legacy one-shot path on purpose
pub fn fig10b(cfg: &ReproConfig) -> String {
    let w = d7_workload(cfg.m, &default_config());
    let q10 = &paper_queries()[9];
    let mut out = String::from("Fig 10(b) — Tq vs tau (D7, Q10, block-tree)\n  tau      Tq(s)\n");
    for tau in [0.02, 0.12, 0.22, 0.32, 0.42, 0.52, 0.65] {
        let tree = BlockTree::build(
            &w.dataset.matching.target,
            &w.mappings,
            &BlockTreeConfig {
                tau,
                ..default_config()
            },
        );
        let tq = time_avg(cfg.runs, || {
            std::hint::black_box(ptq_with_tree(q10, &w.mappings, &w.doc, &tree).len());
        });
        let _ = writeln!(out, "{:>5.2} {:>10.4}", tau, tq);
    }
    out
}

/// Fig 10(c): Q10 time vs |M|, basic vs block-tree.
#[allow(deprecated)] // measures the legacy one-shot paths on purpose
pub fn fig10c(cfg: &ReproConfig) -> String {
    let q10 = &paper_queries()[9];
    let mut out = String::from("Fig 10(c) — Tq vs |M| (D7, Q10)\n   |M|    basic  block-tree\n");
    for m in [30, 50, 70, 100, 140, 200] {
        let w = d7_workload(m, &default_config());
        let tb = time_avg(cfg.runs, || {
            std::hint::black_box(ptq_basic(q10, &w.mappings, &w.doc).len());
        });
        let tt = time_avg(cfg.runs, || {
            std::hint::black_box(ptq_with_tree(q10, &w.mappings, &w.doc, &w.tree).len());
        });
        let _ = writeln!(out, "{:>6} {:>8.4} {:>10.4}", m, tb, tt);
    }
    out
}

/// Fig 10(d): top-k PTQ time vs k (D7, Q10).
#[allow(deprecated)] // measures the legacy one-shot paths on purpose
pub fn fig10d(cfg: &ReproConfig) -> String {
    let w = d7_workload(cfg.m, &default_config());
    let q10 = &paper_queries()[9];
    let normal = time_avg(cfg.runs, || {
        std::hint::black_box(ptq_with_tree(q10, &w.mappings, &w.doc, &w.tree).len());
    });
    let mut out = String::from("Fig 10(d) — top-k PTQ vs k (D7, Q10)\n    k     top-k    normal\n");
    for k in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let tk = time_avg(cfg.runs, || {
            std::hint::black_box(topk_ptq(q10, &w.mappings, &w.doc, &w.tree, k).len());
        });
        let _ = writeln!(out, "{:>5} {:>9.4} {:>9.4}", k, tk, normal);
    }
    out
}

/// Fig 10(e): top-h generation time per dataset, murty vs partition
/// (h = 100). Also reports the partition count, which the paper cites
/// (23 for D3 up to 966 for D7).
pub fn fig10e(cfg: &ReproConfig) -> String {
    let mut out = String::from(
        "Fig 10(e) — generation time Tg (s), h = 100\n  ID     murty  partition  #parts   improve\n",
    );
    for id in DatasetId::all() {
        let d = Dataset::load(id);
        let parts = partition(&d.matching).len();
        let tm = time_avg(cfg.runs.min(3), || {
            std::hint::black_box(
                murty_top_h_mappings(&d.matching, 100, RankVariant::PascoalLazy).len(),
            );
        });
        let tp = time_avg(cfg.runs.min(3), || {
            std::hint::black_box(
                partition_top_h_with(&d.matching, 100, RankVariant::PascoalLazy).len(),
            );
        });
        let _ = writeln!(
            out,
            "{:<5} {:>8.4} {:>10.4} {:>7} {:>8.1}%",
            id.name(),
            tm,
            tp,
            parts,
            (1.0 - tp / tm) * 100.0
        );
    }
    out
}

/// Fig 10(f): generation time vs h on D1, murty vs partition.
pub fn fig10f(cfg: &ReproConfig) -> String {
    let d = Dataset::load(DatasetId::D1);
    let mut out = String::from("Fig 10(f) — Tg vs h (D1)\n     h     murty  partition   improve\n");
    for h in [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
        let tm = time_avg(cfg.runs.min(3), || {
            std::hint::black_box(
                murty_top_h_mappings(&d.matching, h, RankVariant::PascoalLazy).len(),
            );
        });
        let tp = time_avg(cfg.runs.min(3), || {
            std::hint::black_box(
                partition_top_h_with(&d.matching, h, RankVariant::PascoalLazy).len(),
            );
        });
        let _ = writeln!(
            out,
            "{:>6} {:>9.4} {:>10.4} {:>9.1}%",
            h,
            tm,
            tp,
            (1.0 - tp / tm) * 100.0
        );
    }
    out
}

/// Serving-layer throughput (the reproduction's concurrency extension):
/// the paper's 10-query workload served from ONE shared warm
/// [`uxm_core::engine::QueryEngine`] by 1..=8 client threads, plus the
/// [`uxm_core::registry::EngineRegistry`] batch path over the same
/// requests. The throughput column is the serving metric: the engine is
/// `Send + Sync` with sharded caches, so warm-cache queries scale with
/// clients instead of serializing on a session lock. The speedup ceiling
/// is `available_parallelism` — on a single-core host every row sits
/// near 1.0x by construction.
pub fn serve(cfg: &ReproConfig) -> String {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use uxm_core::registry::{BatchQuery, EngineRegistry};

    let w = d7_workload(cfg.m, &default_config());
    let engine = std::sync::Arc::new(w.engine());
    let queries: Vec<Query> = paper_queries()
        .iter()
        .map(|q| Query::ptq(q.clone()).with_evaluator(EvaluatorHint::BlockTree))
        .collect();
    // Warm every cache once so we measure serving, not first-touch.
    for q in &queries {
        std::hint::black_box(engine.run(q).expect("valid query").len());
    }

    let rounds = cfg.runs.max(1) * 20;
    let total = rounds * queries.len();
    let mut out = format!(
        "Serve — concurrent throughput (D7, |M| = {}, warm engine, {} requests of the 10-query mix)\n  \
         clients     wall(s)   throughput(q/s)   speedup\n",
        cfg.m, total
    );

    let mut base_qps = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let next = AtomicUsize::new(0);
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    std::hint::black_box(
                        engine
                            .run(&queries[i % queries.len()])
                            .expect("valid query")
                            .len(),
                    );
                });
            }
        });
        let wall = start.elapsed().as_secs_f64();
        let qps = total as f64 / wall;
        if threads == 1 {
            base_qps = qps;
        }
        let _ = writeln!(
            out,
            "  {threads:<9} {wall:>9.4} {qps:>17.0} {:>8.2}x",
            qps / base_qps
        );
    }

    // The registry batch path over the same request mix (its internal
    // fan-out uses the `parallel` feature when enabled).
    let registry = EngineRegistry::new();
    registry.insert("d7", w.engine());
    let batch: Vec<BatchQuery> = (0..total)
        .map(|i| BatchQuery::new("d7", queries[i % queries.len()].clone()))
        .collect();
    std::hint::black_box(registry.batch(&batch[..queries.len()])); // warm
    let start = std::time::Instant::now();
    let answers = registry.batch(&batch);
    let wall = start.elapsed().as_secs_f64();
    assert!(answers.iter().all(Result::is_ok));
    let qps = total as f64 / wall;
    let _ = writeln!(
        out,
        "  {:<9} {wall:>9.4} {qps:>17.0} {:>8.2}x",
        "batch",
        qps / base_qps
    );
    out
}

/// The closed-loop HTTP load experiment behind `BENCH_serve.json`: all
/// ten Table II datasets live behind one [`uxm_core::registry::EngineRegistry`]
/// served by [`uxm_core::server::Server`] on a loopback socket, and 8
/// persistent-connection clients drive the 100-request mix (10 paper
/// queries × 10 datasets) closed-loop while the worker count sweeps
/// 1 → 8. Client-observed latency (p50/p99) and throughput per worker
/// count are printed and written to `BENCH_serve.json` (canonical
/// JSON). The registry is shared across rounds, so every round after
/// the warmup measures warm-cache serving — the service scenario. As
/// with [`serve`], the speedup ceiling is `available_parallelism`: on
/// a single-core host throughput sits near 1.0x by construction and
/// the worker sweep shows up in tail latency (p99) instead.
pub fn serve_http(cfg: &ReproConfig) -> String {
    use std::sync::Arc;
    use uxm_core::registry::EngineRegistry;
    use uxm_core::server::{Client, Server, ServerConfig};

    let registry = Arc::new(EngineRegistry::new());
    let mix: Vec<(String, String)> = DatasetId::all()
        .into_iter()
        .flat_map(|id| {
            let w = workload_for(id, cfg.m, &default_config());
            registry.insert(id.name(), w.engine());
            paper_queries().into_iter().map(move |q| {
                let query = Query::ptq(q);
                (format!("/query/{}", id.name()), query.to_json_string())
            })
        })
        .collect();

    const CLIENTS: usize = 8;
    // ~4×runs passes over the whole mix, split evenly across clients.
    let per_client = (cfg.runs.max(1) * 4 * mix.len()).div_ceil(CLIENTS);
    let total = per_client * CLIENTS;
    let mut out = format!(
        "BENCH_serve — closed-loop HTTP serving (10 datasets × 10 queries, |M| = {}, \
         {CLIENTS} clients, {total} requests per point)\n  \
         workers     wall(s)   throughput(q/s)   p50(µs)   p99(µs)   speedup\n",
        cfg.m
    );

    let mut rows = Vec::new();
    let mut base_qps = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let server = Server::bind(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let addr = server.local_addr();
        let handle = server.start();

        // Warm every (engine, query) pair once so each worker-count
        // round measures steady-state serving, not first-touch rewrites.
        {
            let mut warm = Client::connect(addr).expect("warm client");
            for (path, body) in &mix {
                let (status, response) = warm.post(path, body).expect("warm request");
                assert_eq!(status, 200, "warmup failed: {response}");
            }
        }

        let start = std::time::Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let mix = &mix;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("client connect");
                        let mut observed = Vec::with_capacity(per_client);
                        for i in 0..per_client {
                            let (path, body) = &mix[(c + i) % mix.len()];
                            let sent = std::time::Instant::now();
                            let (status, response) = client.post(path, body).expect("request");
                            assert_eq!(status, 200, "{response}");
                            observed.push(sent.elapsed().as_micros() as u64);
                        }
                        observed
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        let wall = start.elapsed().as_secs_f64();
        handle.shutdown();

        latencies.sort_unstable();
        let pct = |p: f64| {
            latencies[((p / 100.0 * latencies.len() as f64).ceil() as usize)
                .clamp(1, latencies.len())
                - 1]
        };
        let (p50, p99) = (pct(50.0), pct(99.0));
        let qps = latencies.len() as f64 / wall;
        if workers == 1 {
            base_qps = qps;
        }
        let _ = writeln!(
            out,
            "  {workers:<9} {wall:>9.4} {qps:>17.0} {p50:>9} {p99:>9} {:>8.2}x",
            qps / base_qps
        );
        rows.push(Json::Obj(vec![
            ("p50_us".into(), Json::uint(p50)),
            ("p99_us".into(), Json::uint(p99)),
            ("requests".into(), Json::uint(latencies.len() as u64)),
            ("throughput_qps".into(), Json::Num(qps)),
            ("wall_s".into(), Json::Num(wall)),
            ("workers".into(), Json::uint(workers as u64)),
        ]));
    }

    let report = Json::Obj(vec![
        ("clients".into(), Json::uint(CLIENTS as u64)),
        ("datasets".into(), Json::uint(10)),
        ("m".into(), Json::uint(cfg.m as u64)),
        ("queries_per_dataset".into(), Json::uint(10)),
        ("rounds".into(), Json::Arr(rows)),
    ]);
    let path = "BENCH_serve.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    out
}

/// Ablations for the design choices called out in DESIGN.md §6.
pub fn ablation(cfg: &ReproConfig) -> String {
    use uxm_twig::structural_join::{nested_loop_join, structural_join};
    use uxm_twig::Axis;

    let mut out = String::from("Ablations\n");

    // 1. Eager Murty vs Pascoal lazy evaluation (D4, h = 200).
    let d = Dataset::load(DatasetId::D4);
    let te = time_avg(cfg.runs.min(3), || {
        std::hint::black_box(murty_top_h_mappings(&d.matching, 200, RankVariant::MurtyEager).len());
    });
    let tl = time_avg(cfg.runs.min(3), || {
        std::hint::black_box(
            murty_top_h_mappings(&d.matching, 200, RankVariant::PascoalLazy).len(),
        );
    });
    let _ = writeln!(
        out,
        "  murty eager vs lazy (D4, h=200): {te:.4}s vs {tl:.4}s ({:+.1}%)",
        (1.0 - tl / te) * 100.0
    );

    // 2. Lazy heap merge vs eager product merge.
    {
        use uxm_assignment::merge::{merge_top_h, merge_top_h_eager, RankedMapping};
        let mk = |n: usize| -> Vec<RankedMapping> {
            (0..n)
                .map(|i| RankedMapping {
                    pairs: vec![],
                    score: 1.0 / (i + 1) as f64,
                })
                .collect()
        };
        let (a, b) = (mk(1000), mk(1000));
        let t_lazy = time_avg(cfg.runs, || {
            std::hint::black_box(merge_top_h(&a, &b, 1000).len());
        });
        let t_eager = time_avg(cfg.runs, || {
            std::hint::black_box(merge_top_h_eager(&a, &b, 1000).len());
        });
        let _ = writeln!(
            out,
            "  merge lazy vs eager (1000x1000, h=1000): {t_lazy:.4}s vs {t_eager:.4}s"
        );
    }

    // 3. Stack-based structural join vs nested loop, on the two most
    //    frequent document labels (the hot case in Algorithm 4).
    {
        let w = d7_workload(10, &default_config());
        let doc = &w.doc;
        let root = doc.root();
        let mut by_freq: Vec<(usize, String)> = (0..doc.label_count() as u32)
            .map(uxm_xml::LabelId)
            .map(|l| {
                (
                    doc.nodes_with_label_id(l).len(),
                    doc.label_name(l).to_string(),
                )
            })
            .collect();
        by_freq.sort_by_key(|x| std::cmp::Reverse(x.0));
        let a: Vec<_> = std::iter::once(root)
            .chain(doc.children(root).iter().copied())
            .collect();
        let b: Vec<_> = doc.nodes_with_label(&by_freq[0].1).to_vec();
        let t_stack = time_avg(cfg.runs * 10, || {
            std::hint::black_box(structural_join(doc, &a, &b, Axis::Descendant).len());
        });
        let t_nested = time_avg(cfg.runs * 10, || {
            std::hint::black_box(nested_loop_join(doc, &a, &b, Axis::Descendant).len());
        });
        let _ = writeln!(
            out,
            "  structural join stack vs nested-loop ({}x{}): {t_stack:.6}s vs {t_nested:.6}s",
            a.len(),
            b.len()
        );
    }

    // 4. Block-tree construction with Lemma 2 pruning statistics.
    {
        let w = d7_workload(DEFAULT_M, &default_config());
        let _ = writeln!(
            out,
            "  lemma-2 skips during D7 build: {} (of {} target nodes)",
            w.tree.stats.lemma2_skips,
            w.dataset.matching.target.len()
        );
    }
    out
}

/// The planner benchmark behind `BENCH_query.json`: for every Table II
/// dataset, the paper's 10-query workload served by one warm
/// [`uxm_core::engine::QueryEngine`] through the unified
/// `QueryEngine::run` entry point — once with the auto plan, once pinned
/// to each evaluator — so the performance trajectory of the planner is
/// recorded machine-readably. Writes `BENCH_query.json` (canonical
/// JSON, see `uxm_core::json`) into the current directory and returns a
/// printable summary.
pub fn bench_query(cfg: &ReproConfig) -> String {
    let queries = paper_queries();
    let hints = [
        ("auto", EvaluatorHint::Auto),
        ("naive", EvaluatorHint::Naive),
        ("block_tree", EvaluatorHint::BlockTree),
    ];
    let mut out = format!(
        "BENCH_query — per-dataset 10-query latency (s), |M| = {}, warm engine\n  \
         ID       auto     naive  block-tree   auto plans\n",
        cfg.m
    );
    let mut rows = Vec::new();
    for id in DatasetId::all() {
        let w = workload_for(id, cfg.m, &default_config());
        let engine = w.engine();
        let mut cells: Vec<(&str, f64)> = Vec::new();
        let mut auto_naive = 0usize;
        let mut auto_tree = 0usize;
        let mut auto_compiled = 0usize;
        for (name, hint) in hints {
            let pinned: Vec<Query> = queries
                .iter()
                .map(|q| Query::ptq(q.clone()).with_evaluator(hint))
                .collect();
            // One warming pass (caches are shared engine-wide, so every
            // hint is measured equally warm), then — for the auto row — a
            // plan census in the SAME warm state the timed runs see (the
            // planner may pick differently cold vs warm), then the timed
            // runs.
            for q in &pinned {
                std::hint::black_box(engine.run(q).expect("valid query").len());
            }
            if hint == EvaluatorHint::Auto {
                for q in &pinned {
                    match engine.run(q).expect("valid query").stats.plan.evaluator {
                        Evaluator::Naive => auto_naive += 1,
                        Evaluator::BlockTree => auto_tree += 1,
                        Evaluator::Compiled => auto_compiled += 1,
                    }
                }
            }
            let t = time_avg(cfg.runs, || {
                for q in &pinned {
                    std::hint::black_box(engine.run(q).expect("valid query").len());
                }
            });
            cells.push((name, t));
        }
        let _ = writeln!(
            out,
            "  {:<5} {:>8.4} {:>9.4} {:>11.4}   {}x tree, {}x compiled, {}x naive",
            id.name(),
            cells[0].1,
            cells[1].1,
            cells[2].1,
            auto_tree,
            auto_compiled,
            auto_naive,
        );
        rows.push(Json::Obj(vec![
            (
                "auto_plans".into(),
                Json::Obj(vec![
                    ("block_tree".into(), Json::uint(auto_tree as u64)),
                    ("compiled".into(), Json::uint(auto_compiled as u64)),
                    ("naive".into(), Json::uint(auto_naive as u64)),
                ]),
            ),
            ("id".into(), Json::str(id.name())),
            (
                "latency_s".into(),
                Json::Obj(
                    cells
                        .iter()
                        .map(|&(n, t)| (n.into(), Json::Num(t)))
                        .collect(),
                ),
            ),
        ]));
    }
    let report = Json::Obj(vec![
        ("datasets".into(), Json::Arr(rows)),
        ("m".into(), Json::uint(cfg.m as u64)),
        ("queries".into(), Json::uint(queries.len() as u64)),
        ("runs".into(), Json::uint(cfg.runs as u64)),
    ]);
    let path = "BENCH_query.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    out
}

/// The columnar-layout benchmark behind `BENCH_layout.json`: for every
/// Table II dataset plus one 200k-node `corpus` document (the soak
/// schema family, bigger than any paper dataset), the engine's resident
/// per-component footprint, the v1/v2/v3 snapshot sizes, hydration
/// (decode) latency for all three versions, and the warm 10-query
/// latency through the unified `QueryEngine::run` path. Writes
/// `BENCH_layout.json` (canonical JSON) into the current directory and
/// returns a printable summary. With [`ReproConfig::assert_hydration`]
/// the run exits nonzero unless v3 cold hydration beats v2 on the
/// `corpus` row — the `soak-smoke` CI latency gate.
pub fn bench_layout(cfg: &ReproConfig) -> String {
    use uxm_core::storage::{
        decode_engine_snapshot, encode_engine_snapshot, encode_engine_snapshot_v1,
        encode_engine_snapshot_v2,
    };
    /// Nodes in the `corpus` row's single large document.
    const CORPUS_NODES: usize = 200_000;
    let queries = paper_queries();
    let mut out = format!(
        "BENCH_layout — columnar arena + page-aligned snapshot v3, |M| = {}\n  \
         ID      resident     v2 bytes   v3 bytes   v3/v2   hydr v1   hydr v2   hydr v3   v2/v3   warm 10q\n",
        cfg.m
    );
    let mut rows = Vec::new();
    let mut corpus_hydrate = None;
    let engines = DatasetId::all()
        .into_iter()
        .map(|id| {
            let w = workload_for(id, cfg.m, &default_config());
            (id.name().to_string(), w.engine())
        })
        .chain(std::iter::once((
            "corpus".to_string(),
            crate::soak::corpus_engine(CORPUS_NODES),
        )));
    for (name, engine) in engines {
        let v1 = encode_engine_snapshot_v1(&engine);
        let v2 = encode_engine_snapshot_v2(&engine);
        let v3 = encode_engine_snapshot(&engine);
        let hydrate = |bytes: &[u8]| {
            time_avg(cfg.runs, || {
                std::hint::black_box(
                    decode_engine_snapshot(bytes)
                        .expect("snapshot decodes")
                        .approx_bytes(),
                );
            })
        };
        let hydrate_v1 = hydrate(&v1);
        let hydrate_v2 = hydrate(&v2);
        let hydrate_v3 = hydrate(&v3);
        if name == "corpus" {
            corpus_hydrate = Some((hydrate_v2, hydrate_v3));
        }
        let fp = engine.footprint();
        let typed: Vec<Query> = queries.iter().map(|q| Query::ptq(q.clone())).collect();
        for q in &typed {
            std::hint::black_box(engine.run(q).expect("valid query").len());
        }
        let warm = time_avg(cfg.runs, || {
            for q in &typed {
                std::hint::black_box(engine.run(q).expect("valid query").len());
            }
        });
        let _ = writeln!(
            out,
            "  {:<6} {:>9} B {:>10} {:>10} {:>7.2} {:>8.4}s {:>8.4}s {:>8.4}s {:>7.2}x {:>9.4}s",
            name,
            fp.total(),
            v2.len(),
            v3.len(),
            v3.len() as f64 / v2.len() as f64,
            hydrate_v1,
            hydrate_v2,
            hydrate_v3,
            hydrate_v2 / hydrate_v3.max(1e-12),
            warm,
        );
        rows.push(Json::Obj(vec![
            (
                "hydrate_s".into(),
                Json::Obj(vec![
                    ("v1".into(), Json::Num(hydrate_v1)),
                    ("v2".into(), Json::Num(hydrate_v2)),
                    ("v3".into(), Json::Num(hydrate_v3)),
                ]),
            ),
            ("id".into(), Json::str(&name)),
            (
                "resident_bytes".into(),
                Json::Obj(vec![
                    ("block_tree".into(), Json::uint(fp.block_tree as u64)),
                    ("document".into(), Json::uint(fp.document as u64)),
                    ("mappings".into(), Json::uint(fp.mappings as u64)),
                    ("path_index".into(), Json::uint(fp.path_index as u64)),
                    ("schemas".into(), Json::uint(fp.schemas as u64)),
                    ("session".into(), Json::uint(fp.session as u64)),
                    ("total".into(), Json::uint(fp.total() as u64)),
                ]),
            ),
            (
                "snapshot_bytes".into(),
                Json::Obj(vec![
                    ("v1".into(), Json::uint(v1.len() as u64)),
                    ("v2".into(), Json::uint(v2.len() as u64)),
                    ("v3".into(), Json::uint(v3.len() as u64)),
                ]),
            ),
            ("warm_query_s".into(), Json::Num(warm)),
        ]));
    }
    let report = Json::Obj(vec![
        ("datasets".into(), Json::Arr(rows)),
        ("m".into(), Json::uint(cfg.m as u64)),
        ("queries".into(), Json::uint(queries.len() as u64)),
        ("runs".into(), Json::uint(cfg.runs as u64)),
    ]);
    let path = "BENCH_layout.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    if cfg.assert_hydration {
        let (v2_s, v3_s) = corpus_hydrate.expect("corpus row ran");
        if v3_s < v2_s {
            let _ = writeln!(
                out,
                "hydration gate PASS: corpus v3 {:.4}s < v2 {:.4}s ({:.2}x)",
                v3_s,
                v2_s,
                v2_s / v3_s.max(1e-12),
            );
        } else {
            println!("{out}");
            eprintln!("hydration gate FAIL: corpus v3 {v3_s:.4}s >= v2 {v2_s:.4}s");
            std::process::exit(1);
        }
    }
    out
}

/// The compiled-execution benchmark behind `BENCH_exec.json`: for every
/// Table II dataset, the paper's 10-query workload pinned to each
/// backend (compiled bytecode VM vs the two recursive evaluators) on
/// one warm engine — plus an **amortization curve** on D4: cumulative
/// workload latency over repeated runs for compiled (cold compile on
/// run 1, program-cache replays after) against the naive recursive
/// evaluator, showing where compile cost breaks even. Writes
/// `BENCH_exec.json` (canonical JSON, see `uxm_core::json`) into the
/// current directory and returns a printable summary.
pub fn bench_exec(cfg: &ReproConfig) -> String {
    let queries = paper_queries();
    let hints = [
        ("compiled", EvaluatorHint::Compiled),
        ("naive", EvaluatorHint::Naive),
        ("block_tree", EvaluatorHint::BlockTree),
    ];
    let mut out = format!(
        "BENCH_exec — per-dataset 10-query latency (s), |M| = {}, warm engine\n  \
         ID     compiled     naive  block-tree   vs best recursive\n",
        cfg.m
    );
    let mut rows = Vec::new();
    let mut compiled_wins = 0usize;
    for id in DatasetId::all() {
        let w = workload_for(id, cfg.m, &default_config());
        let engine = w.engine();
        let pinned: Vec<(&str, Vec<Query>)> = hints
            .iter()
            .map(|&(name, hint)| {
                let qs = queries
                    .iter()
                    .map(|q| Query::ptq(q.clone()).with_evaluator(hint))
                    .collect();
                (name, qs)
            })
            .collect();
        // Warm every backend before timing any of them, so each row runs
        // against equally hot data: the compiled row measures program-cache
        // replays, the recursive rows warm rewrite caches, and no backend
        // pays the fresh engine's first-touch page faults inside its timing.
        for (_, qs) in &pinned {
            for q in qs {
                std::hint::black_box(engine.run(q).expect("valid query").len());
            }
        }
        // Interleave the timed repetitions and keep the per-backend
        // minimum — at the microsecond scale of the small datasets one
        // scheduler blip would otherwise decide the row. Each timed call
        // runs the workload `INNER` times so the timer itself stays
        // below the noise floor.
        const INNER: usize = 16;
        let mut cells: Vec<(&str, f64)> = pinned.iter().map(|&(n, _)| (n, f64::MAX)).collect();
        for _ in 0..3 {
            for (cell, (_, qs)) in cells.iter_mut().zip(&pinned) {
                let t = time_avg(cfg.runs, || {
                    for _ in 0..INNER {
                        for q in qs {
                            std::hint::black_box(engine.run(q).expect("valid query").len());
                        }
                    }
                });
                cell.1 = cell.1.min(t / INNER as f64);
            }
        }
        let best_recursive = cells[1].1.min(cells[2].1);
        let wins = cells[0].1 <= best_recursive;
        compiled_wins += wins as usize;
        let cache = engine.exec_cache_stats();
        let _ = writeln!(
            out,
            "  {:<5} {:>8.4} {:>9.4} {:>11.4}   {:.2}x {}",
            id.name(),
            cells[0].1,
            cells[1].1,
            cells[2].1,
            best_recursive / cells[0].1.max(1e-12),
            if wins { "(compiled wins)" } else { "" },
        );
        rows.push(Json::Obj(vec![
            ("compiled_wins".into(), Json::Bool(wins)),
            ("id".into(), Json::str(id.name())),
            (
                "latency_s".into(),
                Json::Obj({
                    let mut by_key: Vec<(String, Json)> = cells
                        .iter()
                        .map(|&(n, t)| (n.into(), Json::Num(t)))
                        .collect();
                    by_key.sort_by(|a, b| a.0.cmp(&b.0));
                    by_key
                }),
            ),
            (
                "program_cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::uint(cache.hits)),
                    ("misses".into(), Json::uint(cache.misses)),
                ]),
            ),
        ]));
    }
    let _ = writeln!(
        out,
        "  compiled ≤ best recursive on {compiled_wins}/10 datasets"
    );

    // Amortization: cumulative cost of run n on fresh engines — run 1
    // pays the compile (or the recursive evaluator's cold caches), later
    // runs replay. Separate engines per backend so neither measurement
    // inherits the other's warmed shared caches.
    let checkpoints = [1usize, 2, 5, 10, 20, 50];
    let amort_id = DatasetId::D7;
    let mut curves = Vec::new();
    let mut curve_text = String::new();
    for (name, hint) in [
        ("compiled", EvaluatorHint::Compiled),
        ("naive", EvaluatorHint::Naive),
    ] {
        let w = workload_for(amort_id, cfg.m, &default_config());
        let engine = w.engine();
        let pinned: Vec<Query> = queries
            .iter()
            .map(|q| Query::ptq(q.clone()).with_evaluator(hint))
            .collect();
        let mut cumulative = 0.0f64;
        let mut points = Vec::new();
        let mut done = 0usize;
        for &n in &checkpoints {
            let start = std::time::Instant::now();
            for _ in done..n {
                for q in &pinned {
                    std::hint::black_box(engine.run(q).expect("valid query").len());
                }
            }
            cumulative += start.elapsed().as_secs_f64();
            done = n;
            points.push(Json::Num(cumulative));
        }
        let _ = write!(curve_text, "  {name:<9}");
        for (i, p) in points.iter().enumerate() {
            if let Json::Num(t) = p {
                let _ = write!(curve_text, " n={:<3} {:>8.4}", checkpoints[i], t);
            }
        }
        curve_text.push('\n');
        curves.push((name.to_string(), Json::Arr(points)));
    }
    let _ = writeln!(
        out,
        "  amortization on {} (cumulative s, cold engines):\n{}",
        amort_id.name(),
        curve_text.trim_end(),
    );

    let report = Json::Obj(vec![
        (
            "amortization".into(),
            Json::Obj(vec![
                (
                    "checkpoints".into(),
                    Json::Arr(checkpoints.iter().map(|&n| Json::uint(n as u64)).collect()),
                ),
                ("cumulative_s".into(), Json::Obj(curves)),
                ("dataset".into(), Json::str(amort_id.name())),
            ]),
        ),
        ("compiled_wins".into(), Json::uint(compiled_wins as u64)),
        ("datasets".into(), Json::Arr(rows)),
        ("m".into(), Json::uint(cfg.m as u64)),
        ("queries".into(), Json::uint(queries.len() as u64)),
        ("runs".into(), Json::uint(cfg.runs as u64)),
    ]);
    let path = "BENCH_exec.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    out
}

/// The predicate benchmark behind `BENCH_predicate.json`: a
/// **selectivity sweep** on D7 — numeric thresholds placed at the
/// quantiles of the document's numeric text values drive the match
/// fraction of `//*[.>=T]` from everything to nothing, and each point
/// is timed under the compiled bytecode backend and the naive
/// recursive evaluator on one warm engine. Also times the four
/// aggregate functions over the median-selectivity predicate. Writes
/// `BENCH_predicate.json` (canonical JSON) and returns a printable
/// summary.
pub fn bench_predicates(cfg: &ReproConfig) -> String {
    let w = workload_for(DatasetId::D7, cfg.m, &default_config());
    let engine = w.engine();
    let doc = engine.document();

    // Thresholds at the quantiles of the numeric text values, so the
    // sweep tracks the generated distribution instead of guessing it.
    let mut values: Vec<f64> = doc
        .ids()
        .filter_map(|n| doc.text(n))
        .filter_map(|t| t.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let quantile = |q: f64| -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values[((values.len() - 1) as f64 * q) as usize]
    };
    let points: Vec<(String, String)> = [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&q| {
            (
                format!("q{:02}", (q * 100.0) as u32),
                format!("//*[.>={}]", quantile(q)),
            )
        })
        .chain(std::iter::once((
            "none".to_string(),
            format!("//*[.>{}]", quantile(1.0)),
        )))
        .collect();

    // Baseline match volume (no predicate) for observed selectivity.
    let total: usize = engine
        .run(&Query::ptq(TwigPattern::parse("//*").expect("wildcard")))
        .expect("valid query")
        .answers
        .iter()
        .map(|a| a.matches.len())
        .sum();

    let mut out = format!(
        "BENCH_predicate — selectivity sweep on D7, |M| = {}, warm engine\n  \
         point   selectivity  compiled(s)  naive(s)\n",
        cfg.m
    );
    let mut rows = Vec::new();
    const INNER: usize = 8;
    for (name, form) in &points {
        let pattern = TwigPattern::parse(form).expect("sweep pattern");
        let matched: usize = engine
            .run(&Query::ptq(pattern.clone()))
            .expect("valid query")
            .answers
            .iter()
            .map(|a| a.matches.len())
            .sum();
        let selectivity = matched as f64 / (total.max(1)) as f64;
        let mut cells = [
            ("compiled", EvaluatorHint::Compiled, f64::MAX),
            ("naive", EvaluatorHint::Naive, f64::MAX),
        ];
        // Warm both backends, then interleave timed repetitions and keep
        // the minimum (same discipline as `bench_exec`).
        for (_, hint, _) in &cells {
            let q = Query::ptq(pattern.clone()).with_evaluator(*hint);
            std::hint::black_box(engine.run(&q).expect("valid query").len());
        }
        for _ in 0..3 {
            for (_, hint, best) in &mut cells {
                let q = Query::ptq(pattern.clone()).with_evaluator(*hint);
                let t = time_avg(cfg.runs, || {
                    for _ in 0..INNER {
                        std::hint::black_box(engine.run(&q).expect("valid query").len());
                    }
                });
                *best = best.min(t / INNER as f64);
            }
        }
        let _ = writeln!(
            out,
            "  {:<7} {:>10.3}   {:>9.5} {:>9.5}",
            name, selectivity, cells[0].2, cells[1].2,
        );
        rows.push(Json::Obj(vec![
            (
                "latency_s".into(),
                Json::Obj(vec![
                    ("compiled".into(), Json::Num(cells[0].2)),
                    ("naive".into(), Json::Num(cells[1].2)),
                ]),
            ),
            ("pattern".into(), Json::str(form)),
            ("point".into(), Json::str(name)),
            ("selectivity".into(), Json::Num(selectivity)),
        ]));
    }

    // Aggregates over the median-selectivity predicate: the fold rides
    // the same match stream, so the delta vs the plain PTQ is the
    // aggregation overhead.
    let median = TwigPattern::parse(&points[2].1).expect("median pattern");
    let mut agg_rows = Vec::new();
    let mut agg_text = String::new();
    for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
        let q = Query::aggregate(median.clone(), func);
        std::hint::black_box(engine.run(&q).expect("valid query").len());
        let t = time_avg(cfg.runs, || {
            for _ in 0..INNER {
                std::hint::black_box(engine.run(&q).expect("valid query").len());
            }
        }) / INNER as f64;
        let _ = write!(agg_text, " {func}={t:.5}s");
        agg_rows.push((func.wire_name().to_string(), Json::Num(t)));
    }
    let _ = writeln!(out, "  aggregates over {}:{agg_text}", points[2].1);

    let report = Json::Obj(vec![
        ("aggregate_latency_s".into(), Json::Obj(agg_rows)),
        ("dataset".into(), Json::str(DatasetId::D7.name())),
        ("m".into(), Json::uint(cfg.m as u64)),
        ("points".into(), Json::Arr(rows)),
        ("runs".into(), Json::uint(cfg.runs as u64)),
        ("total_matches".into(), Json::uint(total as u64)),
    ]);
    let path = "BENCH_predicate.json";
    match std::fs::write(path, format!("{report}\n")) {
        Ok(()) => {
            let _ = writeln!(out, "wrote {path}");
        }
        Err(e) => {
            let _ = writeln!(out, "could not write {path}: {e}");
        }
    }
    out
}

/// All experiment ids accepted by the `repro` binary.
pub const EXPERIMENTS: [&str; 22] = [
    "table2",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig9e",
    "fig9f",
    "fig10a",
    "fig10b",
    "fig10c",
    "fig10d",
    "fig10e",
    "fig10f",
    "serve",
    "serve-http",
    "bench_query",
    "bench_layout",
    "bench_exec",
    "bench_predicates",
    "ablation",
    "soak",
    "shard",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, cfg: &ReproConfig) -> Option<String> {
    Some(match id {
        "table2" => table2(cfg),
        "fig9a" => fig9a(cfg),
        "fig9b" => fig9b(cfg),
        "fig9c" => fig9c(cfg),
        "fig9d" => fig9d(cfg),
        "fig9e" => fig9e(cfg),
        "fig9f" => fig9f_10a(cfg, cfg.m),
        "fig10a" => fig9f_10a(cfg, 500),
        "fig10b" => fig10b(cfg),
        "fig10c" => fig10c(cfg),
        "fig10d" => fig10d(cfg),
        "fig10e" => fig10e(cfg),
        "fig10f" => fig10f(cfg),
        "serve" => serve(cfg),
        "serve-http" => serve_http(cfg),
        "bench_query" => bench_query(cfg),
        "bench_layout" => bench_layout(cfg),
        "bench_exec" => bench_exec(cfg),
        "bench_predicates" => bench_predicates(cfg),
        "ablation" => ablation(cfg),
        "soak" => crate::soak::soak(&cfg.soak),
        "shard" => crate::shard::shard_bench(&cfg.soak),
        _ => return None,
    })
}
