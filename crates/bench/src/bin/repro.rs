//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro all                  # every experiment
//! repro table2 fig9a         # selected experiments
//! repro --runs 10 fig9f      # more repetitions per data point
//! repro --duration 30 soak   # 30 s overload soak -> BENCH_soak.json
//! ```
//!
//! The `soak` experiment also honours `--docs`, `--nodes`, `--budget`,
//! `--clients`, `--seed`, and `--shards` (corpus/load shape; see
//! `uxm_bench::soak::SoakConfig`). `--shards N` puts the soak corpus
//! behind the consistent-hash router with `N` shard registries.
//! `--assert-hydration` makes `bench_layout` exit nonzero unless v3
//! cold hydration beats v2 on the 200k-node corpus document. The
//! `shard` experiment (scatter-gather work split + tail isolation,
//! writing `BENCH_shard.json`) shares the same corpus knobs and
//! compares 1 vs 4 shards itself.

use uxm_bench::figures::{run_experiment, ReproConfig, EXPERIMENTS};

fn main() {
    let mut cfg = ReproConfig::default();
    let mut requested: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                cfg.runs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--runs needs a positive integer"));
            }
            "--m" => {
                cfg.m = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--m needs a positive integer"));
            }
            "--duration" => {
                let secs: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--duration needs seconds"));
                cfg.soak.duration = std::time::Duration::from_secs(secs);
            }
            "--docs" => {
                cfg.soak.documents = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--docs needs a positive integer"));
            }
            "--nodes" => {
                cfg.soak.total_nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--nodes needs a positive integer"));
            }
            "--budget" => {
                cfg.soak.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--budget needs bytes (0 = auto)"));
            }
            "--clients" => {
                cfg.soak.clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--clients needs a positive integer"));
            }
            "--seed" => {
                cfg.soak.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--shards" => {
                cfg.soak.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--shards needs a count (0 = unsharded)"));
            }
            "--assert-hydration" => cfg.assert_hydration = true,
            "all" => requested.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--runs N] [--m N] \
                     [--duration S] [--docs N] [--nodes N] [--budget BYTES] \
                     [--clients N] [--seed N] [--shards N] [--assert-hydration] [all | {}]",
                    EXPERIMENTS.join(" | ")
                );
                return;
            }
            other => requested.push(other.to_string()),
        }
    }
    if requested.is_empty() {
        requested.extend(EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    println!(
        "uxm repro — Cheng/Gong/Cheung ICDE'10 evaluation ({} runs per point, |M|={})\n",
        cfg.runs, cfg.m
    );
    for id in requested {
        match run_experiment(&id, &cfg) {
            Some(output) => println!("{output}"),
            None => eprintln!("unknown experiment: {id} (see --help)"),
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
