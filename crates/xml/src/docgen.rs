//! Seeded generation of documents conforming to a schema.
//!
//! The paper's query workload runs against `Order.xml`, an XCBL sample with
//! 3 473 nodes. That file is not redistributable, so this module produces a
//! deterministic stand-in in two phases:
//!
//! 1. **Cover** — instantiate every schema element once (subject to the node
//!    budget), so every schema path occurs in the document.
//! 2. **Grow** — while under [`DocGenConfig::target_nodes`], pick a random
//!    `repeatable` schema element and add one more instance of its subtree
//!    under a randomly chosen existing parent instance, preferring parents
//!    below [`DocGenConfig::max_repeat`] instances.
//!
//! The intermediate tree is emitted into [`Document`] in pre-order at the
//! end, preserving the invariant that document ids are pre-order ranks.

use crate::document::Document;
use crate::ids::SchemaNodeId;
use crate::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Controls for [`Document::generate`].
#[derive(Clone, Debug)]
pub struct DocGenConfig {
    /// Stop growing once the document reaches this many nodes. The result
    /// may overshoot by up to one repeated subtree.
    pub target_nodes: usize,
    /// Soft cap on instances of a repeatable element under one parent;
    /// exceeded only when every candidate parent is saturated but the
    /// target size has not been reached.
    pub max_repeat: usize,
    /// Probability that a leaf element receives text content.
    pub text_prob: f64,
}

impl DocGenConfig {
    /// A small document for examples and unit tests (~tens of nodes).
    pub fn small() -> Self {
        DocGenConfig {
            target_nodes: 64,
            max_repeat: 2,
            text_prob: 1.0,
        }
    }

    /// Matches the paper's `Order.xml` scale (~3 473 nodes).
    pub fn order_xml() -> Self {
        DocGenConfig {
            target_nodes: 3473,
            max_repeat: 6,
            text_prob: 0.9,
        }
    }
}

impl Default for DocGenConfig {
    fn default() -> Self {
        DocGenConfig::small()
    }
}

/// Leaf-value vocabulary: contact names from the paper's running example
/// plus generic e-commerce values.
const NAMES: &[&str] = &[
    "Cathy", "Bob", "Alice", "Dave", "Erin", "Frank", "Grace", "Heidi",
];
const CITIES: &[&str] = &["HongKong", "London", "Berlin", "Tokyo", "Boston"];
const WORDS: &[&str] = &["widget", "gadget", "bolt", "nut", "flange", "bracket"];

/// Intermediate mutable instance tree (documents are append-in-preorder).
struct GenNode {
    schema: SchemaNodeId,
    children: Vec<usize>,
    text: Option<String>,
}

struct Gen<'a> {
    schema: &'a Schema,
    config: &'a DocGenConfig,
    rng: StdRng,
    nodes: Vec<GenNode>,
    /// For each schema node, the instance indices created for it.
    instances: Vec<Vec<usize>>,
}

impl Document {
    /// Generates a document conforming to `schema`, deterministically from
    /// `seed`. See the module docs for the two-phase strategy.
    pub fn generate(schema: &Schema, config: &DocGenConfig, seed: u64) -> Document {
        let mut gen = Gen {
            schema,
            config,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            instances: vec![Vec::new(); schema.len()],
        };
        gen.cover(schema.root(), None);
        gen.grow();
        gen.emit()
    }
}

impl<'a> Gen<'a> {
    /// Phase 1: one instance per schema element, depth-first, within budget.
    fn cover(&mut self, snode: SchemaNodeId, parent: Option<usize>) -> usize {
        let idx = self.new_instance(snode, parent);
        for &child in self.schema.children(snode) {
            if self.nodes.len() >= self.config.target_nodes {
                break;
            }
            self.cover(child, Some(idx));
        }
        idx
    }

    /// Phase 2: add subtree instances of repeatable elements until the
    /// target size is reached (or nothing can grow).
    fn grow(&mut self) {
        let repeatables: Vec<SchemaNodeId> = self
            .schema
            .ids()
            .filter(|&id| self.schema.node(id).repeatable && self.schema.parent(id).is_some())
            .collect();
        if repeatables.is_empty() {
            return;
        }
        while self.nodes.len() < self.config.target_nodes {
            let r = repeatables[self.rng.gen_range(0..repeatables.len())];
            let parent_schema = self.schema.parent(r).expect("repeatable root filtered out");
            let candidates = &self.instances[parent_schema.idx()];
            if candidates.is_empty() {
                continue;
            }
            // Prefer parents under the soft cap; fall back to any parent.
            let unsaturated: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&p| self.count_children_of_kind(p, r) < self.config.max_repeat)
                .collect();
            let parent = if unsaturated.is_empty() {
                candidates[self.rng.gen_range(0..candidates.len())]
            } else {
                unsaturated[self.rng.gen_range(0..unsaturated.len())]
            };
            self.instantiate_subtree(r, parent);
        }
    }

    fn count_children_of_kind(&self, parent: usize, kind: SchemaNodeId) -> usize {
        self.nodes[parent]
            .children
            .iter()
            .filter(|&&c| self.nodes[c].schema == kind)
            .count()
    }

    /// Instantiates the full subtree of `snode` under instance `parent`.
    fn instantiate_subtree(&mut self, snode: SchemaNodeId, parent: usize) {
        let idx = self.new_instance(snode, Some(parent));
        let children: Vec<SchemaNodeId> = self.schema.children(snode).to_vec();
        for child in children {
            self.instantiate_subtree(child, idx);
        }
    }

    fn new_instance(&mut self, snode: SchemaNodeId, parent: Option<usize>) -> usize {
        let idx = self.nodes.len();
        let text = if self.schema.is_leaf(snode) && self.rng.gen_bool(self.config.text_prob) {
            Some(leaf_value(self.schema.label(snode), &mut self.rng))
        } else {
            None
        };
        self.nodes.push(GenNode {
            schema: snode,
            children: Vec::new(),
            text,
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(idx);
        }
        self.instances[snode.idx()].push(idx);
        idx
    }

    /// Emits the instance tree into a [`Document`] in pre-order.
    fn emit(self) -> Document {
        let mut builder = Document::builder(self.schema.label(self.nodes[0].schema));
        if let Some(t) = &self.nodes[0].text {
            builder.set_text(builder.root(), t.clone());
        }
        // Stack of (gen index, doc id); children pushed in reverse to pop in order.
        let root = builder.root();
        let mut stack: Vec<(usize, crate::ids::DocNodeId)> = self.nodes[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, root))
            .collect();
        while let Some((gen_idx, parent_doc)) = stack.pop() {
            let node = &self.nodes[gen_idx];
            let doc_id = builder.add_child(parent_doc, self.schema.label(node.schema));
            if let Some(t) = &node.text {
                builder.set_text(doc_id, t.clone());
            }
            for &c in node.children.iter().rev() {
                stack.push((c, doc_id));
            }
        }
        builder.finish()
    }
}

/// Picks a plausible text value given the element's label.
fn leaf_value(label: &str, rng: &mut StdRng) -> String {
    let lower = label.to_ascii_lowercase();
    if lower.contains("name") || lower.contains("contact") {
        NAMES[rng.gen_range(0..NAMES.len())].to_string()
    } else if lower.contains("city") || lower.contains("country") || lower.contains("addr") {
        CITIES[rng.gen_range(0..CITIES.len())].to_string()
    } else if lower.contains("price") || lower.contains("amount") || lower.contains("total") {
        format!("{}.{:02}", rng.gen_range(1..500), rng.gen_range(0..100))
    } else if lower.contains("qty")
        || lower.contains("quantity")
        || lower.contains("no")
        || lower.contains("id")
        || lower.contains("line")
    {
        rng.gen_range(1..1000).to_string()
    } else if lower.contains("mail") {
        format!(
            "{}@example.com",
            NAMES[rng.gen_range(0..NAMES.len())].to_ascii_lowercase()
        )
    } else {
        WORDS[rng.gen_range(0..WORDS.len())].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity UnitPrice))",
        )
        .unwrap()
    }

    #[test]
    fn deterministic_for_seed() {
        let s = schema();
        let a = Document::generate(&s, &DocGenConfig::small(), 42);
        let b = Document::generate(&s, &DocGenConfig::small(), 42);
        assert_eq!(crate::writer::to_xml(&a), crate::writer::to_xml(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let s = schema();
        let a = Document::generate(&s, &DocGenConfig::order_xml(), 1);
        let b = Document::generate(&s, &DocGenConfig::order_xml(), 2);
        assert_ne!(crate::writer::to_xml(&a), crate::writer::to_xml(&b));
    }

    #[test]
    fn covers_all_schema_elements() {
        let s = schema();
        let d = Document::generate(&s, &DocGenConfig::small(), 7);
        for id in s.ids() {
            assert!(
                !d.nodes_with_label(s.label(id)).is_empty(),
                "label {} missing from generated document",
                s.label(id)
            );
        }
    }

    #[test]
    fn reaches_target_size() {
        let s = schema();
        let cfg = DocGenConfig {
            target_nodes: 500,
            max_repeat: 5,
            text_prob: 0.5,
        };
        let d = Document::generate(&s, &cfg, 3);
        assert!(d.len() >= 500, "doc too small: {}", d.len());
        // overshoot bounded by one POLine subtree (4 nodes)
        assert!(d.len() <= 504, "doc too large: {}", d.len());
    }

    #[test]
    fn no_growth_without_repeatables() {
        let s = Schema::parse_outline("A(B C(D))").unwrap();
        let cfg = DocGenConfig {
            target_nodes: 100,
            max_repeat: 4,
            text_prob: 0.0,
        };
        let d = Document::generate(&s, &cfg, 5);
        assert_eq!(d.len(), 4, "non-repeatable schema instantiates once");
    }

    #[test]
    fn leaves_get_text_when_probability_is_one() {
        let s = schema();
        let cfg = DocGenConfig {
            target_nodes: 64,
            max_repeat: 2,
            text_prob: 1.0,
        };
        let d = Document::generate(&s, &cfg, 9);
        for id in d.ids() {
            if d.children(id).is_empty() {
                assert!(d.text(id).is_some(), "leaf {id} has no text");
            }
        }
    }

    #[test]
    fn document_conforms_to_schema_paths() {
        let s = schema();
        let d = Document::generate(&s, &DocGenConfig::order_xml(), 11);
        let schema_paths: std::collections::HashSet<String> =
            s.ids().map(|id| s.path(id).replace('.', "/")).collect();
        for id in d.ids() {
            assert!(
                schema_paths.contains(&d.path(id)),
                "path {} not in schema",
                d.path(id)
            );
        }
    }

    #[test]
    fn order_xml_scale() {
        let s = schema();
        let d = Document::generate(&s, &DocGenConfig::order_xml(), 13);
        assert!(d.len() >= 3473);
        assert!(d.len() < 3480);
    }
}
