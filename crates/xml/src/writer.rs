//! XML serialization — the inverse of [`crate::parser`].

use crate::document::Document;
use crate::ids::DocNodeId;

/// Serializes a document to a compact XML string (no indentation).
///
/// Round-trips with [`crate::parse_document`] for documents whose text
/// content has no leading/trailing whitespace (the parser trims).
pub fn to_xml(doc: &Document) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    write_node(doc, doc.root(), &mut out, None);
    out
}

/// Serializes a document with `indent` spaces per nesting level.
pub fn to_xml_pretty(doc: &Document, indent: usize) -> String {
    let mut out = String::with_capacity(doc.len() * 24);
    write_node(doc, doc.root(), &mut out, Some(indent));
    out
}

fn write_node(doc: &Document, id: DocNodeId, out: &mut String, indent: Option<usize>) {
    let label = doc.label_str(id);
    let level = doc.level(id) as usize;
    if let Some(width) = indent {
        if id != doc.root() {
            out.push('\n');
        }
        out.extend(std::iter::repeat_n(' ', level * width));
    }
    let children = doc.children(id);
    let text = doc.text(id);
    if children.is_empty() && text.is_none() {
        out.push('<');
        out.push_str(label);
        out.push_str("/>");
        return;
    }
    out.push('<');
    out.push_str(label);
    out.push('>');
    if let Some(t) = text {
        escape_into(t, out);
    }
    for &c in children {
        write_node(doc, c, out, indent);
    }
    if let Some(width) = indent {
        if !children.is_empty() {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', level * width));
        }
    }
    out.push_str("</");
    out.push_str(label);
    out.push('>');
}

/// Escapes the five predefined XML entities into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '\'' => out.push_str("&apos;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn roundtrip_compact() {
        let src = "<a><b>hi</b><c/><b>x &amp; y</b></a>";
        let doc = parse_document(src).unwrap();
        assert_eq!(to_xml(&doc), src);
    }

    #[test]
    fn roundtrip_twice_is_stable() {
        let src = "<order><line><qty>2</qty></line><line><qty>5</qty></line></order>";
        let once = to_xml(&parse_document(src).unwrap());
        let twice = to_xml(&parse_document(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn escaping() {
        let mut b = Document::builder("r");
        let root = b.root();
        b.set_text(root, "<&>'\"");
        let doc = b.finish();
        assert_eq!(to_xml(&doc), "<r>&lt;&amp;&gt;&apos;&quot;</r>");
        let back = parse_document(&to_xml(&doc)).unwrap();
        assert_eq!(back.text(back.root()), Some("<&>'\""));
    }

    #[test]
    fn pretty_printing_indents() {
        let doc = parse_document("<a><b><c/></b></a>").unwrap();
        let pretty = to_xml_pretty(&doc, 2);
        assert!(pretty.contains("\n  <b>"));
        assert!(pretty.contains("\n    <c/>"));
        // pretty output parses back to the same structure
        let back = parse_document(&pretty).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn empty_element_self_closes() {
        let doc = parse_document("<a/>").unwrap();
        assert_eq!(to_xml(&doc), "<a/>");
    }
}
