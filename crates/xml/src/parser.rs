//! A small, dependency-free XML parser.
//!
//! Supports exactly what the reproduction needs: elements, nested elements,
//! text content, self-closing tags, attributes (parsed and discarded — the
//! paper's schema model is element-only), comments, processing instructions,
//! an optional XML declaration, and the five predefined entities.
//!
//! It is *not* a general-purpose conformant parser (no DTDs, no CDATA, no
//! namespaces-aware processing — prefixes are kept as part of the label).

use crate::document::{Document, DocumentBuilder};
use crate::ids::DocNodeId;
use std::fmt;

/// Errors produced by [`parse_document`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// `</a>` seen while `<b>` was open.
    MismatchedClose { expected: String, found: String },
    /// A closing tag appeared with no element open.
    UnopenedClose(String),
    /// Document ended with unclosed elements.
    UnclosedElement(String),
    /// No root element found.
    NoRoot,
    /// Content found after the root element closed.
    TrailingContent,
    /// Malformed tag or entity at the given byte offset.
    Malformed { offset: usize, what: &'static str },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseError::MismatchedClose { expected, found } => {
                write!(
                    f,
                    "mismatched close tag: expected </{expected}>, found </{found}>"
                )
            }
            ParseError::UnopenedClose(tag) => write!(f, "close tag </{tag}> with no open element"),
            ParseError::UnclosedElement(tag) => write!(f, "element <{tag}> never closed"),
            ParseError::NoRoot => write!(f, "no root element"),
            ParseError::TrailingContent => write!(f, "content after root element"),
            ParseError::Malformed { offset, what } => {
                write!(f, "malformed {what} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses an XML string into a [`Document`].
///
/// ```
/// let doc = uxm_xml::parse_document("<order><id>42</id><item qty='2'/></order>").unwrap();
/// assert_eq!(doc.len(), 3);
/// assert_eq!(doc.text(doc.nodes_with_label("id")[0]), Some("42"));
/// ```
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    Parser {
        input: input.as_bytes(),
        pos: 0,
    }
    .parse()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(mut self) -> Result<Document, ParseError> {
        self.skip_prolog()?;
        // Root open tag.
        let (root_label, attrs, self_closing) = self.read_open_tag()?;
        let mut builder = Document::builder(&root_label);
        for (n, v) in attrs {
            builder.add_attr(builder.root(), n, v);
        }
        if self_closing {
            self.skip_misc();
            if self.pos < self.input.len() {
                return Err(ParseError::TrailingContent);
            }
            return Ok(builder.finish());
        }
        let root = builder.root();
        self.parse_content(&mut builder, root, &root_label)?;
        self.skip_misc();
        if self.pos < self.input.len() {
            return Err(ParseError::TrailingContent);
        }
        Ok(builder.finish())
    }

    /// Consumes everything inside an open element until its matching close
    /// tag (which is also consumed).
    fn parse_content(
        &mut self,
        builder: &mut DocumentBuilder,
        node: DocNodeId,
        label: &str,
    ) -> Result<(), ParseError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(ParseError::UnclosedElement(label.to_string())),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<?") {
                        self.skip_pi()?;
                    } else if self.starts_with("</") {
                        let close = self.read_close_tag()?;
                        if close != label {
                            return Err(ParseError::MismatchedClose {
                                expected: label.to_string(),
                                found: close,
                            });
                        }
                        let trimmed = text.trim();
                        if !trimmed.is_empty() {
                            builder.append_text(node, trimmed);
                        }
                        return Ok(());
                    } else {
                        let (child_label, attrs, self_closing) = self.read_open_tag()?;
                        let child = builder.add_child(node, &child_label);
                        for (n, v) in attrs {
                            builder.add_attr(child, n, v);
                        }
                        if !self_closing {
                            self.parse_content(builder, child, &child_label)?;
                        }
                    }
                }
                Some(_) => {
                    let chunk = self.read_text()?;
                    text.push_str(&chunk);
                }
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_pi()?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!") {
                // DOCTYPE — skip to matching '>'
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'>' {
                        break;
                    }
                }
            } else if self.peek() == Some(b'<') {
                return Ok(());
            } else if self.peek().is_none() {
                return Err(ParseError::NoRoot);
            } else {
                return Err(ParseError::Malformed {
                    offset: self.pos,
                    what: "prolog",
                });
            }
        }
    }

    /// Skips whitespace, comments, and PIs after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                if self.skip_comment().is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                if self.skip_pi().is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.starts_with("<!--"));
        self.pos += 4;
        while self.pos < self.input.len() {
            if self.starts_with("-->") {
                self.pos += 3;
                return Ok(());
            }
            self.pos += 1;
        }
        Err(ParseError::UnexpectedEof)
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.starts_with("<?"));
        self.pos += 2;
        while self.pos < self.input.len() {
            if self.starts_with("?>") {
                self.pos += 2;
                return Ok(());
            }
            self.pos += 1;
        }
        Err(ParseError::UnexpectedEof)
    }

    /// Reads `<name attr="v" ...>` or `<name/>`; cursor must be at `<`.
    /// Returns the element name, its attributes, and whether the tag was
    /// self-closing.
    #[allow(clippy::type_complexity)]
    fn read_open_tag(&mut self) -> Result<(String, Vec<(String, String)>, bool), ParseError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let name = self.read_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((name, attrs, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok((name, attrs, true));
                    }
                    return Err(ParseError::Malformed {
                        offset: self.pos,
                        what: "tag",
                    });
                }
                Some(_) => {
                    attrs.push(self.read_attribute()?);
                }
                None => return Err(ParseError::UnexpectedEof),
            }
        }
    }

    fn read_close_tag(&mut self) -> Result<String, ParseError> {
        debug_assert!(self.starts_with("</"));
        self.pos += 2;
        let name = self.read_name()?;
        self.skip_ws();
        if self.peek() != Some(b'>') {
            return Err(ParseError::Malformed {
                offset: self.pos,
                what: "close tag",
            });
        }
        self.pos += 1;
        Ok(name)
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(ParseError::Malformed {
                offset: self.pos,
                what: "name",
            });
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn read_attribute(&mut self) -> Result<(String, String), ParseError> {
        let name = self.read_name()?;
        self.skip_ws();
        if self.peek() != Some(b'=') {
            return Err(ParseError::Malformed {
                offset: self.pos,
                what: "attribute",
            });
        }
        self.pos += 1;
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(ParseError::Malformed {
                    offset: self.pos,
                    what: "attribute value",
                })
            }
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos - 1]).into_owned();
                return Ok((name, raw));
            }
        }
        Err(ParseError::UnexpectedEof)
    }

    /// Reads character data up to the next `<`, resolving entities.
    fn read_text(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            match c {
                b'<' => break,
                b'&' => {
                    out.push(self.read_entity()?);
                }
                _ => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' || c == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.input[start..self.pos]));
                }
            }
        }
        Ok(out)
    }

    fn read_entity(&mut self) -> Result<char, ParseError> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let mut name = String::new();
        while let Some(c) = self.peek() {
            self.pos += 1;
            if c == b';' {
                return match name.as_str() {
                    "lt" => Ok('<'),
                    "gt" => Ok('>'),
                    "amp" => Ok('&'),
                    "apos" => Ok('\''),
                    "quot" => Ok('"'),
                    n if n.starts_with("#x") || n.starts_with("#X") => {
                        u32::from_str_radix(&n[2..], 16)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or(ParseError::Malformed {
                                offset: start,
                                what: "character reference",
                            })
                    }
                    n if n.starts_with('#') => {
                        n[1..].parse::<u32>().ok().and_then(char::from_u32).ok_or(
                            ParseError::Malformed {
                                offset: start,
                                what: "character reference",
                            },
                        )
                    }
                    _ => Err(ParseError::Malformed {
                        offset: start,
                        what: "entity",
                    }),
                };
            }
            name.push(c as char);
            if name.len() > 8 {
                break;
            }
        }
        Err(ParseError::Malformed {
            offset: start,
            what: "entity",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements() {
        let d = parse_document("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.nodes_with_label("b").len(), 2);
        let c = d.nodes_with_label("c")[0];
        assert_eq!(d.path(c), "a/b/c");
    }

    #[test]
    fn parses_text_and_trims() {
        let d = parse_document("<a>  hello  </a>").unwrap();
        assert_eq!(d.text(d.root()), Some("hello"));
    }

    #[test]
    fn parses_entities() {
        let d = parse_document("<a>x &lt; y &amp; z &#65; &#x42;</a>").unwrap();
        assert_eq!(d.text(d.root()), Some("x < y & z A B"));
    }

    #[test]
    fn attributes_are_captured() {
        let d = parse_document(r#"<a x="1" y='two'><b z="3"/></a>"#).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.attr(d.root(), "x"), Some("1"));
        assert_eq!(d.attr(d.root(), "y"), Some("two"));
        assert_eq!(d.attr(d.root(), "z"), None);
        let b = d.nodes_with_label("b")[0];
        assert_eq!(d.attr(b, "z"), Some("3"));
    }

    #[test]
    fn prolog_comments_and_pis() {
        let d = parse_document(
            "<?xml version=\"1.0\"?>\n<!-- header --><a><!-- inner --><b/></a><!-- tail -->",
        )
        .unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn doctype_is_skipped() {
        let d = parse_document("<!DOCTYPE a><a/>").unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn error_mismatched_close() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, ParseError::MismatchedClose { .. }));
    }

    #[test]
    fn error_unclosed() {
        let err = parse_document("<a><b>").unwrap_err();
        assert!(matches!(err, ParseError::UnclosedElement(_)));
    }

    #[test]
    fn error_trailing() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert_eq!(err, ParseError::TrailingContent);
    }

    #[test]
    fn error_empty_input() {
        assert_eq!(parse_document("   ").unwrap_err(), ParseError::NoRoot);
    }

    #[test]
    fn error_unopened_close_is_mismatch() {
        // "</b>" inside <a> is reported as a mismatched close.
        let err = parse_document("<a></b>").unwrap_err();
        assert!(matches!(err, ParseError::MismatchedClose { .. }));
    }

    #[test]
    fn mixed_content_concatenates_trimmed() {
        let d = parse_document("<a> x <b/> y </a>").unwrap();
        // Text around children is gathered into one string, trimmed at the ends.
        assert_eq!(d.text(d.root()), Some("x  y"));
    }
}
