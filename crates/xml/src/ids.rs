//! Dense index newtypes for the two arenas.
//!
//! Using `u32` keeps hot structures (correspondences, matches, blocks) small;
//! schemas in the paper top out at ~1.1k elements and documents at a few
//! thousand nodes, far below `u32::MAX`.

use std::fmt;

/// Index of an element declaration inside a [`crate::Schema`].
///
/// The root is always `SchemaNodeId(0)`.
///
/// `repr(transparent)`: guaranteed layout-identical to `u32`, so columns
/// of ids can be viewed as plain integer columns (the snapshot codec
/// relies on this).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct SchemaNodeId(pub u32);

/// Index of a node inside a [`crate::Document`].
///
/// The root is always `DocNodeId(0)`; ids are assigned in document order
/// (pre-order), so `a.0 < b.0` whenever `a` precedes `b`.
///
/// `repr(transparent)`: guaranteed layout-identical to `u32` (see
/// [`SchemaNodeId`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct DocNodeId(pub u32);

impl SchemaNodeId {
    /// Widens to a `usize` for arena indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl DocNodeId {
    /// Widens to a `usize` for arena indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SchemaNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Debug for DocNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl fmt::Display for SchemaNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Display for DocNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_by_value() {
        assert!(SchemaNodeId(1) < SchemaNodeId(2));
        assert!(DocNodeId(0) < DocNodeId(7));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", SchemaNodeId(3)), "s3");
        assert_eq!(format!("{}", DocNodeId(9)), "d9");
    }
}
