//! XML document trees with region encoding, stored as a columnar arena.
//!
//! A [`Document`] is a flat, structure-of-arrays arena: per-node labels,
//! parents, post-order ranks and levels live in parallel `Vec`s indexed by
//! [`DocNodeId`]; child lists are one CSR (offsets + flat array) pair; all
//! text content sits in **one contiguous buffer** addressed by
//! `(offset, len)` spans, and attributes likewise. Each node carries the
//! `(pre, post, level)` region encoding that structural-join algorithms
//! need: node `a` is an ancestor of node `b` iff
//! `a.pre < b.pre && b.post < a.post` (`pre` *is* the node id).
//!
//! Element labels are interned into per-document [`LabelId`]s, and the
//! document maintains a label → nodes CSR index (in document order) so
//! twig matchers can fetch the candidate stream for a query node in O(1).
//!
//! The columnar layout has two invariants every constructor maintains:
//!
//! * **pre-order ids** — a node's parent always has a smaller id, so the
//!   subtree of `n` is the contiguous id interval `[n, subtree_end(n)]`;
//! * **span integrity** — every text/attribute span lies inside its
//!   buffer and starts/ends on UTF-8 character boundaries.

use crate::ids::DocNodeId;
use std::collections::HashMap;
use std::fmt;

/// Interned element label within one [`Document`].
///
/// `repr(transparent)`: guaranteed layout-identical to `u32`, so the
/// label column can be viewed as a plain integer column (the snapshot
/// codec relies on this).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[repr(transparent)]
pub struct LabelId(pub u32);

impl LabelId {
    /// Widens to a `usize` for table indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for "no parent" / "no text" in the columnar arrays.
const NONE: u32 = u32::MAX;

/// A `(offset, len)` span into one of the document's string buffers.
/// `(NONE, 0)` marks an absent text.
type Span = (u32, u32);

/// Structural errors reported by [`Document::from_columns`] and
/// [`Document::from_raw_columns`] (the snapshot decoders' fast paths).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnError {
    /// A non-root node whose parent does not precede it, a root with a
    /// parent, or an empty node table.
    BadParent,
    /// A node label outside the label table.
    BadLabel,
    /// A text or attribute span outside its buffer or splitting a UTF-8
    /// character.
    BadSpan,
    /// A derived column (CSR offsets, child/label lists, post-order
    /// ranks) whose length, monotonicity, or entries are inconsistent
    /// with the node table.
    BadIndex,
}

/// Borrowed views of every arena column of a [`Document`], in the
/// document's own memory layout (ids lowered to plain `u32` via their
/// `repr(transparent)` guarantee). This is the snapshot v3 encoder's
/// input: each slice is written to disk verbatim as one fixed-width
/// little-endian section.
pub struct DocumentColumnsRef<'a> {
    /// Label table, in interning order.
    pub label_names: &'a [String],
    /// Per node: interned label id.
    pub labels: &'a [u32],
    /// Per node: parent id, [`Document::NO_PARENT`] for the root.
    pub parents: &'a [u32],
    /// Per node: post-order rank.
    pub posts: &'a [u32],
    /// Per node: depth, root at 0.
    pub levels: &'a [u32],
    /// CSR child offsets (`len + 1` entries).
    pub child_offsets: &'a [u32],
    /// CSR child list (`len - 1` entries, every non-root node once).
    pub child_list: &'a [u32],
    /// All text content, concatenated.
    pub text_buf: &'a str,
    /// Per node: `(offset, len)` into `text_buf`, `(NO_PARENT, 0)` when
    /// absent.
    pub text_spans: &'a [(u32, u32)],
    /// All attribute names and values, concatenated.
    pub attr_buf: &'a str,
    /// CSR attribute offsets (`len + 1` entries) into `attr_spans`.
    pub attr_offsets: &'a [u32],
    /// Flat `(name span, value span)` pairs into `attr_buf`.
    #[allow(clippy::type_complexity)]
    pub attr_spans: &'a [((u32, u32), (u32, u32))],
    /// CSR label-index offsets (`label_names.len() + 1` entries).
    pub by_label_offsets: &'a [u32],
    /// CSR label-index list (`len` entries, every node once).
    pub by_label_list: &'a [u32],
}

/// Owned raw columns for [`Document::from_raw_columns`] — the same
/// layout [`Document::raw_columns`] exposes, with the derived columns
/// (posts, levels, both CSR indexes) already present so construction is
/// validation plus moves, never recomputation.
#[derive(Clone, Debug, Default)]
pub struct DocumentColumns {
    /// Label table, in interning order.
    pub label_names: Vec<String>,
    /// Per node: interned label id.
    pub labels: Vec<u32>,
    /// Per node: parent id, [`Document::NO_PARENT`] for the root.
    pub parents: Vec<u32>,
    /// Per node: post-order rank.
    pub posts: Vec<u32>,
    /// Per node: depth, root at 0.
    pub levels: Vec<u32>,
    /// CSR child offsets (`len + 1` entries).
    pub child_offsets: Vec<u32>,
    /// CSR child list (`len - 1` entries).
    pub child_list: Vec<u32>,
    /// All text content, concatenated.
    pub text_buf: String,
    /// Per node: `(offset, len)` into `text_buf`, `(NO_PARENT, 0)` when
    /// absent.
    pub text_spans: Vec<(u32, u32)>,
    /// All attribute names and values, concatenated.
    pub attr_buf: String,
    /// CSR attribute offsets (`len + 1` entries) into `attr_spans`.
    pub attr_offsets: Vec<u32>,
    /// Flat `(name span, value span)` pairs into `attr_buf`.
    #[allow(clippy::type_complexity)]
    pub attr_spans: Vec<((u32, u32), (u32, u32))>,
    /// CSR label-index offsets (`label_names.len() + 1` entries).
    pub by_label_offsets: Vec<u32>,
    /// CSR label-index list (`len` entries).
    pub by_label_list: Vec<u32>,
}

/// An XML document as a columnar arena of element nodes.
///
/// Construct with [`Document::builder`], [`crate::parser::parse_document`],
/// or [`Document::generate`].
#[derive(Clone, Debug)]
pub struct Document {
    /// Per node: interned label.
    labels: Vec<LabelId>,
    /// Per node: parent id (`NONE` for the root).
    parents: Vec<u32>,
    /// Per node: post-order rank.
    posts: Vec<u32>,
    /// Per node: depth (root at 0).
    levels: Vec<u32>,
    /// CSR child lists: node `i`'s children are
    /// `child_list[child_offsets[i]..child_offsets[i+1]]`, in document order.
    child_offsets: Vec<u32>,
    child_list: Vec<DocNodeId>,
    /// All text content, concatenated; per-node spans below.
    text_buf: String,
    /// Per node: span into `text_buf`, `(NONE, 0)` when the node has none.
    text_spans: Vec<Span>,
    /// All attribute names and values, concatenated.
    attr_buf: String,
    /// CSR attribute lists: node `i`'s attributes are
    /// `attr_spans[attr_offsets[i]..attr_offsets[i+1]]`.
    attr_offsets: Vec<u32>,
    /// Flat `(name span, value span)` pairs into `attr_buf`.
    attr_spans: Vec<(Span, Span)>,
    /// Label table (interning order).
    label_names: Vec<String>,
    label_lookup: HashMap<String, LabelId>,
    /// CSR label index: nodes carrying label `l` are
    /// `by_label_list[by_label_offsets[l]..by_label_offsets[l+1]]`.
    by_label_offsets: Vec<u32>,
    by_label_list: Vec<DocNodeId>,
}

impl Document {
    /// The parent sentinel of the columnar layout: the root's entry in
    /// the `parents` column handed to [`Document::from_columns`] must
    /// hold this value.
    pub const NO_PARENT: u32 = NONE;

    /// Starts building a document with the given root element label.
    pub fn builder(root_label: &str) -> DocumentBuilder {
        let mut b = DocumentBuilder {
            labels: Vec::new(),
            parents: Vec::new(),
            levels: Vec::new(),
            texts: Vec::new(),
            attrs: Vec::new(),
            label_names: Vec::new(),
            label_lookup: HashMap::new(),
        };
        let label = b.intern(root_label);
        b.labels.push(label);
        b.parents.push(NONE);
        b.levels.push(0);
        b.texts.push(None);
        b
    }

    /// Assembles a document directly from columnar parts — the snapshot
    /// decoder's fast path, which skips per-node `String` allocation and
    /// the incremental builder entirely. Post-order ranks, levels, the
    /// child CSR, and the label index are derived here; the inputs are
    /// validated (pre-order parents, label ids in range, spans inside
    /// their buffers on character boundaries).
    ///
    /// `attrs` holds, per node in document order, that node's attribute
    /// count; `attr_spans` is the flat `(name, value)` span list.
    #[allow(clippy::too_many_arguments)]
    pub fn from_columns(
        label_names: Vec<String>,
        labels: Vec<LabelId>,
        parents: Vec<u32>,
        text_buf: String,
        text_spans: Vec<(u32, u32)>,
        attr_buf: String,
        attr_counts: Vec<u32>,
        attr_spans: Vec<((u32, u32), (u32, u32))>,
    ) -> Result<Document, ColumnError> {
        let n = labels.len();
        if n == 0
            || parents.len() != n
            || text_spans.len() != n
            || attr_counts.len() != n
            || parents[0] != NONE
        {
            return Err(ColumnError::BadParent);
        }
        if labels.iter().any(|l| l.idx() >= label_names.len()) {
            return Err(ColumnError::BadLabel);
        }
        for (i, &p) in parents.iter().enumerate().skip(1) {
            if p as usize >= i {
                return Err(ColumnError::BadParent);
            }
        }
        let check_span = |buf: &str, (off, len): Span| -> Result<(), ColumnError> {
            let (start, end) = (off as usize, off as usize + len as usize);
            if end > buf.len() || !buf.is_char_boundary(start) || !buf.is_char_boundary(end) {
                return Err(ColumnError::BadSpan);
            }
            Ok(())
        };
        for &span in &text_spans {
            // (NONE, 0) is the absent-text sentinel; real spans validate.
            if span != (NONE, 0) {
                check_span(&text_buf, span)?;
            }
        }
        let total_attrs: usize = attr_counts.iter().map(|&c| c as usize).sum();
        if total_attrs != attr_spans.len() {
            return Err(ColumnError::BadSpan);
        }
        // Attribute spans have no sentinel — every one must be real.
        for &(name, value) in &attr_spans {
            check_span(&attr_buf, name)?;
            check_span(&attr_buf, value)?;
        }
        let mut attr_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        attr_offsets.push(0);
        for &c in &attr_counts {
            acc += c;
            attr_offsets.push(acc);
        }

        let mut label_lookup = HashMap::with_capacity(label_names.len());
        for (i, name) in label_names.iter().enumerate() {
            label_lookup.insert(name.clone(), LabelId(i as u32));
        }
        let mut doc = Document {
            labels,
            parents,
            posts: Vec::new(),
            levels: Vec::new(),
            child_offsets: Vec::new(),
            child_list: Vec::new(),
            text_buf,
            text_spans,
            attr_buf,
            attr_offsets,
            attr_spans,
            label_names,
            label_lookup,
            by_label_offsets: Vec::new(),
            by_label_list: Vec::new(),
        };
        doc.finish_derived();
        Ok(doc)
    }

    /// Derives the CSR child lists, post-order ranks, levels, and label
    /// index from `labels` + `parents` (which must already satisfy the
    /// pre-order invariant).
    fn finish_derived(&mut self) {
        let n = self.labels.len();
        // CSR children by counting sort over parents; filling in ascending
        // id order keeps each child list in document order.
        let mut offsets = vec![0u32; n + 1];
        for &p in self.parents.iter().skip(1) {
            offsets[p as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut list = vec![DocNodeId(0); n.saturating_sub(1)];
        for id in 1..n as u32 {
            let p = self.parents[id as usize] as usize;
            list[cursor[p] as usize] = DocNodeId(id);
            cursor[p] += 1;
        }
        self.child_offsets = offsets;
        self.child_list = list;

        // Levels: parents precede children, so one forward pass suffices.
        let mut levels = vec![0u32; n];
        for id in 1..n {
            levels[id] = levels[self.parents[id] as usize] + 1;
        }
        self.levels = levels;

        // Iterative post-order numbering over the CSR.
        let mut posts = vec![0u32; n];
        let mut post = 0u32;
        let mut stack: Vec<(u32, u32)> = vec![(0, 0)];
        while let Some(&mut (node, ref mut child_idx)) = stack.last_mut() {
            let (start, end) = (
                self.child_offsets[node as usize],
                self.child_offsets[node as usize + 1],
            );
            if start + *child_idx < end {
                let next = self.child_list[(start + *child_idx) as usize];
                *child_idx += 1;
                stack.push((next.0, 0));
            } else {
                posts[node as usize] = post;
                post += 1;
                stack.pop();
            }
        }
        self.posts = posts;

        // CSR label index, again by counting sort in document order.
        let l = self.label_names.len();
        let mut loff = vec![0u32; l + 1];
        for lab in &self.labels {
            loff[lab.idx() + 1] += 1;
        }
        for i in 0..l {
            loff[i + 1] += loff[i];
        }
        let mut lcur = loff.clone();
        let mut llist = vec![DocNodeId(0); n];
        for id in 0..n as u32 {
            let lab = self.labels[id as usize].idx();
            llist[lcur[lab] as usize] = DocNodeId(id);
            lcur[lab] += 1;
        }
        self.by_label_offsets = loff;
        self.by_label_list = llist;
    }

    /// Borrows every arena column in the document's own layout (the
    /// snapshot v3 encoder's input). Id columns are exposed as `u32`
    /// slices via the ids' `repr(transparent)` layout guarantee.
    pub fn raw_columns(&self) -> DocumentColumnsRef<'_> {
        // SAFETY: LabelId and DocNodeId are #[repr(transparent)] over
        // u32, so a slice of either has the exact layout of &[u32].
        let labels: &[u32] = unsafe {
            std::slice::from_raw_parts(self.labels.as_ptr().cast::<u32>(), self.labels.len())
        };
        let child_list: &[u32] = unsafe {
            std::slice::from_raw_parts(
                self.child_list.as_ptr().cast::<u32>(),
                self.child_list.len(),
            )
        };
        let by_label_list: &[u32] = unsafe {
            std::slice::from_raw_parts(
                self.by_label_list.as_ptr().cast::<u32>(),
                self.by_label_list.len(),
            )
        };
        DocumentColumnsRef {
            label_names: &self.label_names,
            labels,
            parents: &self.parents,
            posts: &self.posts,
            levels: &self.levels,
            child_offsets: &self.child_offsets,
            child_list,
            text_buf: &self.text_buf,
            text_spans: &self.text_spans,
            attr_buf: &self.attr_buf,
            attr_offsets: &self.attr_offsets,
            attr_spans: &self.attr_spans,
            by_label_offsets: &self.by_label_offsets,
            by_label_list,
        }
    }

    /// Assembles a document from **complete** raw columns, derived
    /// indexes included — the snapshot v3 decoder's bulk path. No column
    /// is recomputed, and release-mode validation is O(sections): column
    /// lengths, CSR endpoints, and the root sentinel. The per-element
    /// invariants (label/post bounds, pre-order parents, CSR
    /// monotonicity and entry ranges, span boundaries) are trusted from
    /// the writer — the v3 decoder only reaches this constructor after
    /// every section passed its XXH64 checksum, so any file the encoder
    /// wrote satisfies them. Debug builds re-verify every per-element
    /// invariant and additionally re-derive the derived columns and
    /// compare.
    ///
    /// Feeding columns that violate the per-element invariants is safe
    /// in the Rust sense but incorrect: later queries may panic (out of
    /// bounds, non-boundary span) or walk a parent cycle. Callers other
    /// than the checksummed decoder should construct via
    /// [`Document::from_columns`], which always validates in full.
    ///
    /// Errors mirror [`Document::from_columns`], with
    /// [`ColumnError::BadIndex`] covering inconsistencies in the derived
    /// CSR/post-order columns.
    pub fn from_raw_columns(cols: DocumentColumns) -> Result<Document, ColumnError> {
        let DocumentColumns {
            label_names,
            labels,
            parents,
            posts,
            levels,
            child_offsets,
            child_list,
            text_buf,
            text_spans,
            attr_buf,
            attr_offsets,
            attr_spans,
            by_label_offsets,
            by_label_list,
        } = cols;
        let n = labels.len();
        let l = label_names.len();
        if n == 0 || parents.len() != n || parents[0] != NONE {
            return Err(ColumnError::BadParent);
        }
        // O(sections) shape checks: every length and CSR endpoint, no
        // per-element scans.
        if posts.len() != n
            || levels.len() != n
            || child_offsets.len() != n + 1
            || child_offsets[0] != 0
            || *child_offsets.last().expect("n + 1 entries") as usize != child_list.len()
            || child_list.len() != n - 1
            || by_label_offsets.len() != l + 1
            || by_label_offsets[0] != 0
            || *by_label_offsets.last().expect("l + 1 entries") as usize != by_label_list.len()
            || by_label_list.len() != n
        {
            return Err(ColumnError::BadIndex);
        }
        if text_spans.len() != n {
            return Err(ColumnError::BadSpan);
        }
        if attr_offsets.len() != n + 1
            || attr_offsets[0] != 0
            || *attr_offsets.last().expect("n + 1 entries") as usize != attr_spans.len()
        {
            return Err(ColumnError::BadIndex);
        }
        // Debug builds distrust the writer and re-verify every
        // per-element invariant the release path waives.
        #[cfg(debug_assertions)]
        {
            if labels.iter().any(|&lab| lab as usize >= l) {
                return Err(ColumnError::BadLabel);
            }
            for (i, &p) in parents.iter().enumerate().skip(1) {
                if p as usize >= i {
                    return Err(ColumnError::BadParent);
                }
            }
            let csr_ok = |offsets: &[u32], list: &[u32]| {
                offsets.windows(2).all(|w| w[0] <= w[1]) && list.iter().all(|&id| (id as usize) < n)
            };
            if posts.iter().any(|&p| p as usize >= n)
                || !csr_ok(&child_offsets, &child_list)
                || !csr_ok(&by_label_offsets, &by_label_list)
                || attr_offsets.windows(2).any(|w| w[0] > w[1])
            {
                return Err(ColumnError::BadIndex);
            }
            let check_span = |buf: &str, (off, len): Span| -> Result<(), ColumnError> {
                let (start, end) = (off as usize, off as usize + len as usize);
                if end > buf.len() || !buf.is_char_boundary(start) || !buf.is_char_boundary(end) {
                    return Err(ColumnError::BadSpan);
                }
                Ok(())
            };
            for &span in &text_spans {
                if span != (NONE, 0) {
                    check_span(&text_buf, span)?;
                }
            }
            for &(name, value) in &attr_spans {
                check_span(&attr_buf, name)?;
                check_span(&attr_buf, value)?;
            }
        }

        let mut label_lookup = HashMap::with_capacity(l);
        for (i, name) in label_names.iter().enumerate() {
            label_lookup.insert(name.clone(), LabelId(i as u32));
        }
        // The id wraps reuse each Vec's allocation (same size and
        // alignment); no column is copied.
        let doc = Document {
            labels: labels.into_iter().map(LabelId).collect(),
            parents,
            posts,
            levels,
            child_offsets,
            child_list: child_list.into_iter().map(DocNodeId).collect(),
            text_buf,
            text_spans,
            attr_buf,
            attr_offsets,
            attr_spans,
            label_names,
            label_lookup,
            by_label_offsets,
            by_label_list: by_label_list.into_iter().map(DocNodeId).collect(),
        };
        #[cfg(debug_assertions)]
        {
            let mut rederived = doc.clone();
            rederived.finish_derived();
            debug_assert_eq!(doc.posts, rederived.posts, "posts column drifted");
            debug_assert_eq!(doc.levels, rederived.levels, "levels column drifted");
            debug_assert_eq!(doc.child_offsets, rederived.child_offsets);
            debug_assert_eq!(doc.child_list, rederived.child_list);
            debug_assert_eq!(doc.by_label_offsets, rederived.by_label_offsets);
            debug_assert_eq!(doc.by_label_list, rederived.by_label_list);
        }
        Ok(doc)
    }

    /// The root node id (always `DocNodeId(0)`).
    #[inline]
    pub fn root(&self) -> DocNodeId {
        DocNodeId(0)
    }

    /// Total number of element nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the document has only a root element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.len() <= 1
    }

    /// The interned label of a node.
    #[inline]
    pub fn label(&self, id: DocNodeId) -> LabelId {
        self.labels[id.idx()]
    }

    /// Pre-order rank of a node (equals the id value).
    #[inline]
    pub fn pre(&self, id: DocNodeId) -> u32 {
        id.0
    }

    /// Post-order rank of a node.
    #[inline]
    pub fn post(&self, id: DocNodeId) -> u32 {
        self.posts[id.idx()]
    }

    /// Depth of a node; the root is at level 0.
    #[inline]
    pub fn level(&self, id: DocNodeId) -> u32 {
        self.levels[id.idx()]
    }

    /// The string label of a node.
    #[inline]
    pub fn label_str(&self, id: DocNodeId) -> &str {
        &self.label_names[self.labels[id.idx()].idx()]
    }

    /// Resolves a label string to its interned id, if the label occurs.
    #[inline]
    pub fn resolve_label(&self, label: &str) -> Option<LabelId> {
        self.label_lookup.get(label).copied()
    }

    /// The string for an interned label id.
    #[inline]
    pub fn label_name(&self, label: LabelId) -> &str {
        &self.label_names[label.idx()]
    }

    /// Number of distinct labels.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_names.len()
    }

    /// Nodes carrying `label`, in document order; empty if unknown label.
    pub fn nodes_with_label(&self, label: &str) -> &[DocNodeId] {
        match self.resolve_label(label) {
            Some(id) => self.nodes_with_label_id(id),
            None => &[],
        }
    }

    /// Nodes carrying the interned `label`, in document order.
    #[inline]
    pub fn nodes_with_label_id(&self, label: LabelId) -> &[DocNodeId] {
        let (a, b) = (
            self.by_label_offsets[label.idx()] as usize,
            self.by_label_offsets[label.idx() + 1] as usize,
        );
        &self.by_label_list[a..b]
    }

    /// Children of `id` in document order.
    #[inline]
    pub fn children(&self, id: DocNodeId) -> &[DocNodeId] {
        let (a, b) = (
            self.child_offsets[id.idx()] as usize,
            self.child_offsets[id.idx() + 1] as usize,
        );
        &self.child_list[a..b]
    }

    /// Parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: DocNodeId) -> Option<DocNodeId> {
        match self.parents[id.idx()] {
            NONE => None,
            p => Some(DocNodeId(p)),
        }
    }

    /// Text content directly under `id`, if any.
    #[inline]
    pub fn text(&self, id: DocNodeId) -> Option<&str> {
        let (off, len) = self.text_spans[id.idx()];
        if off == NONE && len == 0 {
            None
        } else {
            Some(&self.text_buf[off as usize..off as usize + len as usize])
        }
    }

    /// Attributes of `id` in source order, as `(name, value)` pairs.
    pub fn attrs(&self, id: DocNodeId) -> impl Iterator<Item = (&str, &str)> {
        let (a, b) = (
            self.attr_offsets[id.idx()] as usize,
            self.attr_offsets[id.idx() + 1] as usize,
        );
        self.attr_spans[a..b].iter().map(|&(n, v)| {
            (
                &self.attr_buf[n.0 as usize..n.0 as usize + n.1 as usize],
                &self.attr_buf[v.0 as usize..v.0 as usize + v.1 as usize],
            )
        })
    }

    /// Number of attributes on `id`.
    #[inline]
    pub fn attr_count(&self, id: DocNodeId) -> usize {
        (self.attr_offsets[id.idx() + 1] - self.attr_offsets[id.idx()]) as usize
    }

    /// The value of attribute `name` on `id`, if present.
    pub fn attr(&self, id: DocNodeId, name: &str) -> Option<&str> {
        self.attrs(id).find(|&(n, _)| n == name).map(|(_, v)| v)
    }

    /// True iff `anc` is a *proper* ancestor of `desc` (region encoding).
    #[inline]
    pub fn is_ancestor(&self, anc: DocNodeId, desc: DocNodeId) -> bool {
        anc.0 < desc.0 && self.posts[desc.idx()] < self.posts[anc.idx()]
    }

    /// True iff `parent` is the parent of `child`.
    #[inline]
    pub fn is_parent(&self, parent: DocNodeId, child: DocNodeId) -> bool {
        self.parents[child.idx()] == parent.0
    }

    /// Iterates all node ids in document (pre-) order.
    pub fn ids(&self) -> impl Iterator<Item = DocNodeId> + '_ {
        (0..self.labels.len() as u32).map(DocNodeId)
    }

    /// All descendants of `id` (excluding `id`), in document order.
    ///
    /// Because ids are pre-order ranks and the subtree is a contiguous
    /// pre-order interval, this is a simple range scan.
    pub fn descendants(&self, id: DocNodeId) -> impl Iterator<Item = DocNodeId> + '_ {
        let post = self.posts[id.idx()];
        (id.0 + 1..self.labels.len() as u32)
            .map(DocNodeId)
            .take_while(move |n| self.posts[n.idx()] < post)
    }

    /// For every node, the largest pre-order id inside its subtree.
    ///
    /// With pre-order ids, node `m` is in `n`'s subtree iff
    /// `n.0 <= m.0 <= table[n.idx()]`. Computed in O(n); matchers use it to
    /// binary-search candidate lists by subtree interval.
    pub fn subtree_end_table(&self) -> Vec<u32> {
        let mut end: Vec<u32> = (0..self.labels.len() as u32).collect();
        // Children always have larger ids; walk in reverse so children are done.
        for i in (0..self.labels.len()).rev() {
            if let Some(&last) = self.children(DocNodeId(i as u32)).last() {
                end[i] = end[last.idx()];
            }
        }
        end
    }

    /// Root-to-node label path joined with `/`.
    pub fn path(&self, id: DocNodeId) -> String {
        let mut labels = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            labels.push(self.label_str(n));
            cur = self.parent(n);
        }
        labels.reverse();
        labels.join("/")
    }

    /// Total bytes of text content (the `text_buf` length).
    #[inline]
    pub fn text_bytes(&self) -> usize {
        self.text_buf.len()
    }

    /// Total bytes of attribute names and values (the `attr_buf` length).
    #[inline]
    pub fn attr_bytes(&self) -> usize {
        self.attr_buf.len()
    }

    /// Resident heap bytes of the arena — the exact sum of every columnar
    /// array and string buffer this document owns (label-table strings
    /// counted by content length). Feeds
    /// `QueryEngine::approx_bytes`, and through it the registry's LRU
    /// memory budget.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.labels.len() * size_of::<LabelId>()
            + (self.parents.len() + self.posts.len() + self.levels.len()) * size_of::<u32>()
            + self.child_offsets.len() * size_of::<u32>()
            + self.child_list.len() * size_of::<DocNodeId>()
            + self.text_buf.len()
            + self.text_spans.len() * size_of::<Span>()
            + self.attr_buf.len()
            + self.attr_offsets.len() * size_of::<u32>()
            + self.attr_spans.len() * size_of::<(Span, Span)>()
            + self
                .label_names
                .iter()
                .map(|n| n.len() + size_of::<String>())
                .sum::<usize>()
            + self.by_label_offsets.len() * size_of::<u32>()
            + self.by_label_list.len() * size_of::<DocNodeId>()
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Document[{} nodes, {} labels, root <{}>]",
            self.len(),
            self.label_count(),
            self.label_str(self.root())
        )
    }
}

/// An index from root-to-node label paths to document nodes, keyed by
/// **interned path symbols** — building it allocates no per-node path
/// `String`s.
///
/// Node-granularity query rewriting (a mapping sends a *schema node*, not
/// a label, to a source schema node) needs to locate the document nodes
/// instantiating a given schema node; since generated and parsed documents
/// carry no schema annotations, the label path identifies them.
///
/// Internally a path is interned structurally: the symbol of a node's path
/// is determined by `(parent's path symbol, node label)`, so the whole
/// index is one hash map over `(u32, u32)` keys plus a CSR node list —
/// the string form of a path only exists transiently inside
/// [`PathIndex::nodes`] lookups.
#[derive(Clone, Debug)]
pub struct PathIndex {
    /// `(parent path symbol or NONE, label) → path symbol`.
    interner: HashMap<(u32, LabelId), u32>,
    /// CSR: nodes whose path has symbol `p` are
    /// `list[offsets[p]..offsets[p+1]]`, in document order.
    offsets: Vec<u32>,
    list: Vec<DocNodeId>,
    /// Label resolution for string lookups (small: one entry per distinct
    /// label, copied once from the document).
    labels: HashMap<String, LabelId>,
}

impl PathIndex {
    /// Builds the index in one pass. Path symbols are interned
    /// structurally (pair-wise), so total cost is linear in the node count
    /// with no per-node string allocation.
    pub fn new(doc: &Document) -> PathIndex {
        let n = doc.len();
        let mut interner: HashMap<(u32, LabelId), u32> = HashMap::new();
        let mut node_path: Vec<u32> = Vec::with_capacity(n);
        for id in doc.ids() {
            let parent_path = match doc.parent(id) {
                Some(p) => node_path[p.idx()],
                None => NONE,
            };
            let next = interner.len() as u32;
            let pid = *interner.entry((parent_path, doc.label(id))).or_insert(next);
            node_path.push(pid);
        }
        // CSR by counting sort; ascending id order keeps document order.
        let paths = interner.len();
        let mut offsets = vec![0u32; paths + 1];
        for &p in &node_path {
            offsets[p as usize + 1] += 1;
        }
        for i in 0..paths {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut list = vec![DocNodeId(0); n];
        for (id, &p) in node_path.iter().enumerate() {
            list[cursor[p as usize] as usize] = DocNodeId(id as u32);
            cursor[p as usize] += 1;
        }
        let labels = (0..doc.label_count() as u32)
            .map(|l| (doc.label_name(LabelId(l)).to_string(), LabelId(l)))
            .collect();
        PathIndex {
            interner,
            offsets,
            list,
            labels,
        }
    }

    /// Document nodes whose root path equals `path` (labels joined with
    /// `/`), in document order; empty when the path does not occur.
    pub fn nodes(&self, path: &str) -> &[DocNodeId] {
        let mut cur = NONE;
        for seg in path.split('/') {
            let Some(&label) = self.labels.get(seg) else {
                return &[];
            };
            match self.interner.get(&(cur, label)) {
                Some(&next) => cur = next,
                None => return &[],
            }
        }
        if cur == NONE {
            return &[];
        }
        let (a, b) = (
            self.offsets[cur as usize] as usize,
            self.offsets[cur as usize + 1] as usize,
        );
        &self.list[a..b]
    }

    /// Number of distinct paths.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True when the document was empty (never — a root always exists).
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Resident heap bytes of the index: interner entries, the CSR node
    /// arrays, and the copied label table.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.interner.len() * (size_of::<(u32, LabelId)>() + size_of::<u32>() + 16)
            + self.offsets.len() * size_of::<u32>()
            + self.list.len() * size_of::<DocNodeId>()
            + self
                .labels
                .keys()
                .map(|k| k.len() + size_of::<String>() + size_of::<LabelId>())
                .sum::<usize>()
    }
}

/// Incremental builder for [`Document`].
///
/// Nodes must be appended in document order (a child is added after its
/// parent); this is what parsers and generators naturally do. `finish()`
/// computes post-order ranks, packs text and attributes into their
/// contiguous buffers, and builds the CSR child and label indexes.
pub struct DocumentBuilder {
    labels: Vec<LabelId>,
    parents: Vec<u32>,
    levels: Vec<u32>,
    /// Per-node text, staged; packed into one buffer at `finish()`.
    texts: Vec<Option<String>>,
    /// `(node, name, value)` in insertion order; bucketed per node at
    /// `finish()` (insertion order per node is preserved).
    attrs: Vec<(u32, String, String)>,
    label_names: Vec<String>,
    label_lookup: HashMap<String, LabelId>,
}

impl DocumentBuilder {
    fn intern(&mut self, label: &str) -> LabelId {
        if let Some(&id) = self.label_lookup.get(label) {
            return id;
        }
        let id = LabelId(self.label_names.len() as u32);
        self.label_names.push(label.to_string());
        self.label_lookup.insert(label.to_string(), id);
        id
    }

    /// The root node id of the document being built.
    pub fn root(&self) -> DocNodeId {
        DocNodeId(0)
    }

    /// Appends an element under `parent`, returning its id.
    pub fn add_child(&mut self, parent: DocNodeId, label: &str) -> DocNodeId {
        let label = self.intern(label);
        let id = DocNodeId(self.labels.len() as u32);
        let level = self.levels[parent.idx()] + 1;
        self.labels.push(label);
        self.parents.push(parent.0);
        self.levels.push(level);
        self.texts.push(None);
        id
    }

    /// Sets (replaces) the text content of a node.
    pub fn set_text(&mut self, id: DocNodeId, text: impl Into<String>) {
        self.texts[id.idx()] = Some(text.into());
    }

    /// Appends an attribute to a node (used by the parser; generated
    /// documents carry none).
    pub fn add_attr(&mut self, id: DocNodeId, name: impl Into<String>, value: impl Into<String>) {
        self.attrs.push((id.0, name.into(), value.into()));
    }

    /// Appends to the text content of a node (used by the parser when text
    /// is interleaved with child elements).
    pub fn append_text(&mut self, id: DocNodeId, text: &str) {
        match &mut self.texts[id.idx()] {
            Some(t) => t.push_str(text),
            slot @ None => *slot = Some(text.to_string()),
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when only the root exists so far.
    pub fn is_empty(&self) -> bool {
        self.labels.len() <= 1
    }

    /// Finalizes region encoding, packs the string buffers, and builds the
    /// CSR indexes.
    pub fn finish(self) -> Document {
        let n = self.labels.len();
        // Pack text into one contiguous buffer.
        let text_total: usize = self.texts.iter().flatten().map(String::len).sum();
        let mut text_buf = String::with_capacity(text_total);
        let mut text_spans = Vec::with_capacity(n);
        for t in &self.texts {
            match t {
                Some(t) => {
                    let off = text_buf.len() as u32;
                    text_buf.push_str(t);
                    text_spans.push((off, t.len() as u32));
                }
                None => text_spans.push((NONE, 0)),
            }
        }
        // Bucket attributes per node (stable sort keeps per-node insertion
        // order), then pack names/values contiguously.
        let mut attrs = self.attrs;
        attrs.sort_by_key(|&(node, _, _)| node);
        let attr_total: usize = attrs.iter().map(|(_, k, v)| k.len() + v.len()).sum();
        let mut attr_buf = String::with_capacity(attr_total);
        let mut attr_spans = Vec::with_capacity(attrs.len());
        let mut attr_offsets = vec![0u32; n + 1];
        for (node, name, value) in &attrs {
            attr_offsets[*node as usize + 1] += 1;
            let name_off = attr_buf.len() as u32;
            attr_buf.push_str(name);
            let value_off = attr_buf.len() as u32;
            attr_buf.push_str(value);
            attr_spans.push((
                (name_off, name.len() as u32),
                (value_off, value.len() as u32),
            ));
        }
        for i in 0..n {
            attr_offsets[i + 1] += attr_offsets[i];
        }

        let mut doc = Document {
            labels: self.labels,
            parents: self.parents,
            posts: Vec::new(),
            levels: Vec::new(),
            child_offsets: Vec::new(),
            child_list: Vec::new(),
            text_buf,
            text_spans,
            attr_buf,
            attr_offsets,
            attr_spans,
            label_names: self.label_names,
            label_lookup: self.label_lookup,
            by_label_offsets: Vec::new(),
            by_label_list: Vec::new(),
        };
        doc.finish_derived();
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// <a><b><d/></b><c/></a>
    fn small() -> Document {
        let mut b = Document::builder("a");
        let root = b.root();
        let nb = b.add_child(root, "b");
        b.add_child(nb, "d");
        b.add_child(root, "c");
        b.finish()
    }

    #[test]
    fn region_encoding_ancestorship() {
        let d = small();
        let a = d.root();
        let b = d.nodes_with_label("b")[0];
        let c = d.nodes_with_label("c")[0];
        let dd = d.nodes_with_label("d")[0];
        assert!(d.is_ancestor(a, b));
        assert!(d.is_ancestor(a, dd));
        assert!(d.is_ancestor(b, dd));
        assert!(!d.is_ancestor(b, c));
        assert!(!d.is_ancestor(dd, b));
        assert!(!d.is_ancestor(a, a), "ancestor is strict");
    }

    #[test]
    fn parent_child_relation() {
        let d = small();
        let a = d.root();
        let b = d.nodes_with_label("b")[0];
        let dd = d.nodes_with_label("d")[0];
        assert!(d.is_parent(a, b));
        assert!(d.is_parent(b, dd));
        assert!(!d.is_parent(a, dd));
    }

    #[test]
    fn descendants_are_contiguous() {
        let d = small();
        let a = d.root();
        let descs: Vec<_> = d.descendants(a).collect();
        assert_eq!(descs.len(), 3);
        let b = d.nodes_with_label("b")[0];
        let descs_b: Vec<_> = d.descendants(b).collect();
        assert_eq!(descs_b, vec![d.nodes_with_label("d")[0]]);
    }

    #[test]
    fn label_interning_and_index() {
        let mut b = Document::builder("x");
        let root = b.root();
        b.add_child(root, "y");
        b.add_child(root, "y");
        b.add_child(root, "z");
        let d = b.finish();
        assert_eq!(d.label_count(), 3);
        assert_eq!(d.nodes_with_label("y").len(), 2);
        assert_eq!(d.nodes_with_label("missing").len(), 0);
        let y = d.resolve_label("y").unwrap();
        assert_eq!(d.nodes_with_label_id(y).len(), 2);
        assert_eq!(d.label_name(y), "y");
    }

    #[test]
    fn text_handling() {
        let mut b = Document::builder("r");
        let root = b.root();
        let n = b.add_child(root, "t");
        b.set_text(n, "hello");
        b.append_text(n, " world");
        let d = b.finish();
        assert_eq!(d.text(n), Some("hello world"));
        assert_eq!(d.text(root), None);
    }

    #[test]
    fn interleaved_text_stays_per_node() {
        // <a>t1<b>x</b>t2</a> — a's text is appended after b's was set;
        // the packed buffer must still keep each node's text contiguous.
        let mut b = Document::builder("a");
        let root = b.root();
        b.set_text(root, "t1");
        let nb = b.add_child(root, "b");
        b.set_text(nb, "x");
        b.append_text(root, "t2");
        let d = b.finish();
        assert_eq!(d.text(root), Some("t1t2"));
        assert_eq!(d.text(nb), Some("x"));
    }

    #[test]
    fn attrs_preserved_in_order() {
        let mut b = Document::builder("r");
        let root = b.root();
        let n = b.add_child(root, "item");
        b.add_attr(n, "x", "1");
        b.add_attr(root, "lang", "en");
        b.add_attr(n, "y", "2");
        let d = b.finish();
        assert_eq!(d.attr(root, "lang"), Some("en"));
        assert_eq!(d.attr(n, "x"), Some("1"));
        assert_eq!(d.attr(n, "y"), Some("2"));
        assert_eq!(d.attr(n, "z"), None);
        let pairs: Vec<_> = d.attrs(n).collect();
        assert_eq!(pairs, vec![("x", "1"), ("y", "2")]);
        assert_eq!(d.attr_count(n), 2);
    }

    #[test]
    fn paths_and_levels() {
        let d = small();
        let dd = d.nodes_with_label("d")[0];
        assert_eq!(d.path(dd), "a/b/d");
        assert_eq!(d.level(dd), 2);
        assert_eq!(d.level(d.root()), 0);
    }

    #[test]
    fn document_order_ids() {
        let d = small();
        // ids are pre-order: a=0, b=1, d=2, c=3
        assert_eq!(d.label_str(DocNodeId(0)), "a");
        assert_eq!(d.label_str(DocNodeId(1)), "b");
        assert_eq!(d.label_str(DocNodeId(2)), "d");
        assert_eq!(d.label_str(DocNodeId(3)), "c");
    }

    #[test]
    fn path_index_interned_lookup() {
        let mut b = Document::builder("a");
        let root = b.root();
        let x = b.add_child(root, "x");
        b.add_child(x, "y");
        let x2 = b.add_child(root, "x");
        b.add_child(x2, "y");
        let d = b.finish();
        let idx = PathIndex::new(&d);
        assert_eq!(idx.nodes("a").len(), 1);
        assert_eq!(idx.nodes("a/x").len(), 2);
        assert_eq!(idx.nodes("a/x/y").len(), 2);
        assert_eq!(idx.nodes("a/y").len(), 0);
        assert_eq!(idx.nodes("nope").len(), 0);
        assert_eq!(idx.len(), 3, "a, a/x, a/x/y");
        assert!(!idx.is_empty());
    }

    #[test]
    fn from_columns_roundtrip_and_validation() {
        let built = {
            let mut b = Document::builder("a");
            let root = b.root();
            let nb = b.add_child(root, "b");
            b.set_text(nb, "hi");
            b.add_attr(nb, "k", "v");
            b.add_child(root, "c");
            b.finish()
        };
        let doc = Document::from_columns(
            vec!["a".into(), "b".into(), "c".into()],
            vec![LabelId(0), LabelId(1), LabelId(2)],
            vec![NONE, 0, 0],
            "hi".into(),
            vec![(NONE, 0), (0, 2), (NONE, 0)],
            "kv".into(),
            vec![0, 1, 0],
            vec![((0, 1), (1, 1))],
        )
        .unwrap();
        assert_eq!(doc.len(), built.len());
        let nb = doc.nodes_with_label("b")[0];
        assert_eq!(doc.text(nb), Some("hi"));
        assert_eq!(doc.attr(nb, "k"), Some("v"));
        assert_eq!(doc.post(doc.root()), built.post(built.root()));
        assert!(doc.is_parent(doc.root(), nb));

        // Parent not preceding the child.
        assert_eq!(
            Document::from_columns(
                vec!["a".into()],
                vec![LabelId(0), LabelId(0)],
                vec![NONE, 5],
                String::new(),
                vec![(NONE, 0), (NONE, 0)],
                String::new(),
                vec![0, 0],
                vec![],
            )
            .unwrap_err(),
            ColumnError::BadParent
        );
        // Label out of range.
        assert_eq!(
            Document::from_columns(
                vec!["a".into()],
                vec![LabelId(7)],
                vec![NONE],
                String::new(),
                vec![(NONE, 0)],
                String::new(),
                vec![0],
                vec![],
            )
            .unwrap_err(),
            ColumnError::BadLabel
        );
        // Span past the buffer / splitting a character.
        assert_eq!(
            Document::from_columns(
                vec!["a".into()],
                vec![LabelId(0)],
                vec![NONE],
                "é".into(),
                vec![(0, 1)],
                String::new(),
                vec![0],
                vec![],
            )
            .unwrap_err(),
            ColumnError::BadSpan
        );
        // The absent-text sentinel is NOT valid for attribute spans.
        assert_eq!(
            Document::from_columns(
                vec!["a".into()],
                vec![LabelId(0)],
                vec![NONE],
                String::new(),
                vec![(NONE, 0)],
                String::new(),
                vec![1],
                vec![((NONE, 0), (0, 0))],
            )
            .unwrap_err(),
            ColumnError::BadSpan
        );
    }

    #[test]
    fn arena_bytes_counts_buffers() {
        let d = small();
        let base = d.arena_bytes();
        assert!(base > 0);
        let mut b = Document::builder("a");
        let root = b.root();
        let n = b.add_child(root, "b");
        b.set_text(n, "0123456789");
        let with_text = b.finish();
        assert!(with_text.text_bytes() == 10);
        assert_eq!(with_text.attr_bytes(), 0);
    }
}
