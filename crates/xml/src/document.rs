//! XML document trees with region encoding.
//!
//! A [`Document`] is a flat arena of element nodes, each carrying the
//! `(pre, post, level)` region encoding that structural-join algorithms
//! need: node `a` is an ancestor of node `b` iff
//! `a.pre < b.pre && b.post < a.post`.
//!
//! Element labels are interned into per-document [`LabelId`]s, and the
//! document maintains a label → nodes index (in document order) so twig
//! matchers can fetch the candidate stream for a query node in O(1).

use crate::ids::DocNodeId;
use std::collections::HashMap;
use std::fmt;

/// Interned element label within one [`Document`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LabelId(pub u32);

impl LabelId {
    /// Widens to a `usize` for table indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One element node of a document.
#[derive(Clone, Debug, PartialEq)]
pub struct DocNode {
    /// Interned element label.
    pub label: LabelId,
    /// Parent node; `None` only for the root.
    pub parent: Option<DocNodeId>,
    /// Children in document order.
    pub children: Vec<DocNodeId>,
    /// Concatenated text content directly under this element, if any.
    pub text: Option<String>,
    /// Attributes in source order (empty for generated documents).
    pub attrs: Vec<(String, String)>,
    /// Pre-order rank (equals the node id value).
    pub pre: u32,
    /// Post-order rank.
    pub post: u32,
    /// Depth; the root is at level 0.
    pub level: u32,
}

/// An XML document as an arena of element nodes.
///
/// Construct with [`Document::builder`], [`crate::parser::parse_document`],
/// or [`Document::generate`].
#[derive(Clone, Debug)]
pub struct Document {
    nodes: Vec<DocNode>,
    labels: Vec<String>,
    label_lookup: HashMap<String, LabelId>,
    /// For each label, the node ids carrying it, in document order.
    by_label: Vec<Vec<DocNodeId>>,
}

impl Document {
    /// Starts building a document with the given root element label.
    pub fn builder(root_label: &str) -> DocumentBuilder {
        let mut b = DocumentBuilder {
            doc: Document {
                nodes: Vec::new(),
                labels: Vec::new(),
                label_lookup: HashMap::new(),
                by_label: Vec::new(),
            },
        };
        let label = b.doc.intern(root_label);
        b.doc.nodes.push(DocNode {
            label,
            parent: None,
            children: Vec::new(),
            text: None,
            attrs: Vec::new(),
            pre: 0,
            post: 0,
            level: 0,
        });
        b
    }

    fn intern(&mut self, label: &str) -> LabelId {
        if let Some(&id) = self.label_lookup.get(label) {
            return id;
        }
        let id = LabelId(self.labels.len() as u32);
        self.labels.push(label.to_string());
        self.label_lookup.insert(label.to_string(), id);
        self.by_label.push(Vec::new());
        id
    }

    /// The root node id (always `DocNodeId(0)`).
    #[inline]
    pub fn root(&self) -> DocNodeId {
        DocNodeId(0)
    }

    /// Total number of element nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document has only a root element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: DocNodeId) -> &DocNode {
        &self.nodes[id.idx()]
    }

    /// The string label of a node.
    #[inline]
    pub fn label_str(&self, id: DocNodeId) -> &str {
        &self.labels[self.nodes[id.idx()].label.idx()]
    }

    /// Resolves a label string to its interned id, if the label occurs.
    #[inline]
    pub fn resolve_label(&self, label: &str) -> Option<LabelId> {
        self.label_lookup.get(label).copied()
    }

    /// The string for an interned label id.
    #[inline]
    pub fn label_name(&self, label: LabelId) -> &str {
        &self.labels[label.idx()]
    }

    /// Number of distinct labels.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Nodes carrying `label`, in document order; empty if unknown label.
    pub fn nodes_with_label(&self, label: &str) -> &[DocNodeId] {
        match self.resolve_label(label) {
            Some(id) => &self.by_label[id.idx()],
            None => &[],
        }
    }

    /// Nodes carrying the interned `label`, in document order.
    #[inline]
    pub fn nodes_with_label_id(&self, label: LabelId) -> &[DocNodeId] {
        &self.by_label[label.idx()]
    }

    /// Children of `id` in document order.
    #[inline]
    pub fn children(&self, id: DocNodeId) -> &[DocNodeId] {
        &self.nodes[id.idx()].children
    }

    /// Parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: DocNodeId) -> Option<DocNodeId> {
        self.nodes[id.idx()].parent
    }

    /// Text content directly under `id`, if any.
    #[inline]
    pub fn text(&self, id: DocNodeId) -> Option<&str> {
        self.nodes[id.idx()].text.as_deref()
    }

    /// The value of attribute `name` on `id`, if present.
    pub fn attr(&self, id: DocNodeId, name: &str) -> Option<&str> {
        self.nodes[id.idx()]
            .attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True iff `anc` is a *proper* ancestor of `desc` (region encoding).
    #[inline]
    pub fn is_ancestor(&self, anc: DocNodeId, desc: DocNodeId) -> bool {
        let a = &self.nodes[anc.idx()];
        let d = &self.nodes[desc.idx()];
        a.pre < d.pre && d.post < a.post
    }

    /// True iff `parent` is the parent of `child`.
    #[inline]
    pub fn is_parent(&self, parent: DocNodeId, child: DocNodeId) -> bool {
        self.nodes[child.idx()].parent == Some(parent)
    }

    /// Iterates all node ids in document (pre-) order.
    pub fn ids(&self) -> impl Iterator<Item = DocNodeId> + '_ {
        (0..self.nodes.len() as u32).map(DocNodeId)
    }

    /// All descendants of `id` (excluding `id`), in document order.
    ///
    /// Because ids are pre-order ranks and the subtree is a contiguous
    /// pre-order interval, this is a simple range scan.
    pub fn descendants(&self, id: DocNodeId) -> impl Iterator<Item = DocNodeId> + '_ {
        let post = self.nodes[id.idx()].post;
        (id.0 + 1..self.nodes.len() as u32)
            .map(DocNodeId)
            .take_while(move |n| self.nodes[n.idx()].post < post)
    }

    /// For every node, the largest pre-order id inside its subtree.
    ///
    /// With pre-order ids, node `m` is in `n`'s subtree iff
    /// `n.0 <= m.0 <= table[n.idx()]`. Computed in O(n); matchers use it to
    /// binary-search candidate lists by subtree interval.
    pub fn subtree_end_table(&self) -> Vec<u32> {
        let mut end: Vec<u32> = (0..self.nodes.len() as u32).collect();
        // Children always have larger ids; walk in reverse so children are done.
        for i in (0..self.nodes.len()).rev() {
            if let Some(&last) = self.nodes[i].children.last() {
                end[i] = end[last.idx()];
            }
        }
        end
    }

    /// Root-to-node label path joined with `/`.
    pub fn path(&self, id: DocNodeId) -> String {
        let mut labels = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            labels.push(self.label_str(n));
            cur = self.parent(n);
        }
        labels.reverse();
        labels.join("/")
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Document[{} nodes, {} labels, root <{}>]",
            self.len(),
            self.label_count(),
            self.label_str(self.root())
        )
    }
}

/// An index from root-to-node label paths to document nodes.
///
/// Node-granularity query rewriting (a mapping sends a *schema node*, not
/// a label, to a source schema node) needs to locate the document nodes
/// instantiating a given schema node; since generated and parsed documents
/// carry no schema annotations, the label path identifies them.
#[derive(Clone, Debug)]
pub struct PathIndex {
    map: HashMap<String, Vec<DocNodeId>>,
}

impl PathIndex {
    /// Builds the index in one pass (paths are accumulated incrementally
    /// down the tree, so total cost is linear in output size).
    pub fn new(doc: &Document) -> PathIndex {
        let mut paths: Vec<String> = Vec::with_capacity(doc.len());
        let mut map: HashMap<String, Vec<DocNodeId>> = HashMap::new();
        for id in doc.ids() {
            let path = match doc.parent(id) {
                Some(p) => format!("{}/{}", paths[p.idx()], doc.label_str(id)),
                None => doc.label_str(id).to_string(),
            };
            map.entry(path.clone()).or_default().push(id);
            paths.push(path);
        }
        PathIndex { map }
    }

    /// Document nodes whose root path equals `path` (labels joined with
    /// `/`), in document order; empty when the path does not occur.
    pub fn nodes(&self, path: &str) -> &[DocNodeId] {
        self.map.get(path).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct paths.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the document was empty (never — a root always exists).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Incremental builder for [`Document`].
///
/// Nodes must be appended in document order (a child is added after its
/// parent); this is what parsers and generators naturally do. `finish()`
/// computes post-order ranks and the label index.
pub struct DocumentBuilder {
    doc: Document,
}

impl DocumentBuilder {
    /// The root node id of the document being built.
    pub fn root(&self) -> DocNodeId {
        DocNodeId(0)
    }

    /// Appends an element under `parent`, returning its id.
    pub fn add_child(&mut self, parent: DocNodeId, label: &str) -> DocNodeId {
        let label = self.doc.intern(label);
        let id = DocNodeId(self.doc.nodes.len() as u32);
        let level = self.doc.nodes[parent.idx()].level + 1;
        self.doc.nodes.push(DocNode {
            label,
            parent: Some(parent),
            children: Vec::new(),
            text: None,
            attrs: Vec::new(),
            pre: id.0,
            post: 0,
            level,
        });
        self.doc.nodes[parent.idx()].children.push(id);
        id
    }

    /// Sets (replaces) the text content of a node.
    pub fn set_text(&mut self, id: DocNodeId, text: impl Into<String>) {
        self.doc.nodes[id.idx()].text = Some(text.into());
    }

    /// Appends an attribute to a node (used by the parser; generated
    /// documents carry none).
    pub fn add_attr(&mut self, id: DocNodeId, name: impl Into<String>, value: impl Into<String>) {
        self.doc.nodes[id.idx()]
            .attrs
            .push((name.into(), value.into()));
    }

    /// Appends to the text content of a node (used by the parser when text
    /// is interleaved with child elements).
    pub fn append_text(&mut self, id: DocNodeId, text: &str) {
        match &mut self.doc.nodes[id.idx()].text {
            Some(t) => t.push_str(text),
            slot @ None => *slot = Some(text.to_string()),
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.doc.nodes.len()
    }

    /// True when only the root exists so far.
    pub fn is_empty(&self) -> bool {
        self.doc.nodes.len() <= 1
    }

    /// Finalizes region encoding and the label index.
    pub fn finish(mut self) -> Document {
        // Iterative post-order numbering.
        let mut post = 0u32;
        let mut stack: Vec<(DocNodeId, usize)> = vec![(DocNodeId(0), 0)];
        while let Some(&mut (node, ref mut child_idx)) = stack.last_mut() {
            let kids = &self.doc.nodes[node.idx()].children;
            if *child_idx < kids.len() {
                let next = kids[*child_idx];
                *child_idx += 1;
                stack.push((next, 0));
            } else {
                self.doc.nodes[node.idx()].post = post;
                post += 1;
                stack.pop();
            }
        }
        // Label index in document order.
        for id in 0..self.doc.nodes.len() as u32 {
            let label = self.doc.nodes[id as usize].label;
            self.doc.by_label[label.idx()].push(DocNodeId(id));
        }
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// <a><b><d/></b><c/></a>
    fn small() -> Document {
        let mut b = Document::builder("a");
        let root = b.root();
        let nb = b.add_child(root, "b");
        b.add_child(nb, "d");
        b.add_child(root, "c");
        b.finish()
    }

    #[test]
    fn region_encoding_ancestorship() {
        let d = small();
        let a = d.root();
        let b = d.nodes_with_label("b")[0];
        let c = d.nodes_with_label("c")[0];
        let dd = d.nodes_with_label("d")[0];
        assert!(d.is_ancestor(a, b));
        assert!(d.is_ancestor(a, dd));
        assert!(d.is_ancestor(b, dd));
        assert!(!d.is_ancestor(b, c));
        assert!(!d.is_ancestor(dd, b));
        assert!(!d.is_ancestor(a, a), "ancestor is strict");
    }

    #[test]
    fn parent_child_relation() {
        let d = small();
        let a = d.root();
        let b = d.nodes_with_label("b")[0];
        let dd = d.nodes_with_label("d")[0];
        assert!(d.is_parent(a, b));
        assert!(d.is_parent(b, dd));
        assert!(!d.is_parent(a, dd));
    }

    #[test]
    fn descendants_are_contiguous() {
        let d = small();
        let a = d.root();
        let descs: Vec<_> = d.descendants(a).collect();
        assert_eq!(descs.len(), 3);
        let b = d.nodes_with_label("b")[0];
        let descs_b: Vec<_> = d.descendants(b).collect();
        assert_eq!(descs_b, vec![d.nodes_with_label("d")[0]]);
    }

    #[test]
    fn label_interning_and_index() {
        let mut b = Document::builder("x");
        let root = b.root();
        b.add_child(root, "y");
        b.add_child(root, "y");
        b.add_child(root, "z");
        let d = b.finish();
        assert_eq!(d.label_count(), 3);
        assert_eq!(d.nodes_with_label("y").len(), 2);
        assert_eq!(d.nodes_with_label("missing").len(), 0);
        let y = d.resolve_label("y").unwrap();
        assert_eq!(d.nodes_with_label_id(y).len(), 2);
        assert_eq!(d.label_name(y), "y");
    }

    #[test]
    fn text_handling() {
        let mut b = Document::builder("r");
        let root = b.root();
        let n = b.add_child(root, "t");
        b.set_text(n, "hello");
        b.append_text(n, " world");
        let d = b.finish();
        assert_eq!(d.text(n), Some("hello world"));
        assert_eq!(d.text(root), None);
    }

    #[test]
    fn paths_and_levels() {
        let d = small();
        let dd = d.nodes_with_label("d")[0];
        assert_eq!(d.path(dd), "a/b/d");
        assert_eq!(d.node(dd).level, 2);
        assert_eq!(d.node(d.root()).level, 0);
    }

    #[test]
    fn document_order_ids() {
        let d = small();
        // ids are pre-order: a=0, b=1, d=2, c=3
        assert_eq!(d.label_str(DocNodeId(0)), "a");
        assert_eq!(d.label_str(DocNodeId(1)), "b");
        assert_eq!(d.label_str(DocNodeId(2)), "d");
        assert_eq!(d.label_str(DocNodeId(3)), "c");
    }
}
