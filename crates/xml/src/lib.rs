//! # uxm-xml — XML substrate
//!
//! Arena-based XML *schema* and *document* trees, a small XML parser and
//! writer, and a seeded document generator. This crate is the foundation the
//! rest of the reproduction is built on: schemas are what gets matched,
//! documents are what twig queries run against.
//!
//! Design notes:
//!
//! * Both trees are flat arenas indexed by dense `u32` newtypes
//!   ([`SchemaNodeId`], [`DocNodeId`]) — no `Rc`, no reference cycles, cheap
//!   to clone and to traverse.
//! * Document nodes carry *region encoding* (`pre`, `post`, `level`), the
//!   classic prerequisite for stack-based structural joins
//!   (Al-Khalifa et al., ICDE 2002), which the twig engine relies on.
//! * Labels in documents are interned per-document ([`LabelId`]) so that the
//!   twig matcher compares integers, not strings.

//! * Labels can additionally be interned *across* schemas and documents
//!   into a session-wide [`SymbolTable`]; the query engine upstream uses
//!   this to rewrite and filter queries without touching strings.

pub mod docgen;
pub mod document;
pub mod ids;
pub mod parser;
pub mod schema;
pub mod symbol;
pub mod writer;
pub mod xsd;

pub use docgen::DocGenConfig;
pub use document::{ColumnError, Document, LabelId, PathIndex};
pub use ids::{DocNodeId, SchemaNodeId};
pub use parser::{parse_document, ParseError};
pub use schema::{Schema, SchemaNode};
pub use symbol::{Symbol, SymbolTable};
