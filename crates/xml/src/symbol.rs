//! Session-wide label interning.
//!
//! [`crate::Document`] already interns labels per document
//! ([`crate::LabelId`]); a [`SymbolTable`] does the same across a whole
//! query session — source schema, target schema, and document labels live
//! in one namespace, so query rewriting and relevance filtering can work
//! on dense `u32` symbols instead of hashing and comparing `String`s on
//! every evaluation. The `&str` APIs throughout the workspace remain and
//! act as thin shims over the symbol-based paths.

use std::collections::HashMap;
use std::fmt;

/// An interned label within one [`SymbolTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Widens to a `usize` for table indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A bidirectional `String` ↔ [`Symbol`] map.
///
/// Symbols are dense (`0..len`), so side tables indexed by symbol are
/// plain `Vec`s.
///
/// ```
/// use uxm_xml::{Symbol, SymbolTable};
/// let mut t = SymbolTable::new();
/// let a = t.intern("Order");
/// assert_eq!(t.intern("Order"), a);
/// assert_eq!(t.resolve("Order"), Some(a));
/// assert_eq!(t.name(a), "Order");
/// assert_eq!(t.resolve("missing"), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    lookup: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.lookup.get(name) {
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.lookup.insert(name.to_string(), s);
        s
    }

    /// Looks up `name` without interning.
    #[inline]
    pub fn resolve(&self, name: &str) -> Option<Symbol> {
        self.lookup.get(name).copied()
    }

    /// The string a symbol stands for.
    #[inline]
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.idx()]
    }

    /// Number of interned symbols.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(symbol, name)` in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_and_name_agree() {
        let mut t = SymbolTable::new();
        let s = t.intern("ContactName");
        assert_eq!(t.resolve("ContactName"), Some(s));
        assert_eq!(t.name(s), "ContactName");
        assert_eq!(t.resolve("contactname"), None, "case-sensitive");
    }

    #[test]
    fn iter_in_interning_order() {
        let mut t = SymbolTable::new();
        t.intern("x");
        t.intern("y");
        let all: Vec<_> = t.iter().map(|(s, n)| (s.0, n.to_string())).collect();
        assert_eq!(all, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }
}
