//! Reading schemas from a subset of W3C XML Schema (XSD).
//!
//! The e-commerce standards the paper evaluates on (XCBL, OpenTrans, CIDX,
//! …) ship as XSD files. This reader covers the structural subset the
//! matching pipeline needs — element names, nesting, and repeatability:
//!
//! * `xs:element name="…"` (any namespace prefix, or none),
//! * inline `xs:complexType` with `xs:sequence` / `xs:choice` / `xs:all`,
//! * `maxOccurs="unbounded"` or `> 1` → [`crate::schema::SchemaNode::repeatable`],
//! * `xs:element ref="…"` resolved against top-level element declarations
//!   (one level — recursive references are cut off to keep the tree
//!   finite).
//!
//! Types, attributes, facets, imports, and substitution groups are out of
//! scope; elements with a `type=` attribute and no inline content are
//! leaves.

use crate::document::Document;
use crate::ids::{DocNodeId, SchemaNodeId};
use crate::parser::{parse_document, ParseError};
use crate::schema::Schema;
use std::collections::HashMap;
use std::fmt;

/// Errors from [`Schema::from_xsd`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum XsdError {
    /// The XSD is not well-formed XML.
    Xml(ParseError),
    /// The root element is not an `xs:schema`.
    NotASchema,
    /// No top-level `xs:element` declaration found.
    NoRootElement,
    /// An `xs:element` is missing both `name` and `ref`.
    ElementWithoutName,
    /// An `xs:element ref="…"` points at no top-level declaration.
    UnresolvedRef(String),
}

impl fmt::Display for XsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsdError::Xml(e) => write!(f, "XSD is not well-formed: {e}"),
            XsdError::NotASchema => write!(f, "root element is not xs:schema"),
            XsdError::NoRootElement => write!(f, "no top-level xs:element"),
            XsdError::ElementWithoutName => write!(f, "xs:element without name or ref"),
            XsdError::UnresolvedRef(r) => write!(f, "unresolved element ref {r:?}"),
        }
    }
}

impl std::error::Error for XsdError {}

impl Schema {
    /// Parses the XSD subset described in the module docs. The first
    /// top-level `xs:element` becomes the schema root.
    pub fn from_xsd(xsd: &str) -> Result<Schema, XsdError> {
        let doc = parse_document(xsd).map_err(XsdError::Xml)?;
        if local_name(doc.label_str(doc.root())) != "schema" {
            return Err(XsdError::NotASchema);
        }
        // Top-level element declarations, for ref resolution.
        let top: Vec<DocNodeId> = doc
            .children(doc.root())
            .iter()
            .copied()
            .filter(|&c| local_name(doc.label_str(c)) == "element")
            .collect();
        let root_decl = *top.first().ok_or(XsdError::NoRootElement)?;
        let by_name: HashMap<&str, DocNodeId> = top
            .iter()
            .filter_map(|&c| doc.attr(c, "name").map(|n| (n, c)))
            .collect();

        let root_name = doc
            .attr(root_decl, "name")
            .ok_or(XsdError::ElementWithoutName)?;
        let mut schema = Schema::new("xsd", root_name);
        let root = schema.root();
        build_children(&doc, root_decl, &mut schema, root, &by_name, 0)?;
        Ok(schema)
    }
}

/// Strips an optional namespace prefix (`xs:element` → `element`).
fn local_name(label: &str) -> &str {
    label.rsplit(':').next().unwrap_or(label)
}

/// True when `maxOccurs` permits more than one instance.
fn is_repeatable(doc: &Document, el: DocNodeId) -> bool {
    match doc.attr(el, "maxOccurs") {
        Some("unbounded") => true,
        Some(n) => n.parse::<u64>().map(|v| v > 1).unwrap_or(false),
        None => false,
    }
}

/// Walks an `xs:element` declaration's content, adding child elements of
/// `parent` to the schema.
fn build_children(
    doc: &Document,
    decl: DocNodeId,
    schema: &mut Schema,
    parent: SchemaNodeId,
    by_name: &HashMap<&str, DocNodeId>,
    depth: usize,
) -> Result<(), XsdError> {
    if depth > 64 {
        return Ok(()); // recursive type: cut off
    }
    // Find xs:element descendants reachable through model-group wrappers
    // (complexType, sequence, choice, all) without crossing into nested
    // element declarations.
    let mut stack: Vec<DocNodeId> = doc.children(decl).iter().rev().copied().collect();
    while let Some(n) = stack.pop() {
        match local_name(doc.label_str(n)) {
            "complexType" | "sequence" | "choice" | "all" | "group" => {
                for &c in doc.children(n).iter().rev() {
                    stack.push(c);
                }
            }
            "element" => {
                let (name, content_decl) = match (doc.attr(n, "name"), doc.attr(n, "ref")) {
                    (Some(name), _) => (name, n),
                    (None, Some(r)) => {
                        let target = *by_name
                            .get(local_name(r))
                            .ok_or_else(|| XsdError::UnresolvedRef(r.to_string()))?;
                        let name = doc
                            .attr(target, "name")
                            .ok_or(XsdError::ElementWithoutName)?;
                        (name, target)
                    }
                    (None, None) => return Err(XsdError::ElementWithoutName),
                };
                let child = schema.add_child_full(parent, name, is_repeatable(doc, n));
                build_children(doc, content_decl, schema, child, by_name, depth + 1)?;
            }
            // annotations, attributes, simple types: ignored
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const PO_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Buyer">
          <xs:complexType><xs:sequence>
            <xs:element name="Name" type="xs:string"/>
            <xs:element name="EMail" type="xs:string" minOccurs="0"/>
          </xs:sequence></xs:complexType>
        </xs:element>
        <xs:element name="POLine" maxOccurs="unbounded">
          <xs:complexType><xs:sequence>
            <xs:element name="LineNo" type="xs:int"/>
            <xs:element name="Quantity" type="xs:int"/>
          </xs:sequence></xs:complexType>
        </xs:element>
        <xs:element ref="Note" maxOccurs="3"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="Note">
    <xs:complexType><xs:sequence>
      <xs:element name="Text" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

    #[test]
    fn parses_purchase_order_xsd() {
        let s = Schema::from_xsd(PO_XSD).unwrap();
        assert_eq!(s.label(s.root()), "Order");
        assert_eq!(
            s.to_outline(),
            "Order(Buyer(Name EMail) POLine*(LineNo Quantity) Note*(Text))"
        );
    }

    #[test]
    fn max_occurs_drives_repeatable() {
        let s = Schema::from_xsd(PO_XSD).unwrap();
        let line = s.nodes_with_label("POLine")[0];
        assert!(s.node(line).repeatable, "unbounded");
        let note = s.nodes_with_label("Note")[0];
        assert!(s.node(note).repeatable, "maxOccurs=3 > 1");
        let buyer = s.nodes_with_label("Buyer")[0];
        assert!(!s.node(buyer).repeatable);
    }

    #[test]
    fn ref_resolution() {
        let s = Schema::from_xsd(PO_XSD).unwrap();
        let note = s.nodes_with_label("Note")[0];
        assert_eq!(
            s.children(note).len(),
            1,
            "ref expands the target's content"
        );
    }

    #[test]
    fn unprefixed_schema_accepted() {
        let xsd = r#"<schema><element name="A">
            <complexType><sequence><element name="B" type="string"/></sequence></complexType>
        </element></schema>"#;
        let s = Schema::from_xsd(xsd).unwrap();
        assert_eq!(s.to_outline(), "A(B)");
    }

    #[test]
    fn choice_and_all_groups_traversed() {
        let xsd = r#"<xs:schema xmlns:xs="x"><xs:element name="R">
            <xs:complexType><xs:choice>
              <xs:element name="A" type="t"/>
              <xs:element name="B" type="t"/>
            </xs:choice></xs:complexType>
        </xs:element></xs:schema>"#;
        let s = Schema::from_xsd(xsd).unwrap();
        assert_eq!(s.to_outline(), "R(A B)");
    }

    #[test]
    fn recursive_refs_terminate() {
        let xsd = r#"<xs:schema xmlns:xs="x">
          <xs:element name="Tree">
            <xs:complexType><xs:sequence>
              <xs:element name="Value" type="t"/>
              <xs:element ref="Tree" maxOccurs="unbounded"/>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let s = Schema::from_xsd(xsd).unwrap();
        assert!(s.len() > 2, "some expansion happened");
        assert!(s.len() < 1000, "recursion was cut off");
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            Schema::from_xsd("<a/>"),
            Err(XsdError::NotASchema)
        ));
        assert!(matches!(
            Schema::from_xsd("<xs:schema xmlns:xs='x'/>"),
            Err(XsdError::NoRootElement)
        ));
        assert!(matches!(
            Schema::from_xsd("<xs:schema xmlns:xs='x'><xs:element/></xs:schema>"),
            Err(XsdError::ElementWithoutName)
        ));
        assert!(matches!(
            Schema::from_xsd(
                "<xs:schema xmlns:xs='x'><xs:element name='A'>\
                 <xs:complexType><xs:sequence><xs:element ref='Gone'/>\
                 </xs:sequence></xs:complexType></xs:element></xs:schema>"
            ),
            Err(XsdError::UnresolvedRef(_))
        ));
        assert!(matches!(Schema::from_xsd("not xml"), Err(XsdError::Xml(_))));
    }

    #[test]
    fn xsd_schema_flows_into_matcher_pipeline() {
        // End-to-end sanity: an XSD-read schema behaves like any other.
        let s = Schema::from_xsd(PO_XSD).unwrap();
        let doc = crate::document::Document::generate(&s, &crate::docgen::DocGenConfig::small(), 4);
        assert!(doc.len() >= s.len() - 1);
        assert!(!doc.nodes_with_label("Quantity").is_empty());
    }
}
