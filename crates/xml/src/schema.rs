//! XML schema trees.
//!
//! A [`Schema`] models what the paper calls a source or target schema: a
//! rooted, ordered tree of named elements. This is the granularity COMA++
//! operates at — element declarations and their nesting — so no types,
//! attributes, or occurrence constraints are modelled.

use crate::ids::SchemaNodeId;
use std::collections::HashMap;
use std::fmt;

/// One element declaration in a schema tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaNode {
    /// Element name as it appears in the schema (e.g. `CONTACT_NAME`).
    pub label: String,
    /// Parent element; `None` only for the root.
    pub parent: Option<SchemaNodeId>,
    /// Children in declaration order.
    pub children: Vec<SchemaNodeId>,
    /// Whether instance documents may repeat this element under one parent
    /// (a `maxOccurs > 1` analogue); drives document generation.
    pub repeatable: bool,
}

/// A rooted tree of element declarations.
///
/// Nodes live in a flat arena; `SchemaNodeId(0)` is the root. Ids are
/// assigned in pre-order, so a parent's id is always smaller than its
/// descendants' ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Human-readable name of the standard this schema mimics (e.g. `XCBL`).
    pub name: String,
    nodes: Vec<SchemaNode>,
}

impl Schema {
    /// Creates a schema containing only a root element.
    pub fn new(name: impl Into<String>, root_label: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            nodes: vec![SchemaNode {
                label: root_label.into(),
                parent: None,
                children: Vec::new(),
                repeatable: false,
            }],
        }
    }

    /// The root element id (always `SchemaNodeId(0)`).
    #[inline]
    pub fn root(&self) -> SchemaNodeId {
        SchemaNodeId(0)
    }

    /// Number of element declarations (the paper's `|S|` / `|T|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the schema has only a root (it can never be fully empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: SchemaNodeId) -> &SchemaNode {
        &self.nodes[id.idx()]
    }

    /// Element label of a node.
    #[inline]
    pub fn label(&self, id: SchemaNodeId) -> &str {
        &self.nodes[id.idx()].label
    }

    /// Children of `id` in declaration order.
    #[inline]
    pub fn children(&self, id: SchemaNodeId) -> &[SchemaNodeId] {
        &self.nodes[id.idx()].children
    }

    /// Parent of `id`, or `None` for the root.
    #[inline]
    pub fn parent(&self, id: SchemaNodeId) -> Option<SchemaNodeId> {
        self.nodes[id.idx()].parent
    }

    /// True when `id` has no children.
    #[inline]
    pub fn is_leaf(&self, id: SchemaNodeId) -> bool {
        self.nodes[id.idx()].children.is_empty()
    }

    /// Appends a child element under `parent` and returns its id.
    pub fn add_child(&mut self, parent: SchemaNodeId, label: impl Into<String>) -> SchemaNodeId {
        self.add_child_full(parent, label, false)
    }

    /// Sets the repeatability flag of an existing node (decoders rebuild
    /// schemas root-first and only learn the flag per stored node).
    pub fn set_repeatable(&mut self, id: SchemaNodeId, repeatable: bool) {
        self.nodes[id.idx()].repeatable = repeatable;
    }

    /// Appends a child element, also setting its repeatability flag.
    pub fn add_child_full(
        &mut self,
        parent: SchemaNodeId,
        label: impl Into<String>,
        repeatable: bool,
    ) -> SchemaNodeId {
        let id = SchemaNodeId(self.nodes.len() as u32);
        self.nodes.push(SchemaNode {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            repeatable,
        });
        self.nodes[parent.idx()].children.push(id);
        id
    }

    /// Iterates over all node ids in pre-order.
    pub fn ids(&self) -> impl Iterator<Item = SchemaNodeId> + '_ {
        (0..self.nodes.len() as u32).map(SchemaNodeId)
    }

    /// All nodes of the subtree rooted at `id`, in pre-order (including `id`).
    pub fn subtree(&self, id: SchemaNodeId) -> Vec<SchemaNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push in reverse so children pop in declaration order.
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: SchemaNodeId) -> usize {
        self.subtree(id).len()
    }

    /// Root-to-node label path joined with `.` — the paper's hash-table key
    /// (e.g. `ORDER.IP.ICN`).
    pub fn path(&self, id: SchemaNodeId) -> String {
        let mut labels = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            labels.push(self.label(n));
            cur = self.parent(n);
        }
        labels.reverse();
        labels.join(".")
    }

    /// Depth of a node; the root has depth 0.
    pub fn depth(&self, id: SchemaNodeId) -> usize {
        let mut d = 0;
        let mut cur = self.parent(id);
        while let Some(n) = cur {
            d += 1;
            cur = self.parent(n);
        }
        d
    }

    /// All nodes whose label equals `label`.
    pub fn nodes_with_label(&self, label: &str) -> Vec<SchemaNodeId> {
        self.ids().filter(|&id| self.label(id) == label).collect()
    }

    /// True when `anc` is a proper ancestor of `desc`.
    pub fn is_ancestor(&self, anc: SchemaNodeId, desc: SchemaNodeId) -> bool {
        let mut cur = self.parent(desc);
        while let Some(n) = cur {
            if n == anc {
                return true;
            }
            cur = self.parent(n);
        }
        false
    }

    /// Builds a label → node ids lookup for repeated queries.
    pub fn label_index(&self) -> HashMap<&str, Vec<SchemaNodeId>> {
        let mut map: HashMap<&str, Vec<SchemaNodeId>> = HashMap::new();
        for id in self.ids() {
            map.entry(self.label(id)).or_default().push(id);
        }
        map
    }

    /// Parses the compact outline syntax used throughout tests and examples:
    ///
    /// ```text
    /// Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity))
    /// ```
    ///
    /// `Label(children...)` nests; whitespace separates siblings; a `*`
    /// suffix marks the element repeatable. The outer label is the root.
    pub fn parse_outline(outline: &str) -> Result<Self, OutlineError> {
        let tokens = tokenize_outline(outline)?;
        let mut iter = tokens.into_iter().peekable();
        let (root_label, root_rep) = match iter.next() {
            Some(OutlineToken::Label(l, rep)) => (l, rep),
            _ => return Err(OutlineError::ExpectedLabel),
        };
        let mut schema = Schema::new("outline", root_label);
        schema.nodes[0].repeatable = root_rep;
        if let Some(OutlineToken::Open) = iter.peek() {
            iter.next();
            parse_children(&mut schema, SchemaNodeId(0), &mut iter)?;
        }
        if iter.next().is_some() {
            return Err(OutlineError::TrailingInput);
        }
        Ok(schema)
    }

    /// Renders the schema back to outline syntax (inverse of
    /// [`Schema::parse_outline`] up to whitespace).
    pub fn to_outline(&self) -> String {
        let mut out = String::new();
        self.write_outline(self.root(), &mut out);
        out
    }

    fn write_outline(&self, id: SchemaNodeId, out: &mut String) {
        out.push_str(self.label(id));
        if self.node(id).repeatable {
            out.push('*');
        }
        let kids = self.children(id);
        if !kids.is_empty() {
            out.push('(');
            for (i, &c) in kids.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                self.write_outline(c, out);
            }
            out.push(')');
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} elements]: {}",
            self.name,
            self.len(),
            self.to_outline()
        )
    }
}

/// Errors from [`Schema::parse_outline`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OutlineError {
    /// A label was expected but something else (or nothing) was found.
    ExpectedLabel,
    /// More closing parentheses than opening ones.
    UnbalancedClose,
    /// Input continued after the root element was complete.
    TrailingInput,
    /// A character that cannot appear in outline syntax.
    BadChar(char),
}

impl fmt::Display for OutlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutlineError::ExpectedLabel => write!(f, "expected element label"),
            OutlineError::UnbalancedClose => write!(f, "unbalanced ')'"),
            OutlineError::TrailingInput => write!(f, "trailing input after root element"),
            OutlineError::BadChar(c) => write!(f, "unexpected character {c:?} in outline"),
        }
    }
}

impl std::error::Error for OutlineError {}

#[derive(Debug)]
enum OutlineToken {
    Label(String, bool),
    Open,
    Close,
}

fn tokenize_outline(s: &str) -> Result<Vec<OutlineToken>, OutlineError> {
    let mut tokens = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' => {
                chars.next();
                tokens.push(OutlineToken::Open);
            }
            ')' => {
                chars.next();
                tokens.push(OutlineToken::Close);
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            c if is_label_char(c) => {
                let mut label = String::new();
                while let Some(&c) = chars.peek() {
                    if is_label_char(c) {
                        label.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let repeatable = matches!(chars.peek(), Some('*'));
                if repeatable {
                    chars.next();
                }
                tokens.push(OutlineToken::Label(label, repeatable));
            }
            other => return Err(OutlineError::BadChar(other)),
        }
    }
    Ok(tokens)
}

fn is_label_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == ':'
}

fn parse_children(
    schema: &mut Schema,
    parent: SchemaNodeId,
    iter: &mut std::iter::Peekable<std::vec::IntoIter<OutlineToken>>,
) -> Result<(), OutlineError> {
    loop {
        match iter.next() {
            Some(OutlineToken::Label(label, rep)) => {
                let id = schema.add_child_full(parent, label, rep);
                if let Some(OutlineToken::Open) = iter.peek() {
                    iter.next();
                    parse_children(schema, id, iter)?;
                }
            }
            Some(OutlineToken::Close) => return Ok(()),
            Some(OutlineToken::Open) => return Err(OutlineError::ExpectedLabel),
            None => return Err(OutlineError::UnbalancedClose),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn po() -> Schema {
        Schema::parse_outline("Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity))").unwrap()
    }

    #[test]
    fn outline_roundtrip() {
        let s = po();
        assert_eq!(
            s.to_outline(),
            "Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity))"
        );
        let again = Schema::parse_outline(&s.to_outline()).unwrap();
        assert_eq!(s.to_outline(), again.to_outline());
    }

    #[test]
    fn node_count_and_labels() {
        let s = po();
        assert_eq!(s.len(), 8);
        assert_eq!(s.label(s.root()), "Order");
        assert_eq!(s.nodes_with_label("EMail").len(), 1);
        assert_eq!(s.nodes_with_label("Nope").len(), 0);
    }

    #[test]
    fn paths_use_dot_separator() {
        let s = po();
        let email = s.nodes_with_label("EMail")[0];
        assert_eq!(s.path(email), "Order.Buyer.Contact.EMail");
        assert_eq!(s.path(s.root()), "Order");
    }

    #[test]
    fn preorder_parent_before_child() {
        let s = po();
        for id in s.ids() {
            if let Some(p) = s.parent(id) {
                assert!(p < id, "parent id must precede child id");
            }
        }
    }

    #[test]
    fn subtree_and_depth() {
        let s = po();
        let buyer = s.nodes_with_label("Buyer")[0];
        assert_eq!(s.subtree_size(buyer), 4); // Buyer, Name, Contact, EMail
        let email = s.nodes_with_label("EMail")[0];
        assert_eq!(s.depth(email), 3);
        assert!(s.is_ancestor(s.root(), email));
        assert!(s.is_ancestor(buyer, email));
        assert!(!s.is_ancestor(email, buyer));
    }

    #[test]
    fn repeatable_flag_parsed() {
        let s = po();
        let line = s.nodes_with_label("POLine")[0];
        assert!(s.node(line).repeatable);
        assert!(!s.node(s.root()).repeatable);
    }

    #[test]
    fn single_node_outline() {
        let s = Schema::parse_outline("Root").unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.is_empty());
        assert!(s.is_leaf(s.root()));
    }

    #[test]
    fn outline_errors() {
        assert_eq!(
            Schema::parse_outline("A(B").unwrap_err(),
            OutlineError::UnbalancedClose
        );
        assert_eq!(
            Schema::parse_outline("A B").unwrap_err(),
            OutlineError::TrailingInput
        );
        assert_eq!(
            Schema::parse_outline("").unwrap_err(),
            OutlineError::ExpectedLabel
        );
        assert!(matches!(
            Schema::parse_outline("A($)"),
            Err(OutlineError::BadChar('$'))
        ));
    }

    #[test]
    fn label_index_groups_duplicates() {
        let s = Schema::parse_outline("Order(BillTo(ContactName) ShipTo(ContactName))").unwrap();
        let idx = s.label_index();
        assert_eq!(idx["ContactName"].len(), 2);
        assert_eq!(idx["Order"].len(), 1);
    }
}
