//! Murty's ranking algorithm, with Pascoal et al.'s lazy-evaluation
//! improvement.
//!
//! Enumerates assignments in non-increasing score order by partitioning the
//! solution space (Murty, Operations Research 1968): after emitting the
//! best assignment of a subproblem, create one child subproblem per
//! assigned pair `(l_i, r_i)` that *fixes* pairs `1..i-1` and *forbids*
//! pair `i`. Children partition "everything except the emitted solution",
//! so no deduplication is needed.
//!
//! Two variants:
//!
//! * [`RankVariant::MurtyEager`] — children are solved on creation and
//!   enqueued with their exact scores (the classic algorithm).
//! * [`RankVariant::PascoalLazy`] — children are enqueued unsolved with an
//!   optimistic bound (the parent's score, valid since constraints only
//!   tighten) and solved when popped. Children never popped are never
//!   solved; on sparse problems this skips most of the work, which is the
//!   practical effect of the Pascoal-Captivo-Clímaco variant the paper
//!   cites as its baseline \[13\].

use crate::bipartite::{Assignment, Bipartite, LeftId, RightId};
use crate::solver::{solve_constrained, Constraints};
use std::collections::BinaryHeap;

/// Which ranking strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankVariant {
    /// Solve each child subproblem eagerly at creation.
    MurtyEager,
    /// Enqueue children with an optimistic bound; solve on pop.
    PascoalLazy,
}

/// Top-`h` assignments of `bp`, best first (Pascoal variant).
pub fn murty_top_h(bp: &Bipartite, h: usize) -> Vec<Assignment> {
    ranked_assignments(bp, h, RankVariant::PascoalLazy)
}

/// Top-`h` assignments with an explicit variant choice.
pub fn ranked_assignments(bp: &Bipartite, h: usize, variant: RankVariant) -> Vec<Assignment> {
    let mut out = Vec::with_capacity(h.min(64));
    if h == 0 || bp.n_left() == 0 {
        if h > 0 && bp.n_left() == 0 {
            out.push(Assignment {
                choice: Vec::new(),
                score: 0.0,
            });
        }
        return out;
    }

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let root_cons = Constraints::default();
    if let Some(best) = solve_constrained(bp, &root_cons) {
        heap.push(Node {
            bound: best.score,
            cons: root_cons,
            solution: Some(best),
        });
    }

    while out.len() < h {
        let Some(node) = heap.pop() else { break };
        let (solution, cons) = match node.solution {
            Some(s) => (s, node.cons),
            None => {
                // Lazy node: solve now, re-queue unless it is still the top.
                match solve_constrained(bp, &node.cons) {
                    Some(s) => {
                        if heap.peek().is_some_and(|n| n.bound > s.score) {
                            heap.push(Node {
                                bound: s.score,
                                cons: node.cons,
                                solution: Some(s),
                            });
                            continue;
                        }
                        (s, node.cons)
                    }
                    None => continue,
                }
            }
        };

        out.push(solution.clone());
        if out.len() == h {
            break;
        }

        // Branch: one child per branchable pair of the emitted solution.
        let forced_lefts: Vec<bool> = {
            let mut f = vec![false; bp.n_left()];
            for &(l, _) in &cons.forced {
                f[l as usize] = true;
            }
            f
        };
        let mut fixed_prefix: Vec<(LeftId, RightId)> = cons.forced.clone();
        for (l, &r) in solution.choice.iter().enumerate() {
            let l = l as LeftId;
            if forced_lefts[l as usize] {
                continue;
            }
            if has_alternative(bp, l, r, &cons.forbidden, &fixed_prefix) {
                let mut child = Constraints {
                    forced: fixed_prefix.clone(),
                    forbidden: cons.forbidden.clone(),
                };
                child.forbidden.push((l, r));
                match variant {
                    RankVariant::MurtyEager => {
                        if let Some(s) = solve_constrained(bp, &child) {
                            heap.push(Node {
                                bound: s.score,
                                cons: child,
                                solution: Some(s),
                            });
                        }
                    }
                    RankVariant::PascoalLazy => {
                        heap.push(Node {
                            bound: solution.score,
                            cons: child,
                            solution: None,
                        });
                    }
                }
            }
            fixed_prefix.push((l, r));
        }
    }
    out
}

/// Cheap pre-filter: branching on `(l, r)` is pointless when `l` has no
/// other option at all (the child would be trivially infeasible).
fn has_alternative(
    bp: &Bipartite,
    l: LeftId,
    r: RightId,
    forbidden: &[(LeftId, RightId)],
    fixed: &[(LeftId, RightId)],
) -> bool {
    let blocked = |rr: RightId| {
        rr == r || forbidden.contains(&(l, rr)) || fixed.iter().any(|&(_, fr)| fr == rr)
    };
    let skip = bp.skip_of(l);
    if !blocked(skip) {
        return true;
    }
    bp.adj[l as usize].iter().any(|&(rr, _)| !blocked(rr))
}

/// Heap node ordered by bound (max-heap).
struct Node {
    bound: f64,
    cons: Constraints,
    solution: Option<Assignment>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound.total_cmp(&other.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_top_h;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_bipartite(rng: &mut StdRng, max_l: usize, max_t: usize) -> Bipartite {
        let nl = rng.gen_range(1..=max_l);
        let nt = rng.gen_range(1..=max_t);
        let mut edges: Vec<Vec<(RightId, f64)>> = Vec::with_capacity(nl);
        for _ in 0..nl {
            let mut row = Vec::new();
            for r in 0..nt {
                if rng.gen_bool(0.55) {
                    row.push((r as RightId, (rng.gen_range(1..=100) as f64) / 100.0));
                }
            }
            edges.push(row);
        }
        Bipartite::from_edges(nt, edges)
    }

    #[test]
    fn ranks_match_brute_force_scores() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..40 {
            let bp = random_bipartite(&mut rng, 5, 4);
            let h = rng.gen_range(1..12);
            for variant in [RankVariant::MurtyEager, RankVariant::PascoalLazy] {
                let ranked = ranked_assignments(&bp, h, variant);
                let brute = brute_top_h(&bp, h);
                assert_eq!(ranked.len(), brute.len(), "trial {trial} {variant:?}");
                for (i, (r, b)) in ranked.iter().zip(&brute).enumerate() {
                    assert!(
                        (r.score - b.score).abs() < 1e-9,
                        "trial {trial} {variant:?} rank {i}: {} vs {}",
                        r.score,
                        b.score
                    );
                    assert!(bp.is_valid(r));
                }
            }
        }
    }

    #[test]
    fn no_duplicate_assignments() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let bp = random_bipartite(&mut rng, 4, 4);
            let ranked = murty_top_h(&bp, 20);
            let mut seen: Vec<&Vec<RightId>> = ranked.iter().map(|a| &a.choice).collect();
            seen.sort();
            let before = seen.len();
            seen.dedup();
            assert_eq!(before, seen.len(), "duplicates emitted");
        }
    }

    #[test]
    fn exhausts_solution_space() {
        // l0 shares t0 with l1: exactly 3 assignments exist.
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.5)], vec![(0, 0.4)]]);
        let ranked = murty_top_h(&bp, 10);
        assert_eq!(ranked.len(), 3);
        assert!((ranked[0].score - 0.5).abs() < 1e-12);
        assert!((ranked[1].score - 0.4).abs() < 1e-12);
        assert!((ranked[2].score - 0.0).abs() < 1e-12);
    }

    #[test]
    fn h_zero_and_empty_problem() {
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.5)]]);
        assert!(ranked_assignments(&bp, 0, RankVariant::MurtyEager).is_empty());
        let empty = Bipartite::from_edges(0, vec![]);
        let r = murty_top_h(&empty, 3);
        assert_eq!(r.len(), 1, "only the empty assignment exists");
        assert_eq!(r[0].score, 0.0);
    }

    #[test]
    fn variants_agree_on_larger_random_instances() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..5 {
            let bp = random_bipartite(&mut rng, 10, 8);
            let eager = ranked_assignments(&bp, 25, RankVariant::MurtyEager);
            let lazy = ranked_assignments(&bp, 25, RankVariant::PascoalLazy);
            assert_eq!(eager.len(), lazy.len());
            for (e, l) in eager.iter().zip(&lazy) {
                assert!((e.score - l.score).abs() < 1e-9);
            }
        }
    }
}
