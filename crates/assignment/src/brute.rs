//! Exhaustive assignment enumeration — the test oracle.
//!
//! Enumerates *every* valid assignment of a (small) bipartite problem by
//! depth-first choice per left node. Exponential; use only on instances
//! with a handful of nodes.

use crate::bipartite::{Assignment, Bipartite, RightId};

/// Enumerates all assignments, sorted by score descending (ties broken by
/// choice vector for determinism).
pub fn enumerate_all(bp: &Bipartite) -> Vec<Assignment> {
    let mut out = Vec::new();
    let mut choice: Vec<RightId> = Vec::with_capacity(bp.n_left());
    let mut used = vec![false; bp.n_targets()];
    dfs(bp, 0, 0.0, &mut choice, &mut used, &mut out);
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.choice.cmp(&b.choice)));
    out
}

/// The top-`h` assignments by exhaustive enumeration.
pub fn brute_top_h(bp: &Bipartite, h: usize) -> Vec<Assignment> {
    let mut all = enumerate_all(bp);
    all.truncate(h);
    all
}

fn dfs(
    bp: &Bipartite,
    l: usize,
    score: f64,
    choice: &mut Vec<RightId>,
    used: &mut Vec<bool>,
    out: &mut Vec<Assignment>,
) {
    if l == bp.n_left() {
        out.push(Assignment {
            choice: choice.clone(),
            score,
        });
        return;
    }
    // Option 1: a real candidate.
    for &(r, w) in &bp.adj[l] {
        if !used[r as usize] {
            used[r as usize] = true;
            choice.push(r);
            dfs(bp, l + 1, score + w, choice, used, out);
            choice.pop();
            used[r as usize] = false;
        }
    }
    // Option 2: skip.
    choice.push(bp.skip_of(l as u32));
    dfs(bp, l + 1, score, choice, used, out);
    choice.pop();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_all_assignments() {
        // 2 lefts, each with 1 disjoint candidate: 2*2 = 4 assignments
        let bp = Bipartite::from_edges(2, vec![vec![(0, 0.5)], vec![(1, 0.5)]]);
        assert_eq!(enumerate_all(&bp).len(), 4);

        // 2 lefts sharing 1 target: (t,skip),(skip,t),(skip,skip) = 3
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.5)], vec![(0, 0.4)]]);
        assert_eq!(enumerate_all(&bp).len(), 3);
    }

    #[test]
    fn sorted_descending() {
        let bp = Bipartite::from_edges(2, vec![vec![(0, 0.9), (1, 0.2)], vec![(0, 0.5)]]);
        let all = enumerate_all(&bp);
        for w in all.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // best: l0->t0 (0.9) with l1 skipped, beating l0->t1 + l1->t0 = 0.7
        assert!((all[0].score - 0.9).abs() < 1e-12);
    }

    #[test]
    fn all_enumerated_are_valid() {
        let bp = Bipartite::from_edges(
            3,
            vec![
                vec![(0, 0.9), (1, 0.4)],
                vec![(0, 0.6), (2, 0.3)],
                vec![(1, 0.8)],
            ],
        );
        for a in enumerate_all(&bp) {
            assert!(bp.is_valid(&a));
            assert!((bp.score_of(&a.choice) - a.score).abs() < 1e-12);
        }
    }

    #[test]
    fn top_h_truncates() {
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.5)], vec![(0, 0.4)]]);
        assert_eq!(brute_top_h(&bp, 2).len(), 2);
        assert_eq!(brute_top_h(&bp, 10).len(), 3);
    }
}
