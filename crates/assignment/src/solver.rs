//! Sparse max-weight assignment via successive shortest augmenting paths.
//!
//! Solves: assign every left node to one of its candidate targets or its
//! skip, no target used twice, maximizing total weight — optionally under
//! Murty-style *forced* and *forbidden* edge constraints.
//!
//! Weights in `[0, 1]` are turned into costs `1 - w ∈ [0, 1]` (every left
//! takes exactly one edge, so minimizing cost maximizes weight). With
//! non-negative costs and Johnson potentials, each augmentation is a single
//! Dijkstra over the residual graph: `O(n_left · E log V)` per full solve,
//! which is what makes Murty ranking affordable on the paper's sparse
//! matchings.

use crate::bipartite::{Assignment, Bipartite, LeftId, RightId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Murty subproblem constraints.
#[derive(Clone, Debug, Default)]
pub struct Constraints {
    /// Edges that must appear (including skip edges `(l, skip_of(l))`).
    pub forced: Vec<(LeftId, RightId)>,
    /// Edges that must not appear.
    pub forbidden: Vec<(LeftId, RightId)>,
}

/// Solves the unconstrained problem. Always feasible (skips exist).
pub fn solve(bp: &Bipartite) -> Assignment {
    solve_constrained(bp, &Constraints::default()).expect("unconstrained problem is feasible")
}

/// Solves under constraints; `None` when infeasible.
pub fn solve_constrained(bp: &Bipartite, cons: &Constraints) -> Option<Assignment> {
    let nl = bp.n_left();
    let nr = bp.n_right();

    // Apply forced edges.
    let mut fixed_choice: Vec<Option<RightId>> = vec![None; nl];
    let mut right_taken = vec![false; nr];
    let forbidden: HashSet<(LeftId, RightId)> = cons.forbidden.iter().copied().collect();
    for &(l, r) in &cons.forced {
        let valid_edge = if bp.is_skip(r) {
            r == bp.skip_of(l)
        } else {
            bp.weight(l, r).is_some()
        };
        if !valid_edge || forbidden.contains(&(l, r)) {
            return None;
        }
        if fixed_choice[l as usize].is_some() || right_taken[r as usize] {
            return None; // conflicting forcings
        }
        fixed_choice[l as usize] = Some(r);
        right_taken[r as usize] = true;
    }

    // Matching state over the free part. Rights locked by forced pairs are
    // invisible to the search entirely (no forward edge, no residual edge).
    let locked_right = right_taken;
    let mut match_left: Vec<Option<RightId>> = fixed_choice.clone();
    let mut match_right: Vec<Option<LeftId>> = vec![None; nr];
    for (l, &c) in fixed_choice.iter().enumerate() {
        if let Some(r) = c {
            match_right[r as usize] = Some(l as LeftId);
        }
    }

    // Node numbering for Dijkstra: lefts 0..nl, rights nl..nl+nr.
    let n = nl + nr;
    let mut pot = vec![0.0f64; n];
    let right_node = |r: RightId| nl + r as usize;

    // Edge cost in the minimization problem.
    let cost = |w: f64| 1.0 - w;

    for start in 0..nl {
        if match_left[start].is_some() {
            continue; // forced
        }
        // Full Dijkstra from `start` over the residual graph. The target is
        // the *free* right node minimizing true distance `dist + pot`
        // (reduced distances alone are not comparable across free rights
        // once their potentials diverge).
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<usize>> = vec![None; n];
        let mut done = vec![false; n];
        dist[start] = 0.0;
        let mut heap: BinaryHeap<Reverse<(Cost, usize)>> = BinaryHeap::new();
        heap.push(Reverse((Cost(0.0), start)));
        let mut best_free: Option<usize> = None;
        let mut best_true = f64::INFINITY;

        while let Some(Reverse((Cost(d), u))) = heap.pop() {
            if done[u] || d > dist[u] {
                continue;
            }
            done[u] = true;
            if u >= nl {
                // A right node.
                let r_idx = u - nl;
                if match_right[r_idx].is_none() {
                    let true_cost = d + pot[u];
                    if true_cost < best_true {
                        best_true = true_cost;
                        best_free = Some(u);
                    }
                    continue; // free rights have no outgoing residual edges
                }
                if locked_right[r_idx] {
                    continue; // forced pair: no residual edge
                }
                // Residual edge back along the matched pair.
                let l = match_right[r_idx].expect("matched");
                let w = edge_weight(bp, l, r_idx as RightId);
                let c = -cost(w) + pot[u] - pot[l as usize];
                relax(&mut dist, &mut prev, &mut heap, u, l as usize, d, c);
            } else {
                // A left node; forward edges to allowed rights.
                let l = u as LeftId;
                for &(r, w) in &bp.adj[u] {
                    if locked_right[r as usize]
                        || forbidden.contains(&(l, r))
                        || match_left[u] == Some(r)
                    {
                        continue;
                    }
                    let c = cost(w) + pot[u] - pot[right_node(r)];
                    relax(&mut dist, &mut prev, &mut heap, u, right_node(r), d, c);
                }
                let skip = bp.skip_of(l);
                if !forbidden.contains(&(l, skip)) && match_left[u] != Some(skip) {
                    let c = cost(0.0) + pot[u] - pot[right_node(skip)];
                    relax(&mut dist, &mut prev, &mut heap, u, right_node(skip), d, c);
                }
            }
        }

        let end = best_free?;
        // Johnson reweighting, capped at the chosen endpoint's reduced
        // distance so reduced costs stay non-negative everywhere.
        let d_end = dist[end];
        for v in 0..n {
            pot[v] += dist[v].min(d_end);
        }
        // Augment: flip along prev pointers (right<-left alternating).
        let mut v = end;
        while let Some(u) = prev[v] {
            if v >= nl {
                // u is a left matched to right v
                let r = (v - nl) as RightId;
                match_left[u] = Some(r);
                match_right[v - nl] = Some(u as LeftId);
            }
            v = u;
        }
    }

    let choice: Vec<RightId> = match_left
        .into_iter()
        .map(|c| c.expect("perfect"))
        .collect();
    let score = bp.score_of(&choice);
    if score == f64::NEG_INFINITY {
        return None;
    }
    Some(Assignment { choice, score })
}

/// Weight of `(l, r)` treating skips as 0.
fn edge_weight(bp: &Bipartite, l: LeftId, r: RightId) -> f64 {
    if bp.is_skip(r) {
        0.0
    } else {
        bp.weight(l, r).unwrap_or(0.0)
    }
}

fn relax(
    dist: &mut [f64],
    prev: &mut [Option<usize>],
    heap: &mut BinaryHeap<Reverse<(Cost, usize)>>,
    from: usize,
    to: usize,
    d_from: f64,
    edge_cost: f64,
) {
    // Guard tiny negative reduced costs from floating-point noise.
    let c = edge_cost.max(0.0);
    let nd = d_from + c;
    if nd < dist[to] {
        dist[to] = nd;
        prev[to] = Some(from);
        heap.push(Reverse((Cost(nd), to)));
    }
}

/// `f64` ordered by `total_cmp` for use in the heap.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Cost(f64);

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_best_single_edges() {
        // two lefts, one shared target: best = higher weight takes it
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.9)], vec![(0, 0.8)]]);
        let a = solve(&bp);
        assert!((a.score - 0.9).abs() < 1e-9);
        assert_eq!(a.choice[0], 0);
        assert!(bp.is_skip(a.choice[1]));
    }

    #[test]
    fn reroutes_for_global_optimum() {
        // l0: t0=0.9, t1=0.8 ; l1: t0=0.85 only.
        // Greedy l0->t0 blocks l1; optimal: l0->t1 (0.8) + l1->t0 (0.85) = 1.65
        let bp = Bipartite::from_edges(2, vec![vec![(0, 0.9), (1, 0.8)], vec![(0, 0.85)]]);
        let a = solve(&bp);
        assert!((a.score - 1.65).abs() < 1e-9, "score {}", a.score);
        assert!(bp.is_valid(&a));
    }

    #[test]
    fn skip_when_nothing_available() {
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.5)], vec![(0, 0.6)], vec![(0, 0.7)]]);
        let a = solve(&bp);
        assert!((a.score - 0.7).abs() < 1e-9);
        assert_eq!(a.choice.iter().filter(|&&r| bp.is_skip(r)).count(), 2);
    }

    #[test]
    fn forced_edge_respected() {
        let bp = Bipartite::from_edges(2, vec![vec![(0, 0.9), (1, 0.1)], vec![(0, 0.8)]]);
        let a = solve_constrained(
            &bp,
            &Constraints {
                forced: vec![(1, 0)],
                forbidden: vec![],
            },
        )
        .unwrap();
        assert_eq!(a.choice[1], 0);
        assert_eq!(a.choice[0], 1);
        assert!((a.score - 0.9).abs() < 1e-9);
    }

    #[test]
    fn forbidden_edge_respected() {
        let bp = Bipartite::from_edges(2, vec![vec![(0, 0.9), (1, 0.8)]]);
        let a = solve_constrained(
            &bp,
            &Constraints {
                forced: vec![],
                forbidden: vec![(0, 0)],
            },
        )
        .unwrap();
        assert_eq!(a.choice[0], 1);
    }

    #[test]
    fn forbidden_skip_forces_real_edge() {
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.2)], vec![(0, 0.9)]]);
        let skip0 = bp.skip_of(0);
        let a = solve_constrained(
            &bp,
            &Constraints {
                forced: vec![],
                forbidden: vec![(0, skip0)],
            },
        )
        .unwrap();
        assert_eq!(a.choice[0], 0, "l0 must take the real edge");
        assert!(bp.is_skip(a.choice[1]));
        assert!((a.score - 0.2).abs() < 1e-9);
    }

    #[test]
    fn infeasible_when_everything_forbidden() {
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.5)]]);
        let skip0 = bp.skip_of(0);
        let r = solve_constrained(
            &bp,
            &Constraints {
                forced: vec![],
                forbidden: vec![(0, 0), (0, skip0)],
            },
        );
        assert!(r.is_none());
    }

    #[test]
    fn infeasible_on_conflicting_forcings() {
        let bp = Bipartite::from_edges(1, vec![vec![(0, 0.5)], vec![(0, 0.6)]]);
        let r = solve_constrained(
            &bp,
            &Constraints {
                forced: vec![(0, 0), (1, 0)],
                forbidden: vec![],
            },
        );
        assert!(r.is_none());
        // forcing a skip is feasible (it is a real choice)
        let skip0 = bp.skip_of(0);
        let r = solve_constrained(
            &bp,
            &Constraints {
                forced: vec![(0, skip0)],
                forbidden: vec![],
            },
        )
        .unwrap();
        assert_eq!(r.choice[0], skip0);
        assert!((r.score - 0.6).abs() < 1e-9, "l1 takes the freed target");
        // forcing someone else's skip is infeasible
        let r = solve_constrained(
            &bp,
            &Constraints {
                forced: vec![(0, bp.skip_of(1))],
                forbidden: vec![],
            },
        );
        assert!(r.is_none());
        // forcing a forbidden edge is infeasible
        let r = solve_constrained(
            &bp,
            &Constraints {
                forced: vec![(0, 0)],
                forbidden: vec![(0, 0)],
            },
        );
        assert!(r.is_none());
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50 {
            let nl = rng.gen_range(1..6);
            let nt = rng.gen_range(1..5);
            let mut edges: Vec<Vec<(RightId, f64)>> = Vec::with_capacity(nl);
            for _ in 0..nl {
                let mut row = Vec::new();
                for r in 0..nt {
                    if rng.gen_bool(0.6) {
                        row.push((r as RightId, (rng.gen_range(1..=100) as f64) / 100.0));
                    }
                }
                edges.push(row);
            }
            let bp = Bipartite::from_edges(nt, edges);
            let a = solve(&bp);
            assert!(bp.is_valid(&a), "trial {trial}");
            let best = crate::brute::enumerate_all(&bp)
                .into_iter()
                .map(|x| x.score)
                .fold(0.0f64, f64::max);
            assert!(
                (a.score - best).abs() < 1e-9,
                "trial {trial}: solver {} vs brute {}",
                a.score,
                best
            );
        }
    }
}
