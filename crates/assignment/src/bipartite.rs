//! The assignment problem derived from a schema matching.
//!
//! The paper (§V-A, Fig. 7) augments the matching's bipartite graph with
//! *image* elements so that "element matches nothing" becomes an explicit
//! assignment. We realise the same semantics with one private *skip* choice
//! per source element: a possible mapping is exactly a choice, per matched
//! source element, of one of its candidate targets or of its skip — subject
//! to no target being chosen twice. Target elements left unchosen are
//! implicitly unmatched (the paper's target-image edges), so the set of
//! rankable mappings is identical while the graph stays sparse.
//!
//! Only source elements with at least one candidate participate: elements
//! the matcher found nothing for contribute a forced skip in every mapping
//! and would only pad the problem size.

use uxm_matching::SchemaMatching;
use uxm_xml::SchemaNodeId;

/// Index of a left node (participating source element).
pub type LeftId = u32;
/// Index of a right node (candidate target, or a skip; see [`Bipartite`]).
pub type RightId = u32;

/// A sparse maximization assignment problem.
///
/// Right-node index space: `0..n_targets` are real target elements;
/// `n_targets + i` is the skip of left node `i` (weight-0 edge, modelling
/// "source element `i` matches nothing").
#[derive(Clone, Debug)]
pub struct Bipartite {
    /// Source element behind each left node.
    pub left_source: Vec<SchemaNodeId>,
    /// Target element behind each real right node.
    pub right_target: Vec<SchemaNodeId>,
    /// Per left node: `(right, weight)` candidates, skip edge *not*
    /// included (it is implicit), sorted by weight descending.
    pub adj: Vec<Vec<(RightId, f64)>>,
}

/// One ranked solution: an assignment of every left node.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// For each left node, the chosen right node (may be its skip).
    pub choice: Vec<RightId>,
    /// Total weight (sum of chosen real-edge weights; skips add 0).
    pub score: f64,
}

impl Bipartite {
    /// Builds the assignment problem for a schema matching.
    pub fn from_matching(matching: &SchemaMatching) -> Bipartite {
        let targets = matching.matched_targets();
        let target_index = |t: SchemaNodeId| -> RightId {
            targets.binary_search(&t).expect("matched target") as RightId
        };
        let sources = matching.matched_sources();
        let mut adj: Vec<Vec<(RightId, f64)>> = vec![Vec::new(); sources.len()];
        for c in matching.correspondences() {
            let l = sources.binary_search(&c.source).expect("matched source");
            adj[l].push((target_index(c.target), c.score));
        }
        for edges in &mut adj {
            edges.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        Bipartite {
            left_source: sources,
            right_target: targets,
            adj,
        }
    }

    /// Builds a problem directly from index edges (tests/benches).
    /// `edges[i]` lists `(right, weight)` for left node `i`; `n_targets`
    /// is the number of real right nodes.
    pub fn from_edges(n_targets: usize, edges: Vec<Vec<(RightId, f64)>>) -> Bipartite {
        let mut adj = edges;
        for e in &mut adj {
            debug_assert!(e.iter().all(|&(r, w)| (r as usize) < n_targets && w >= 0.0));
            e.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        Bipartite {
            left_source: (0..adj.len() as u32).map(SchemaNodeId).collect(),
            right_target: (0..n_targets as u32).map(SchemaNodeId).collect(),
            adj,
        }
    }

    /// Number of left nodes.
    #[inline]
    pub fn n_left(&self) -> usize {
        self.adj.len()
    }

    /// Number of real (target) right nodes.
    #[inline]
    pub fn n_targets(&self) -> usize {
        self.right_target.len()
    }

    /// Total right-node count including one skip per left node.
    #[inline]
    pub fn n_right(&self) -> usize {
        self.n_targets() + self.n_left()
    }

    /// The skip right node of left `l`.
    #[inline]
    pub fn skip_of(&self, l: LeftId) -> RightId {
        (self.n_targets() + l as usize) as RightId
    }

    /// True iff `r` is a skip node (of any left).
    #[inline]
    pub fn is_skip(&self, r: RightId) -> bool {
        (r as usize) >= self.n_targets()
    }

    /// Number of real edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// The weight of real edge `(l, r)`, if present.
    pub fn weight(&self, l: LeftId, r: RightId) -> Option<f64> {
        self.adj[l as usize]
            .iter()
            .find(|&&(rr, _)| rr == r)
            .map(|&(_, w)| w)
    }

    /// Converts an assignment to mapping pairs `(source, target)`,
    /// skipping skip-assignments, sorted by target element.
    pub fn assignment_pairs(&self, a: &Assignment) -> Vec<(SchemaNodeId, SchemaNodeId)> {
        let mut pairs: Vec<(SchemaNodeId, SchemaNodeId)> = a
            .choice
            .iter()
            .enumerate()
            .filter(|&(_, &r)| !self.is_skip(r))
            .map(|(l, &r)| (self.left_source[l], self.right_target[r as usize]))
            .collect();
        pairs.sort_by_key(|&(s, t)| (t, s));
        pairs
    }

    /// Recomputes an assignment's score from its choices (validation).
    pub fn score_of(&self, choice: &[RightId]) -> f64 {
        choice
            .iter()
            .enumerate()
            .map(|(l, &r)| {
                if self.is_skip(r) {
                    0.0
                } else {
                    self.weight(l as LeftId, r).unwrap_or(f64::NEG_INFINITY)
                }
            })
            .sum()
    }

    /// Checks structural validity: every left assigned, no real right used
    /// twice, skips only used by their own left.
    pub fn is_valid(&self, a: &Assignment) -> bool {
        if a.choice.len() != self.n_left() {
            return false;
        }
        let mut used = vec![false; self.n_targets()];
        for (l, &r) in a.choice.iter().enumerate() {
            if self.is_skip(r) {
                if r != self.skip_of(l as LeftId) {
                    return false;
                }
            } else {
                if used[r as usize] || self.weight(l as LeftId, r).is_none() {
                    return false;
                }
                used[r as usize] = true;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uxm_matching::{Correspondence, SchemaMatching};
    use uxm_xml::Schema;

    fn sample_matching() -> SchemaMatching {
        let src = Schema::parse_outline("A(B C D E)").unwrap();
        let tgt = Schema::parse_outline("X(Y Z)").unwrap();
        let c = |s: u32, t: u32, w: f64| Correspondence {
            source: SchemaNodeId(s),
            target: SchemaNodeId(t),
            score: w,
        };
        // E (id 4) has no candidates -> not a left node.
        SchemaMatching::new(
            src,
            tgt,
            vec![
                c(1, 1, 0.9),
                c(2, 1, 0.8),
                c(2, 2, 0.7),
                c(3, 2, 0.6),
                c(0, 0, 1.0),
            ],
        )
    }

    #[test]
    fn construction_from_matching() {
        let bp = Bipartite::from_matching(&sample_matching());
        assert_eq!(bp.n_left(), 4); // A, B, C, D
        assert_eq!(bp.n_targets(), 3); // X, Y, Z
        assert_eq!(bp.edge_count(), 5);
        assert_eq!(bp.n_right(), 7);
    }

    #[test]
    fn skip_ids_are_disjoint_per_left() {
        let bp = Bipartite::from_matching(&sample_matching());
        let skips: Vec<RightId> = (0..bp.n_left() as u32).map(|l| bp.skip_of(l)).collect();
        let mut dedup = skips.clone();
        dedup.dedup();
        assert_eq!(skips, dedup);
        assert!(skips.iter().all(|&r| bp.is_skip(r)));
        assert!(!bp.is_skip(0));
    }

    #[test]
    fn adjacency_sorted_by_weight() {
        let bp = Bipartite::from_matching(&sample_matching());
        for edges in &bp.adj {
            for w in edges.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn assignment_validation_and_pairs() {
        let bp = Bipartite::from_matching(&sample_matching());
        // left order = source ids sorted: A(0),B(1),C(2),D(3)
        // assign A->X(0), B->Y(1), C->skip, D->Z(2)
        let a = Assignment {
            choice: vec![0, 1, bp.skip_of(2), 2],
            score: 1.0 + 0.9 + 0.6,
        };
        assert!(bp.is_valid(&a));
        assert!((bp.score_of(&a.choice) - a.score).abs() < 1e-12);
        let pairs = bp.assignment_pairs(&a);
        assert_eq!(pairs.len(), 3);

        // duplicate target use is invalid
        let bad = Assignment {
            choice: vec![0, 1, 1, 2],
            score: 0.0,
        };
        assert!(!bp.is_valid(&bad));
        // foreign skip is invalid
        let bad2 = Assignment {
            choice: vec![bp.skip_of(1), bp.skip_of(1), bp.skip_of(2), bp.skip_of(3)],
            score: 0.0,
        };
        assert!(!bp.is_valid(&bad2));
    }

    #[test]
    fn from_edges_roundtrip() {
        let bp = Bipartite::from_edges(2, vec![vec![(0, 0.5), (1, 0.9)], vec![(1, 0.4)]]);
        assert_eq!(bp.n_left(), 2);
        assert_eq!(bp.adj[0][0], (1, 0.9), "sorted desc by weight");
        assert_eq!(bp.weight(0, 0), Some(0.5));
        assert_eq!(bp.weight(1, 0), None);
    }
}
