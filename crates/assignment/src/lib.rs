//! # uxm-assignment — ranked bipartite assignment (paper §V)
//!
//! Derives the top-*h* possible mappings of a schema matching:
//!
//! * [`bipartite`] — the assignment problem built from a matching, with
//!   *image* nodes modelling "element matches nothing" (paper Fig. 7),
//! * [`solver`] — sparse max-weight perfect matching (successive shortest
//!   augmenting paths with potentials),
//! * [`murty`] — Murty's ranking algorithm with Pascoal et al.'s ordering
//!   improvement, enumerating assignments in non-increasing score order,
//! * [`partition`] — the paper's contribution: split the sparse bipartite
//!   into connected components, rank each, and lazily merge
//!   ([`merge`]) — about an order of magnitude faster on XML matchings,
//! * [`brute`] — exhaustive enumeration for small instances (test oracle).

pub mod bipartite;
pub mod brute;
pub mod merge;
pub mod murty;
pub mod partition;
pub mod solver;

pub use bipartite::{Assignment, Bipartite};
pub use murty::murty_top_h;
pub use partition::partition_top_h;
