//! Partition-based top-h mapping generation — the paper's §V contribution.
//!
//! A schema matching's bipartite graph is typically *sparse*: connected
//! components ("partitions", Definition 6) are small and numerous (the
//! paper reports 23–966 components on its datasets). Since components
//! share no elements, ranking can be done per component and merged:
//! the global top-h restricted to one component always lies within that
//! component's own top-h, so merging per-component top-h lists is exact.

use crate::bipartite::Bipartite;
use crate::merge::{merge_top_h, RankedMapping};
use crate::murty::{ranked_assignments, RankVariant};
use uxm_matching::{Correspondence, SchemaMatching};
use uxm_xml::SchemaNodeId;

/// One connected component of the matching's bipartite graph.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The component's correspondences.
    pub corrs: Vec<Correspondence>,
}

impl Partition {
    /// Distinct source elements of this partition.
    pub fn sources(&self) -> Vec<SchemaNodeId> {
        let mut v: Vec<SchemaNodeId> = self.corrs.iter().map(|c| c.source).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct target elements of this partition.
    pub fn targets(&self) -> Vec<SchemaNodeId> {
        let mut v: Vec<SchemaNodeId> = self.corrs.iter().map(|c| c.target).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of elements, the paper's partition "size".
    pub fn size(&self) -> usize {
        self.sources().len() + self.targets().len()
    }

    /// Builds this partition's own assignment problem.
    pub fn to_bipartite(&self) -> Bipartite {
        let sources = self.sources();
        let targets = self.targets();
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); sources.len()];
        for c in &self.corrs {
            let l = sources.binary_search(&c.source).expect("own source");
            let r = targets.binary_search(&c.target).expect("own target") as u32;
            adj[l].push((r, c.score));
        }
        for e in &mut adj {
            e.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        Bipartite {
            left_source: sources,
            right_target: targets,
            adj,
        }
    }
}

/// Splits a matching into maximal connected components (Definition 6),
/// via union-find over correspondence endpoints.
pub fn partition(matching: &SchemaMatching) -> Vec<Partition> {
    let corrs = matching.correspondences();
    if corrs.is_empty() {
        return Vec::new();
    }
    // Union-find keyed by compacted source/target indices.
    let sources = matching.matched_sources();
    let targets = matching.matched_targets();
    let n = sources.len() + targets.len();
    let mut uf = UnionFind::new(n);
    let src_idx = |s: SchemaNodeId| sources.binary_search(&s).expect("matched source");
    let tgt_idx =
        |t: SchemaNodeId| sources.len() + targets.binary_search(&t).expect("matched target");
    for c in corrs {
        uf.union(src_idx(c.source), tgt_idx(c.target));
    }
    // Group correspondences by component root.
    let mut groups: std::collections::HashMap<usize, Vec<Correspondence>> =
        std::collections::HashMap::new();
    for c in corrs {
        groups
            .entry(uf.find(src_idx(c.source)))
            .or_default()
            .push(*c);
    }
    let mut parts: Vec<Partition> = groups
        .into_values()
        .map(|corrs| Partition { corrs })
        .collect();
    // Deterministic order: by smallest target element.
    parts.sort_by_key(|p| p.corrs.iter().map(|c| (c.target, c.source)).min());
    parts
}

/// Top-`h` possible mappings via partitioning + per-component ranking +
/// lazy merge (the paper's Algorithm 5).
pub fn partition_top_h(matching: &SchemaMatching, h: usize) -> Vec<RankedMapping> {
    partition_top_h_with(matching, h, RankVariant::PascoalLazy)
}

/// [`partition_top_h`] with an explicit ranking variant.
pub fn partition_top_h_with(
    matching: &SchemaMatching,
    h: usize,
    variant: RankVariant,
) -> Vec<RankedMapping> {
    let parts = partition(matching);
    if parts.is_empty() {
        return vec![RankedMapping::empty()];
    }
    let mut acc: Vec<RankedMapping> = vec![RankedMapping::empty()];
    for p in &parts {
        let bp = p.to_bipartite();
        let ranked = ranked_assignments(&bp, h, variant);
        let mapped: Vec<RankedMapping> = ranked
            .iter()
            .map(|a| RankedMapping {
                pairs: bp.assignment_pairs(a),
                score: a.score,
            })
            .collect();
        acc = merge_top_h(&acc, &mapped, h);
    }
    acc
}

/// Whole-graph baseline: rank the full bipartite directly (paper's
/// `murty` comparator in Fig. 10(e)/(f)).
pub fn murty_top_h_mappings(
    matching: &SchemaMatching,
    h: usize,
    variant: RankVariant,
) -> Vec<RankedMapping> {
    let bp = Bipartite::from_matching(matching);
    ranked_assignments(&bp, h, variant)
        .iter()
        .map(|a| RankedMapping {
            pairs: bp.assignment_pairs(a),
            score: a.score,
        })
        .collect()
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::murty::murty_top_h;
    use uxm_xml::Schema;

    fn c(s: u32, t: u32, w: f64) -> Correspondence {
        Correspondence {
            source: SchemaNodeId(s),
            target: SchemaNodeId(t),
            score: w,
        }
    }

    /// Two disconnected components like the paper's Fig. 8.
    fn two_component_matching() -> SchemaMatching {
        let src = Schema::parse_outline("R(S1 S2 S3 S4)").unwrap();
        let tgt = Schema::parse_outline("Q(T1 T2 T3)").unwrap();
        // component A: s1,s3 ~ t1,t2 ; component B: s2,s4 ~ t3
        SchemaMatching::new(
            src,
            tgt,
            vec![
                c(1, 1, 0.9),
                c(3, 1, 0.5),
                c(3, 2, 0.8),
                c(2, 3, 0.7),
                c(4, 3, 0.6),
            ],
        )
    }

    #[test]
    fn partitions_are_maximal_and_disjoint() {
        let m = two_component_matching();
        let parts = partition(&m);
        assert_eq!(parts.len(), 2);
        let all_sources: Vec<_> = parts.iter().flat_map(|p| p.sources()).collect();
        let mut dedup = all_sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all_sources.len(), dedup.len(), "partitions share no source");
        assert_eq!(parts.iter().map(|p| p.corrs.len()).sum::<usize>(), 5);
    }

    #[test]
    fn partition_sizes_match_paper_definition() {
        let m = two_component_matching();
        let parts = partition(&m);
        let mut sizes: Vec<usize> = parts.iter().map(Partition::size).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 4]); // {s2,s4,t3} and {s1,s3,t1,t2}
    }

    #[test]
    fn partition_top_h_equals_direct_murty() {
        let m = two_component_matching();
        for h in [1, 3, 5, 10, 25] {
            let via_partition = partition_top_h(&m, h);
            let direct = murty_top_h_mappings(&m, h, RankVariant::MurtyEager);
            assert_eq!(via_partition.len(), direct.len(), "h={h}");
            for (i, (p, d)) in via_partition.iter().zip(&direct).enumerate() {
                assert!(
                    (p.score - d.score).abs() < 1e-9,
                    "h={h} rank {i}: partition {} vs murty {}",
                    p.score,
                    d.score
                );
            }
        }
    }

    #[test]
    fn partition_top_h_on_random_matchings_matches_direct() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..15 {
            let ns = rng.gen_range(2..8);
            let nt = rng.gen_range(2..6);
            let src = Schema::parse_outline(&format!(
                "R({})",
                (0..ns)
                    .map(|i| format!("S{i}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ))
            .unwrap();
            let tgt = Schema::parse_outline(&format!(
                "Q({})",
                (0..nt)
                    .map(|i| format!("T{i}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ))
            .unwrap();
            let mut corrs = Vec::new();
            for s in 1..=ns {
                for t in 1..=nt {
                    if rng.gen_bool(0.35) {
                        corrs.push(c(s, t, (rng.gen_range(1..=100) as f64) / 100.0));
                    }
                }
            }
            let m = SchemaMatching::new(src, tgt, corrs);
            if m.is_empty() {
                continue;
            }
            let h = rng.gen_range(1..12);
            let via_partition = partition_top_h(&m, h);
            let direct = murty_top_h_mappings(&m, h, RankVariant::MurtyEager);
            assert_eq!(via_partition.len(), direct.len(), "trial {trial} h={h}");
            for (i, (p, d)) in via_partition.iter().zip(&direct).enumerate() {
                assert!(
                    (p.score - d.score).abs() < 1e-9,
                    "trial {trial} h={h} rank {i}"
                );
            }
        }
    }

    #[test]
    fn empty_matching_yields_empty_mapping() {
        let src = Schema::parse_outline("R(A)").unwrap();
        let tgt = Schema::parse_outline("Q(B)").unwrap();
        let m = SchemaMatching::new(src, tgt, vec![]);
        let out = partition_top_h(&m, 5);
        assert_eq!(out.len(), 1);
        assert!(out[0].pairs.is_empty());
    }

    #[test]
    fn pairs_are_valid_mapping_functions() {
        // no source or target may appear twice within one mapping
        let m = two_component_matching();
        for rm in partition_top_h(&m, 20) {
            let mut sources: Vec<_> = rm.pairs.iter().map(|p| p.0).collect();
            sources.sort_unstable();
            let sl = sources.len();
            sources.dedup();
            assert_eq!(sl, sources.len());
            let mut targets: Vec<_> = rm.pairs.iter().map(|p| p.1).collect();
            targets.sort_unstable();
            let tl = targets.len();
            targets.dedup();
            assert_eq!(tl, targets.len());
        }
    }

    #[test]
    fn bipartite_from_partition_is_consistent() {
        let m = two_component_matching();
        let parts = partition(&m);
        for p in &parts {
            let bp = p.to_bipartite();
            assert_eq!(bp.n_left(), p.sources().len());
            assert_eq!(bp.n_targets(), p.targets().len());
            assert_eq!(bp.edge_count(), p.corrs.len());
            let top = murty_top_h(&bp, 1);
            assert_eq!(top.len(), 1);
        }
    }
}
