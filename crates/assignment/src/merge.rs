//! Merging per-partition rankings into a global top-h (paper §V-B).
//!
//! Partitions are disjoint, so a global mapping is a union of one mapping
//! per partition and its score is the sum. Given two ranked lists (best
//! first), the global top-h over their product is computed lazily with a
//! frontier heap — `O(h log h)` pairs examined instead of the full `h²`
//! product the paper's `merge` sketch materializes. The eager variant is
//! kept for the ablation bench.

use std::collections::{BinaryHeap, HashSet};
use uxm_xml::SchemaNodeId;

/// A ranked possible mapping: correspondence pairs plus the total score.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedMapping {
    /// `(source, target)` element pairs, sorted by target then source.
    pub pairs: Vec<(SchemaNodeId, SchemaNodeId)>,
    /// Sum of the correspondence scores of `pairs`.
    pub score: f64,
}

impl RankedMapping {
    /// The empty mapping (score 0).
    pub fn empty() -> Self {
        RankedMapping {
            pairs: Vec::new(),
            score: 0.0,
        }
    }

    /// Concatenates two disjoint mappings.
    pub fn union(&self, other: &RankedMapping) -> RankedMapping {
        let mut pairs = Vec::with_capacity(self.pairs.len() + other.pairs.len());
        pairs.extend_from_slice(&self.pairs);
        pairs.extend_from_slice(&other.pairs);
        pairs.sort_by_key(|&(s, t)| (t, s));
        RankedMapping {
            pairs,
            score: self.score + other.score,
        }
    }
}

/// Lazily merges two ranked lists (each sorted by score descending) into
/// the top-`h` of their pairwise unions.
pub fn merge_top_h(a: &[RankedMapping], b: &[RankedMapping], h: usize) -> Vec<RankedMapping> {
    debug_assert!(is_sorted_desc(a) && is_sorted_desc(b));
    if a.is_empty() || b.is_empty() || h == 0 {
        // An empty list means "that side has no mappings at all", which can
        // only happen for empty inputs; treat it as the identity.
        return if a.is_empty() {
            b[..b.len().min(h)].to_vec()
        } else {
            a[..a.len().min(h)].to_vec()
        };
    }
    let mut out = Vec::with_capacity(h.min(a.len() * b.len()));
    let mut heap: BinaryHeap<Frontier> = BinaryHeap::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    heap.push(Frontier {
        score: a[0].score + b[0].score,
        i: 0,
        j: 0,
    });
    seen.insert((0, 0));
    while out.len() < h {
        let Some(Frontier { i, j, .. }) = heap.pop() else {
            break;
        };
        out.push(a[i as usize].union(&b[j as usize]));
        let mut push = |i: u32, j: u32| {
            if (i as usize) < a.len() && (j as usize) < b.len() && seen.insert((i, j)) {
                heap.push(Frontier {
                    score: a[i as usize].score + b[j as usize].score,
                    i,
                    j,
                });
            }
        };
        push(i + 1, j);
        push(i, j + 1);
    }
    out
}

/// Eager variant: materializes the full product then truncates. Kept as
/// the ablation baseline corresponding to the paper's `merge` sketch.
pub fn merge_top_h_eager(a: &[RankedMapping], b: &[RankedMapping], h: usize) -> Vec<RankedMapping> {
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() {
            b[..b.len().min(h)].to_vec()
        } else {
            a[..a.len().min(h)].to_vec()
        };
    }
    let mut all: Vec<RankedMapping> = a
        .iter()
        .flat_map(|x| b.iter().map(move |y| x.union(y)))
        .collect();
    all.sort_by(|x, y| y.score.total_cmp(&x.score));
    all.truncate(h);
    all
}

fn is_sorted_desc(xs: &[RankedMapping]) -> bool {
    xs.windows(2).all(|w| w[0].score >= w[1].score - 1e-12)
}

struct Frontier {
    score: f64,
    i: u32,
    j: u32,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score.total_cmp(&other.score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(score: f64, tag: u32) -> RankedMapping {
        RankedMapping {
            pairs: vec![(SchemaNodeId(tag), SchemaNodeId(tag))],
            score,
        }
    }

    #[test]
    fn lazy_equals_eager() {
        let a = vec![rm(0.9, 1), rm(0.5, 2), rm(0.1, 3)];
        let b = vec![rm(0.8, 10), rm(0.7, 20), rm(0.0, 30)];
        for h in 1..=9 {
            let lazy = merge_top_h(&a, &b, h);
            let eager = merge_top_h_eager(&a, &b, h);
            assert_eq!(lazy.len(), eager.len(), "h={h}");
            for (l, e) in lazy.iter().zip(&eager) {
                assert!((l.score - e.score).abs() < 1e-12, "h={h}");
            }
        }
    }

    #[test]
    fn best_combination_first() {
        let a = vec![rm(0.9, 1), rm(0.5, 2)];
        let b = vec![rm(0.8, 10), rm(0.7, 20)];
        let out = merge_top_h(&a, &b, 4);
        let scores: Vec<f64> = out.iter().map(|m| m.score).collect();
        assert!((scores[0] - 1.7).abs() < 1e-12);
        assert!((scores[1] - 1.6).abs() < 1e-12);
        // then 0.5+0.8=1.3 vs 0.9+0.7... wait 0.9+0.7=1.6 emitted; next 0.5+0.8=1.3
        assert!((scores[2] - 1.3).abs() < 1e-12);
        assert!((scores[3] - 1.2).abs() < 1e-12);
    }

    #[test]
    fn union_concatenates_and_sorts_pairs() {
        let a = rm(0.5, 5);
        let b = rm(0.25, 2);
        let u = a.union(&b);
        assert_eq!(u.pairs.len(), 2);
        assert!(u.pairs[0].1 <= u.pairs[1].1);
        assert!((u.score - 0.75).abs() < 1e-12);
    }

    #[test]
    fn identity_on_empty_side() {
        let a = vec![rm(0.9, 1)];
        let out = merge_top_h(&a, &[], 5);
        assert_eq!(out.len(), 1);
        let out = merge_top_h(&[], &a, 5);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn truncates_to_h() {
        let a = vec![rm(0.9, 1), rm(0.5, 2)];
        let b = vec![rm(0.8, 3), rm(0.1, 4)];
        assert_eq!(merge_top_h(&a, &b, 2).len(), 2);
        assert_eq!(merge_top_h(&a, &b, 100).len(), 4);
    }
}
