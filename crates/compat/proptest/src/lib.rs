//! Offline stand-in for the `proptest` crate (see
//! `crates/compat/README.md`).
//!
//! Covers the subset this workspace's property tests use: the `proptest!`
//! macro, [`strategy::Strategy`] with `prop_map`, `Just`, `prop_oneof!`,
//! `collection::vec`, numeric-range / tuple / bool / string strategies,
//! and `prop_assert!` / `prop_assert_eq!`. Cases are generated from a
//! deterministic per-test seed; failing inputs are reported by case number
//! (re-runnable — same seed every run) but **not shrunk**.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.inner.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.inner.gen_range(self.clone())
        }
    }

    /// String literals act as regex strategies upstream. This stand-in
    /// ignores the pattern and generates arbitrary short strings mixing
    /// ASCII, whitespace, markup characters, and multi-byte code points —
    /// right for `".*"`-style robustness patterns, wrong for anything that
    /// relies on the regex's shape (which no test here does).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            const ALPHABET: &[char] = &[
                'a',
                'b',
                'z',
                'A',
                'Z',
                '0',
                '9',
                ' ',
                '\t',
                '\n',
                '<',
                '>',
                '/',
                '&',
                ';',
                '\'',
                '"',
                '=',
                '!',
                '?',
                '-',
                '_',
                '.',
                'é',
                'λ',
                '\u{1F600}',
                '\0',
            ];
            let len = rng.inner.gen_range(0usize..32);
            (0..len)
                .map(|_| ALPHABET[rng.inner.gen_range(0..ALPHABET.len())])
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }

    /// Strategy for `prop::bool::ANY`.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.inner.gen_bool(0.5)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specifications accepted by [`vec()`]: an exact length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.clone())
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector strategy with the given element strategy and size.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A property failure (from `prop_assert!` and friends).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The RNG handed to strategies: a seeded [`StdRng`].
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// Deterministic RNG for `(test name, case index)`.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
            }
        }
    }
}

pub mod prop {
    //! Namespaced strategies (`prop::bool::ANY`).
    pub mod bool {
        /// Uniform `true` / `false`.
        pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Runs each property over `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "property {} failed at case {case} (deterministic seed — rerun reproduces): {e}",
                        stringify!($name),
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
                            l, r, format!($($fmt)+),
                        ),
                    ));
                }
            }
        }
    };
}

/// Uniform choice among strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
