//! Offline stand-in for the `rand` crate (see `crates/compat/README.md`).
//!
//! Implements the subset this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over half-open and
//! inclusive integer ranges, and `Rng::gen_bool`. The generator is
//! SplitMix64 — deterministic per seed, statistically fine for synthetic
//! data generation, but **not** stream-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type, for [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly sampleable from a bounded interval. Keeping the range
/// impls generic over one `T` (like upstream rand) is what lets integer
/// literals in `gen_range(1..500)` infer their type.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_interval(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_interval(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval(rng: &mut dyn RngCore, lo: Self, hi: Self, _inclusive: bool) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Unbiased uniform draw in `[0, span)` via Lemire-style rejection.
fn uniform_below(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span) as u128;
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1i64..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&hits), "rough balance, got {hits}");
    }
}
