//! Offline stand-in for the `criterion` crate (see
//! `crates/compat/README.md`).
//!
//! Provides `criterion_group!` / `criterion_main!`, benchmark groups, and
//! a [`Bencher`] that, per benchmark, runs a warmup pass followed by timed
//! sample batches and prints mean and minimum time per iteration. No
//! statistics beyond that, no HTML reports, no baseline storage — but the
//! bench *functions* compile, run, and give usable timings offline.

use std::time::{Duration, Instant};

/// Benchmark driver handed to the functions in `criterion_group!`.
pub struct Criterion {
    /// Default number of timed samples per benchmark.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = name.into();
        println!("\n== group {group}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            group,
            sample_size,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().render(), self.sample_size, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Measurement time is accepted for API compatibility and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group, id.into().render());
        run_benchmark(&name, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group, id.render());
        run_benchmark(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a parameter, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{p}", self.function),
            (false, None) => self.function.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Runs the closure under timing and collects per-iteration durations.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per call batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: also serves as warmup.
    let mut calib = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    let t0 = Instant::now();
    f(&mut calib);
    let once = t0.elapsed().max(Duration::from_nanos(1));
    // Aim for ~20ms per sample, capped to keep total time bounded.
    let iters = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name:<48} (no samples — bencher.iter never called)");
        return;
    }
    let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    println!(
        "{name:<48} mean {:>12?}  min {:>12?}  ({} samples x {} iters)",
        mean,
        min,
        b.samples.len(),
        iters
    );
}

/// Re-export spot for `black_box`; upstream criterion has its own.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: a runner function invoking each benchmark
/// function with a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $fun(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
