//! Binding a pattern to a document, with per-node label *sets*.
//!
//! Query rewriting across a schema mapping (paper §IV) turns each target
//! query label into one or more source labels. Rather than multiplying the
//! query out into one pattern per label combination, the matchers here take
//! a [`ResolvedPattern`]: the original pattern structure with, per query
//! node, the set of interned document labels it may match.

use crate::pattern::{Axis, PatternNodeId, PredOp, PredTarget, TwigPattern, ValuePred};
use uxm_xml::{DocNodeId, Document, LabelId};

impl ValuePred {
    /// True iff document node `n` satisfies this predicate.
    ///
    /// The read value is the node's text content ([`PredTarget::Text`])
    /// or the named attribute ([`PredTarget::Attr`]); a node without
    /// that value satisfies nothing. Numeric comparisons parse the value
    /// as an `f64` (surrounding whitespace trimmed); a value that does
    /// not parse, or parses to `NaN`, satisfies no numeric comparison.
    pub fn accepts(&self, n: DocNodeId, doc: &Document) -> bool {
        let value = match &self.target {
            PredTarget::Text => doc.text(n),
            PredTarget::Attr(name) => doc.attr(n, name),
        };
        let Some(value) = value else {
            return false;
        };
        match &self.op {
            PredOp::Eq(want) => value == want,
            PredOp::Contains(want) => value.contains(want.as_str()),
            PredOp::Lt(x) => numeric(value).is_some_and(|v| v < *x),
            PredOp::Le(x) => numeric(value).is_some_and(|v| v <= *x),
            PredOp::Gt(x) => numeric(value).is_some_and(|v| v > *x),
            PredOp::Ge(x) => numeric(value).is_some_and(|v| v >= *x),
        }
    }
}

/// Parses a document value as a finite number for range predicates and
/// aggregates (shared so both agree byte-for-byte on what is numeric).
pub fn numeric(value: &str) -> Option<f64> {
    let v: f64 = value.trim().parse().ok()?;
    v.is_finite().then_some(v)
}

/// A pattern resolved against one document.
///
/// Two resolution modes exist:
///
/// * **label sets** (the default) — each query node carries the interned
///   labels it may match;
/// * **node candidates** — each query node carries an explicit sorted list
///   of acceptable document nodes (used by node-granularity rewriting,
///   where a mapping pins a query node to specific source schema nodes).
#[derive(Clone, Debug)]
pub struct ResolvedPattern {
    /// Parallel to the pattern's nodes: accepted interned labels, sorted.
    /// Ignored when `node_candidates` is set.
    pub allowed: Vec<Vec<LabelId>>,
    /// Explicit acceptable document nodes per query node (sorted, unique),
    /// overriding label resolution when present.
    pub node_candidates: Option<Vec<Vec<DocNodeId>>>,
    /// The underlying pattern (structure, axes, text predicates).
    pub pattern: TwigPattern,
}

/// One embedding of a pattern into a document.
///
/// `nodes[i]` is the document node matched by pattern node `i`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TwigMatch {
    /// Document nodes, indexed by pattern node id.
    pub nodes: Vec<DocNodeId>,
}

impl TwigMatch {
    /// The document node matched by the pattern root.
    pub fn root(&self) -> DocNodeId {
        self.nodes[0]
    }
}

impl ResolvedPattern {
    /// Resolves a pattern against `doc` with its own labels (the
    /// single-schema case). Returns `None` when some label does not occur
    /// in the document at all — then no match can exist. Wildcard nodes
    /// accept every label; their `allowed` entry is empty and unused.
    pub fn new(pattern: &TwigPattern, doc: &Document) -> Option<ResolvedPattern> {
        let mut allowed = Vec::with_capacity(pattern.len());
        for id in pattern.ids() {
            if pattern.node(id).is_wildcard() {
                allowed.push(Vec::new());
                continue;
            }
            let label = doc.resolve_label(&pattern.node(id).label)?;
            allowed.push(vec![label]);
        }
        Some(ResolvedPattern {
            allowed,
            node_candidates: None,
            pattern: pattern.clone(),
        })
    }

    /// Resolves a pattern with explicit acceptable document nodes per
    /// query node. Returns `None` when some node's candidate list is empty
    /// — no match can exist. Lists are sorted and deduplicated.
    pub fn with_node_candidates(
        pattern: &TwigPattern,
        candidates: Vec<Vec<DocNodeId>>,
    ) -> Option<ResolvedPattern> {
        assert_eq!(
            candidates.len(),
            pattern.len(),
            "one candidate list per query node"
        );
        let mut lists = Vec::with_capacity(candidates.len());
        for mut list in candidates {
            if list.is_empty() {
                return None;
            }
            list.sort_unstable();
            list.dedup();
            lists.push(list);
        }
        Some(ResolvedPattern {
            allowed: vec![Vec::new(); pattern.len()],
            node_candidates: Some(lists),
            pattern: pattern.clone(),
        })
    }

    /// Resolves a pattern where query node `i` may match any of
    /// `label_sets[i]` (strings). Returns `None` when some node's set has
    /// no label present in the document.
    ///
    /// This is the `&str` shim over [`ResolvedPattern::with_label_ids`];
    /// sessions that already hold interned labels (the query engine) call
    /// the id-based entry point directly and skip the string hashing here.
    pub fn with_label_sets(
        pattern: &TwigPattern,
        doc: &Document,
        label_sets: &[Vec<String>],
    ) -> Option<ResolvedPattern> {
        assert_eq!(
            label_sets.len(),
            pattern.len(),
            "one label set per query node"
        );
        let ids = label_sets
            .iter()
            .map(|set| set.iter().filter_map(|l| doc.resolve_label(l)).collect())
            .collect();
        Self::with_label_ids(pattern, ids)
    }

    /// Resolves a pattern from per-node sets of *document-interned* label
    /// ids. Returns `None` when some non-wildcard node's set is empty —
    /// then no match can exist (a wildcard node ignores its set and
    /// accepts every label). Sets are sorted and deduplicated.
    ///
    /// This is the entry point for rewritten (target → source) queries.
    pub fn with_label_ids(
        pattern: &TwigPattern,
        label_sets: Vec<Vec<LabelId>>,
    ) -> Option<ResolvedPattern> {
        assert_eq!(
            label_sets.len(),
            pattern.len(),
            "one label set per query node"
        );
        let mut allowed = Vec::with_capacity(label_sets.len());
        for (ids, id) in label_sets.into_iter().zip(pattern.ids()) {
            let mut ids = ids;
            if ids.is_empty() && !pattern.node(id).is_wildcard() {
                return None;
            }
            ids.sort_unstable();
            ids.dedup();
            allowed.push(ids);
        }
        Some(ResolvedPattern {
            allowed,
            node_candidates: None,
            pattern: pattern.clone(),
        })
    }

    /// Document nodes that pattern node `id` may match on label/candidate
    /// and value-predicate grounds alone (no structure), in document
    /// order. A wildcard node's label candidates are every document node.
    pub fn candidates(&self, id: PatternNodeId, doc: &Document) -> Vec<DocNodeId> {
        let mut out = match &self.node_candidates {
            Some(lists) => lists[id.idx()].clone(),
            None if self.pattern.node(id).is_wildcard() => doc.ids().collect(),
            None => {
                let mut v = Vec::new();
                for &label in &self.allowed[id.idx()] {
                    v.extend_from_slice(doc.nodes_with_label_id(label));
                }
                v.sort_unstable();
                v
            }
        };
        let preds = &self.pattern.node(id).preds;
        if !preds.is_empty() {
            out.retain(|&n| preds.iter().all(|p| p.accepts(n, doc)));
        }
        out
    }

    /// True iff document node `n` satisfies pattern node `id`'s
    /// label/candidate requirement and every value predicate.
    #[inline]
    pub fn node_accepts(&self, id: PatternNodeId, n: DocNodeId, doc: &Document) -> bool {
        let node_ok = match &self.node_candidates {
            Some(lists) => lists[id.idx()].binary_search(&n).is_ok(),
            None => {
                self.pattern.node(id).is_wildcard()
                    || self.allowed[id.idx()].contains(&doc.label(n))
            }
        };
        node_ok
            && self
                .pattern
                .node(id)
                .preds
                .iter()
                .all(|p| p.accepts(n, doc))
    }

    /// True iff `child_doc` stands in pattern node `child`'s axis relation
    /// to `parent_doc`.
    #[inline]
    pub fn axis_ok(
        &self,
        child: PatternNodeId,
        parent_doc: DocNodeId,
        child_doc: DocNodeId,
        doc: &Document,
    ) -> bool {
        match self.pattern.node(child).axis {
            Axis::Child => doc.is_parent(parent_doc, child_doc),
            Axis::Descendant => doc.is_ancestor(parent_doc, child_doc),
        }
    }

    /// True iff `n` is a valid position for the pattern *root* (which may
    /// be anchored at the document root for `Axis::Child`).
    #[inline]
    pub fn root_position_ok(&self, n: DocNodeId, doc: &Document) -> bool {
        match self.pattern.node(self.pattern.root()).axis {
            Axis::Child => n == doc.root(),
            Axis::Descendant => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uxm_xml::parse_document;

    fn doc() -> Document {
        parse_document("<a><b><c>x</c></b><b><c>y</c></b></a>").unwrap()
    }

    #[test]
    fn resolve_simple() {
        let d = doc();
        let q = TwigPattern::parse("a/b/c").unwrap();
        let r = ResolvedPattern::new(&q, &d).unwrap();
        assert_eq!(r.allowed.len(), 3);
        assert_eq!(r.candidates(PatternNodeId(2), &d).len(), 2);
    }

    #[test]
    fn resolve_missing_label_is_none() {
        let d = doc();
        let q = TwigPattern::parse("a/zzz").unwrap();
        assert!(ResolvedPattern::new(&q, &d).is_none());
    }

    #[test]
    fn label_sets_union_candidates() {
        let d = doc();
        let q = TwigPattern::parse("a/x").unwrap();
        let sets = vec![
            vec!["a".to_string()],
            vec!["b".to_string(), "c".to_string()],
        ];
        let r = ResolvedPattern::with_label_sets(&q, &d, &sets).unwrap();
        // node 1 may be any b or c
        assert_eq!(r.candidates(PatternNodeId(1), &d).len(), 4);
    }

    #[test]
    fn label_sets_all_missing_is_none() {
        let d = doc();
        let q = TwigPattern::parse("a/x").unwrap();
        let sets = vec![vec!["a".to_string()], vec!["nope".to_string()]];
        assert!(ResolvedPattern::with_label_sets(&q, &d, &sets).is_none());
    }

    #[test]
    fn text_predicate_filters_candidates() {
        let d = doc();
        let mut q = TwigPattern::parse("a//c").unwrap();
        q.set_text_eq(PatternNodeId(1), "x");
        let r = ResolvedPattern::new(&q, &d).unwrap();
        assert_eq!(r.candidates(PatternNodeId(1), &d).len(), 1);
    }

    #[test]
    fn label_ids_agree_with_string_shim() {
        let d = doc();
        let q = TwigPattern::parse("a/x").unwrap();
        let sets = vec![
            vec!["a".to_string()],
            vec!["b".to_string(), "c".to_string()],
        ];
        let via_str = ResolvedPattern::with_label_sets(&q, &d, &sets).unwrap();
        let ids = sets
            .iter()
            .map(|s| s.iter().filter_map(|l| d.resolve_label(l)).collect())
            .collect();
        let via_ids = ResolvedPattern::with_label_ids(&q, ids).unwrap();
        assert_eq!(via_str.allowed, via_ids.allowed);
        assert!(ResolvedPattern::with_label_ids(&q, vec![vec![], vec![]]).is_none());
    }

    #[test]
    fn wildcard_accepts_every_label() {
        let d = doc();
        let q = TwigPattern::parse("a/*/c").unwrap();
        let r = ResolvedPattern::new(&q, &d).unwrap();
        // The wildcard's candidates are all 7 nodes; node_accepts agrees.
        assert_eq!(r.candidates(PatternNodeId(1), &d).len(), d.len());
        assert!(d.ids().all(|n| r.node_accepts(PatternNodeId(1), n, &d)));
        // Empty rewrite sets are fine for wildcards, fatal otherwise.
        let sets = vec![vec!["a".into()], vec![], vec!["c".to_string()]];
        assert!(ResolvedPattern::with_label_sets(&q, &d, &sets).is_some());
    }

    #[test]
    fn value_predicates_filter_candidates() {
        let d =
            parse_document("<a><p n=\"1\">10</p><p n=\"2\">7.5</p><p>x</p><q n=\"1\">3</q></a>")
                .unwrap();
        let cands = |q: &str| {
            let q = TwigPattern::parse(q).unwrap();
            let r = ResolvedPattern::new(&q, &d).unwrap();
            r.candidates(PatternNodeId(1), &d).len()
        };
        assert_eq!(cands("a/p[.>=7.5]"), 2);
        assert_eq!(cands("a/p[.>7.5]"), 1);
        assert_eq!(cands("a/p[.<8]"), 1);
        assert_eq!(cands("a/p[.<=10]"), 2); // "x" is not numeric
        assert_eq!(cands("a/p[@n='1']"), 1);
        assert_eq!(cands("a/p[contains(.,'.')]"), 1);
        assert_eq!(cands("a/p[@n<2]"), 1);
        assert_eq!(cands("a/p[@n>=1]"), 2);
        assert_eq!(cands("a/p[.>=7.5][@n='2']"), 1); // conjunction
        let q = TwigPattern::parse("a/*[@n='1']").unwrap();
        let r = ResolvedPattern::new(&q, &d).unwrap();
        assert_eq!(r.candidates(PatternNodeId(1), &d).len(), 2); // p and q
    }

    #[test]
    fn numeric_parses_trimmed_finite_values() {
        assert_eq!(numeric(" 3.5 "), Some(3.5));
        assert_eq!(numeric("-2"), Some(-2.0));
        assert_eq!(numeric("x"), None);
        assert_eq!(numeric("NaN"), None);
        assert_eq!(numeric("inf"), None);
        assert_eq!(numeric(""), None);
    }

    #[test]
    fn root_anchoring() {
        let d = doc();
        let q_abs = TwigPattern::parse("b").unwrap(); // absolute: must be doc root
        let r = ResolvedPattern::new(&q_abs, &d).unwrap();
        let b = d.nodes_with_label("b")[0];
        assert!(!r.root_position_ok(b, &d));
        assert!(r.root_position_ok(d.root(), &d));

        let q_rel = TwigPattern::parse("//b").unwrap();
        let r = ResolvedPattern::new(&q_rel, &d).unwrap();
        assert!(r.root_position_ok(b, &d));
    }
}
