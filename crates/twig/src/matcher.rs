//! Production twig matcher: bottom-up semi-join pruning + enumeration.
//!
//! Phase 1 computes, for every pattern node in post-order, its *satisfier
//! set*: the document nodes that match the node's label/text predicate AND
//! can root an embedding of the node's whole pattern subtree. A parent's
//! candidates are filtered by probing each child's satisfier set within the
//! candidate's subtree interval (binary search — document ids are pre-order
//! ranks). This is the list-pruning idea of TwigList (Qin et al., DASFAA'07).
//!
//! Phase 2 enumerates embeddings top-down over the pruned sets only. Since
//! every satisfier is extensible by construction, the enumeration does no
//! dead-end backtracking.

use crate::pattern::{Axis, PatternNodeId};
use crate::resolve::{ResolvedPattern, TwigMatch};
use uxm_xml::{DocNodeId, Document};

/// Finds every match of `resolved` in `doc`.
///
/// Output is identical (same order, same contents) to
/// [`crate::naive::match_twig_naive`].
pub fn match_twig(doc: &Document, resolved: &ResolvedPattern) -> Vec<TwigMatch> {
    let pattern = &resolved.pattern;
    let end = doc.subtree_end_table();

    // Post-order satisfier sets (sorted by node id).
    let mut sat: Vec<Vec<DocNodeId>> = vec![Vec::new(); pattern.len()];
    let order = post_order(pattern);
    for &p in &order {
        let mut cands = resolved.candidates(p, doc);
        let children = &pattern.node(p).children;
        if !children.is_empty() {
            cands.retain(|&n| {
                children.iter().all(|&c| {
                    has_satisfier_under(doc, &end, &sat[c.idx()], n, pattern.node(c).axis)
                })
            });
        }
        sat[p.idx()] = cands;
    }

    // Enumerate top-down.
    let mut out = Vec::new();
    let mut assignment = vec![DocNodeId(0); pattern.len()];
    for &root in &sat[pattern.root().idx()] {
        if !resolved.root_position_ok(root, doc) {
            continue;
        }
        assignment[0] = root;
        let work: Vec<(PatternNodeId, PatternNodeId)> = pattern
            .node(pattern.root())
            .children
            .iter()
            .map(|&c| (c, pattern.root()))
            .collect();
        enumerate(doc, resolved, &end, &sat, &work, &mut assignment, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// True iff `sat_child` contains a node related to `n` by `axis`.
fn has_satisfier_under(
    doc: &Document,
    end: &[u32],
    sat_child: &[DocNodeId],
    n: DocNodeId,
    axis: Axis,
) -> bool {
    match axis {
        Axis::Descendant => {
            // Any satisfier with id in (n, end[n]]?
            let lo = sat_child.partition_point(|&m| m.0 <= n.0);
            lo < sat_child.len() && sat_child[lo].0 <= end[n.idx()]
        }
        Axis::Child => {
            // Probe whichever side is smaller: n's children or the set.
            let children = doc.children(n);
            if children.len() <= sat_child.len() {
                children.iter().any(|c| sat_child.binary_search(c).is_ok())
            } else {
                let lo = sat_child.partition_point(|&m| m.0 <= n.0);
                sat_child[lo..]
                    .iter()
                    .take_while(|&&m| m.0 <= end[n.idx()])
                    .any(|&m| doc.parent(m) == Some(n))
            }
        }
    }
}

/// Children of `n` (per `axis`) inside `sat_child`, in document order.
fn satisfiers_under(
    doc: &Document,
    end: &[u32],
    sat_child: &[DocNodeId],
    n: DocNodeId,
    axis: Axis,
) -> Vec<DocNodeId> {
    let lo = sat_child.partition_point(|&m| m.0 <= n.0);
    let in_subtree = sat_child[lo..]
        .iter()
        .take_while(|&&m| m.0 <= end[n.idx()])
        .copied();
    match axis {
        Axis::Descendant => in_subtree.collect(),
        Axis::Child => in_subtree.filter(|&m| doc.parent(m) == Some(n)).collect(),
    }
}

fn enumerate(
    doc: &Document,
    resolved: &ResolvedPattern,
    end: &[u32],
    sat: &[Vec<DocNodeId>],
    work: &[(PatternNodeId, PatternNodeId)],
    assignment: &mut Vec<DocNodeId>,
    out: &mut Vec<TwigMatch>,
) {
    let Some(&(child, parent)) = work.first() else {
        out.push(TwigMatch {
            nodes: assignment.clone(),
        });
        return;
    };
    let parent_doc = assignment[parent.idx()];
    let axis = resolved.pattern.node(child).axis;
    for cand in satisfiers_under(doc, end, &sat[child.idx()], parent_doc, axis) {
        assignment[child.idx()] = cand;
        let mut next: Vec<(PatternNodeId, PatternNodeId)> = work[1..].to_vec();
        for &gc in &resolved.pattern.node(child).children {
            next.push((gc, child));
        }
        enumerate(doc, resolved, end, sat, &next, assignment, out);
    }
}

/// Pattern node ids in post-order (children before parents).
fn post_order(pattern: &crate::pattern::TwigPattern) -> Vec<PatternNodeId> {
    let mut out = Vec::with_capacity(pattern.len());
    fn rec(p: &crate::pattern::TwigPattern, n: PatternNodeId, out: &mut Vec<PatternNodeId>) {
        for &c in &p.node(n).children {
            rec(p, c, out);
        }
        out.push(n);
    }
    rec(pattern, pattern.root(), &mut out);
    out
}

/// Counts matches without materializing them (used by size estimations in
/// benches; currently enumerates internally).
pub fn count_matches(doc: &Document, resolved: &ResolvedPattern) -> usize {
    match_twig(doc, resolved).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::match_twig_naive;
    use crate::pattern::TwigPattern;
    use uxm_xml::{parse_document, DocGenConfig, Schema};

    fn check(doc_xml: &str, query: &str) {
        let doc = parse_document(doc_xml).unwrap();
        let q = TwigPattern::parse(query).unwrap();
        let Some(r) = ResolvedPattern::new(&q, &doc) else {
            return;
        };
        let fast = match_twig(&doc, &r);
        let slow = match_twig_naive(&doc, &r);
        assert_eq!(fast, slow, "doc={doc_xml} q={query}");
    }

    #[test]
    fn agrees_with_naive_on_basics() {
        check("<a><b><c/></b><b><c/><c/></b></a>", "a/b/c");
        check("<a><x><b><y><c/></y></b></x></a>", "a//c");
        check("<a><b><c/></b><b><d/></b><b><c/><d/></b></a>", "a/b[./c]/d");
        check("<a><a><a/></a><a/></a>", "//a//a");
        check("<a><b/><b/></a>", "//b");
    }

    #[test]
    fn pruning_rejects_unextensible_candidates() {
        // first b has no d below, must be pruned before enumeration
        let doc = parse_document("<a><b><c/></b><b><c/><d/></b></a>").unwrap();
        let q = TwigPattern::parse("a/b[./c]/d").unwrap();
        let r = ResolvedPattern::new(&q, &doc).unwrap();
        let ms = match_twig(&doc, &r);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn agrees_with_naive_on_generated_documents() {
        let schema = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) DeliverTo(Address(City Street) Contact(EMail)) \
             POLine*(LineNo Quantity UP))",
        )
        .unwrap();
        let cfg = DocGenConfig {
            target_nodes: 300,
            max_repeat: 4,
            text_prob: 0.8,
        };
        let doc = uxm_xml::Document::generate(&schema, &cfg, 17);
        for query in [
            "Order/POLine/Quantity",
            "Order//EMail",
            "Order[./Buyer/Contact]/POLine[./LineNo]/Quantity",
            "Order/DeliverTo[./Address/City]/Contact/EMail",
            "Order//Contact/EMail",
            "//POLine[./UP]//LineNo",
            "Order/DeliverTo/Address[./City]/Street",
        ] {
            let q = TwigPattern::parse(query).unwrap();
            let Some(r) = ResolvedPattern::new(&q, &doc) else {
                continue;
            };
            let fast = match_twig(&doc, &r);
            let slow = match_twig_naive(&doc, &r);
            assert_eq!(fast, slow, "q={query}");
            assert!(!fast.is_empty(), "expected matches for {query}");
        }
    }

    #[test]
    fn label_set_queries_agree() {
        let doc = parse_document("<a><b1><c/></b1><b2><c/></b2></a>").unwrap();
        let q = TwigPattern::parse("a/b/c").unwrap();
        let sets = vec![
            vec!["a".to_string()],
            vec!["b1".to_string(), "b2".to_string()],
            vec!["c".to_string()],
        ];
        let r = ResolvedPattern::with_label_sets(&q, &doc, &sets).unwrap();
        let fast = match_twig(&doc, &r);
        let slow = match_twig_naive(&doc, &r);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 2);
    }

    #[test]
    fn text_predicates_agree() {
        let doc = parse_document("<a><n>Bob</n><n>Alice</n><m><n>Bob</n></m></a>").unwrap();
        let mut q = TwigPattern::parse("a//n").unwrap();
        q.set_text_eq(crate::pattern::PatternNodeId(1), "Bob");
        let r = ResolvedPattern::new(&q, &doc).unwrap();
        assert_eq!(match_twig(&doc, &r).len(), 2);
        assert_eq!(match_twig(&doc, &r), match_twig_naive(&doc, &r));
    }
}
