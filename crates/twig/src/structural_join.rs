//! Stack-based binary structural join (Al-Khalifa et al., ICDE 2002).
//!
//! Given two lists of document nodes sorted in document order — potential
//! *ancestors* and potential *descendants* — produce every pair standing in
//! the requested structural relation, in a single merge pass with a stack
//! of nested ancestors. This is the `stack_join` primitive of the paper's
//! Algorithm 4 (step 16).

use crate::pattern::Axis;
use uxm_xml::{DocNodeId, Document};

/// Joins `ancestors × descendants` under `axis`.
///
/// Both inputs must be strictly sorted by node id (document order) and
/// duplicate-free. Returns `(ancestor, descendant)` pairs sorted by
/// descendant, then ancestor.
///
/// Complexity: `O(|A| + |D| + |output|)` — each input node is pushed and
/// popped at most once.
pub fn structural_join(
    doc: &Document,
    ancestors: &[DocNodeId],
    descendants: &[DocNodeId],
    axis: Axis,
) -> Vec<(DocNodeId, DocNodeId)> {
    debug_assert!(
        ancestors.windows(2).all(|w| w[0] < w[1]),
        "A must be sorted+unique"
    );
    debug_assert!(
        descendants.windows(2).all(|w| w[0] < w[1]),
        "D must be sorted+unique"
    );

    let mut out = Vec::new();
    let mut stack: Vec<DocNodeId> = Vec::new();
    let mut i = 0usize;

    for &d in descendants {
        // Push every ancestor candidate that starts before d.
        while i < ancestors.len() && ancestors[i] < d {
            let a = ancestors[i];
            while let Some(&top) = stack.last() {
                if doc.is_ancestor(top, a) {
                    break;
                }
                stack.pop();
            }
            stack.push(a);
            i += 1;
        }
        // Drop stack entries that do not contain d.
        while let Some(&top) = stack.last() {
            if doc.is_ancestor(top, d) {
                break;
            }
            stack.pop();
        }
        match axis {
            Axis::Descendant => {
                // Every remaining stack entry contains d (they are nested).
                for &a in stack.iter() {
                    out.push((a, d));
                }
            }
            Axis::Child => {
                if let Some(p) = doc.parent(d) {
                    // The parent, if it is a candidate, is on the stack.
                    if stack.contains(&p) {
                        out.push((p, d));
                    }
                }
            }
        }
    }
    out.sort_unstable_by_key(|&(a, d)| (d, a));
    out
}

/// Nested-loop reference implementation, used by tests and as the ablation
/// baseline in the benchmark suite.
pub fn nested_loop_join(
    doc: &Document,
    ancestors: &[DocNodeId],
    descendants: &[DocNodeId],
    axis: Axis,
) -> Vec<(DocNodeId, DocNodeId)> {
    let mut out = Vec::new();
    for &d in descendants {
        for &a in ancestors {
            let ok = match axis {
                Axis::Child => doc.is_parent(a, d),
                Axis::Descendant => doc.is_ancestor(a, d),
            };
            if ok {
                out.push((a, d));
            }
        }
    }
    out.sort_unstable_by_key(|&(a, d)| (d, a));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uxm_xml::parse_document;

    fn nodes(doc: &Document, label: &str) -> Vec<DocNodeId> {
        doc.nodes_with_label(label).to_vec()
    }

    #[test]
    fn simple_ancestor_descendant() {
        let d = parse_document("<a><b><c/></b><b/><c/></a>").unwrap();
        let pairs = structural_join(&d, &nodes(&d, "b"), &nodes(&d, "c"), Axis::Descendant);
        assert_eq!(pairs.len(), 1);
        assert_eq!(d.label_str(pairs[0].0), "b");
        assert_eq!(d.label_str(pairs[0].1), "c");
    }

    #[test]
    fn nested_ancestors_all_reported() {
        let d = parse_document("<a><b><b><c/></b></b></a>").unwrap();
        let pairs = structural_join(&d, &nodes(&d, "b"), &nodes(&d, "c"), Axis::Descendant);
        assert_eq!(pairs.len(), 2, "both nested b's contain c");
    }

    #[test]
    fn child_axis_only_parent() {
        let d = parse_document("<a><b><x><c/></x><c/></b></a>").unwrap();
        let pairs = structural_join(&d, &nodes(&d, "b"), &nodes(&d, "c"), Axis::Child);
        assert_eq!(pairs.len(), 1);
        let desc = structural_join(&d, &nodes(&d, "b"), &nodes(&d, "c"), Axis::Descendant);
        assert_eq!(desc.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let d = parse_document("<a><b/></a>").unwrap();
        assert!(structural_join(&d, &[], &nodes(&d, "b"), Axis::Descendant).is_empty());
        assert!(structural_join(&d, &nodes(&d, "b"), &[], Axis::Descendant).is_empty());
    }

    #[test]
    fn agrees_with_nested_loop_on_random_docs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..30 {
            // random nested doc over labels a/b
            let mut xml = String::from("<r>");
            let mut open = Vec::new();
            for _ in 0..40 {
                if rng.gen_bool(0.55) || open.is_empty() {
                    let l = if rng.gen_bool(0.5) { "a" } else { "b" };
                    xml.push_str(&format!("<{l}>"));
                    open.push(l);
                } else {
                    let l = open.pop().unwrap();
                    xml.push_str(&format!("</{l}>"));
                }
            }
            while let Some(l) = open.pop() {
                xml.push_str(&format!("</{l}>"));
            }
            xml.push_str("</r>");
            let d = parse_document(&xml).unwrap();
            for axis in [Axis::Child, Axis::Descendant] {
                let fast = structural_join(&d, &nodes(&d, "a"), &nodes(&d, "b"), axis);
                let slow = nested_loop_join(&d, &nodes(&d, "a"), &nodes(&d, "b"), axis);
                assert_eq!(fast, slow, "trial {trial} axis {axis:?} xml {xml}");
            }
        }
    }

    #[test]
    fn self_join_same_label() {
        let d = parse_document("<a><a><a/></a><a/></a>").unwrap();
        let all = nodes(&d, "a");
        let pairs = structural_join(&d, &all, &all, Axis::Descendant);
        // a0 contains a1,a2,a3; a1 contains a2 => 4 pairs
        assert_eq!(pairs.len(), 4);
        let slow = nested_loop_join(&d, &all, &all, Axis::Descendant);
        assert_eq!(pairs, slow);
    }
}
