//! Exhaustive backtracking twig matcher — the correctness oracle.
//!
//! Enumerates every embedding of the pattern by assigning pattern nodes in
//! pre-order and backtracking. No pruning beyond label/axis checks, so it is
//! easy to audit; the production matcher in [`crate::matcher`] is tested for
//! equality against it.

use crate::pattern::{Axis, PatternNodeId};
use crate::resolve::{ResolvedPattern, TwigMatch};
use uxm_xml::{DocNodeId, Document};

/// Finds every match of `resolved` in `doc`.
///
/// The result is sorted (lexicographically by assigned node ids) and
/// duplicate-free; each match assigns all pattern nodes.
pub fn match_twig_naive(doc: &Document, resolved: &ResolvedPattern) -> Vec<TwigMatch> {
    let pattern = &resolved.pattern;
    let mut out = Vec::new();
    let mut assignment: Vec<DocNodeId> = vec![DocNodeId(0); pattern.len()];

    let root_candidates = resolved.candidates(pattern.root(), doc);
    for root in root_candidates {
        if !resolved.root_position_ok(root, doc) {
            continue;
        }
        assignment[0] = root;
        assign_children(doc, resolved, pattern.root(), &mut assignment, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Recursively assigns the children of pattern node `pnode` (whose document
/// node is already fixed in `assignment`), emitting complete assignments.
fn assign_children(
    doc: &Document,
    resolved: &ResolvedPattern,
    pnode: PatternNodeId,
    assignment: &mut Vec<DocNodeId>,
    out: &mut Vec<TwigMatch>,
) {
    // Find the next unassigned pattern node in pre-order: the recursion
    // assigns child branches one at a time via an explicit worklist.
    fn rec(
        doc: &Document,
        resolved: &ResolvedPattern,
        work: &[(PatternNodeId, PatternNodeId)], // (pattern child, pattern parent)
        assignment: &mut Vec<DocNodeId>,
        out: &mut Vec<TwigMatch>,
    ) {
        let Some(&(child, parent)) = work.first() else {
            out.push(TwigMatch {
                nodes: assignment.clone(),
            });
            return;
        };
        let parent_doc = assignment[parent.idx()];
        let candidates: Vec<DocNodeId> = match resolved.pattern.node(child).axis {
            Axis::Child => doc.children(parent_doc).to_vec(),
            Axis::Descendant => doc.descendants(parent_doc).collect(),
        };
        for cand in candidates {
            if !resolved.node_accepts(child, cand, doc) {
                continue;
            }
            assignment[child.idx()] = cand;
            // Append cand's own children to the worklist.
            let mut next_work: Vec<(PatternNodeId, PatternNodeId)> = work[1..].to_vec();
            for &gc in &resolved.pattern.node(child).children {
                next_work.push((gc, child));
            }
            rec(doc, resolved, &next_work, assignment, out);
        }
    }

    let work: Vec<(PatternNodeId, PatternNodeId)> = resolved
        .pattern
        .node(pnode)
        .children
        .iter()
        .map(|&c| (c, pnode))
        .collect();
    rec(doc, resolved, &work, assignment, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TwigPattern;
    use uxm_xml::parse_document;

    fn matches(doc_xml: &str, query: &str) -> Vec<TwigMatch> {
        let doc = parse_document(doc_xml).unwrap();
        let q = TwigPattern::parse(query).unwrap();
        match ResolvedPattern::new(&q, &doc) {
            Some(r) => match_twig_naive(&doc, &r),
            None => Vec::new(),
        }
    }

    #[test]
    fn linear_path_matches() {
        let ms = matches("<a><b><c/></b><b><c/><c/></b></a>", "a/b/c");
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn descendant_axis_matches_deep() {
        let ms = matches("<a><x><b><y><c/></y></b></x></a>", "a//c");
        assert_eq!(ms.len(), 1);
        let ms = matches("<a><x><b><y><c/></y></b></x></a>", "a/c");
        assert_eq!(ms.len(), 0);
    }

    #[test]
    fn branch_predicates_require_both() {
        let xml = "<a><b><c/></b><b><d/></b><b><c/><d/></b></a>";
        let ms = matches(xml, "a/b[./c]/d");
        assert_eq!(ms.len(), 1, "only the third b has both c and d");
    }

    #[test]
    fn branches_multiply_matches() {
        let xml = "<a><b><c/><c/><d/><d/></b></a>";
        let ms = matches(xml, "a/b[./c]/d");
        assert_eq!(ms.len(), 4, "2 c-choices x 2 d-choices");
    }

    #[test]
    fn text_predicate() {
        let xml = "<a><n>Bob</n><n>Alice</n></a>";
        let doc = parse_document(xml).unwrap();
        let mut q = TwigPattern::parse("a/n").unwrap();
        q.set_text_eq(crate::pattern::PatternNodeId(1), "Bob");
        let r = ResolvedPattern::new(&q, &doc).unwrap();
        let ms = match_twig_naive(&doc, &r);
        assert_eq!(ms.len(), 1);
        assert_eq!(doc.text(ms[0].nodes[1]), Some("Bob"));
    }

    #[test]
    fn absolute_root_must_be_document_root() {
        let xml = "<a><a><b/></a></a>";
        assert_eq!(matches(xml, "a/a/b").len(), 1);
        // "//a/b" can start at either a.
        assert_eq!(matches(xml, "//a/b").len(), 1);
        // "//a//b" matches from both a's.
        assert_eq!(matches(xml, "//a//b").len(), 2);
    }

    #[test]
    fn no_matches_for_missing_label() {
        assert_eq!(matches("<a><b/></a>", "a/zzz").len(), 0);
    }

    #[test]
    fn single_node_query() {
        let ms = matches("<a><b/><b/></a>", "//b");
        assert_eq!(ms.len(), 2);
        let ms = matches("<a><b/><b/></a>", "a");
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn same_label_parent_child() {
        let ms = matches("<a><a><a/></a></a>", "//a//a");
        // pairs: (a0,a1), (a0,a2), (a1,a2)
        assert_eq!(ms.len(), 3);
    }
}
