//! # uxm-twig — twig pattern queries over XML documents
//!
//! A *twig pattern* is a small tree of labelled query nodes connected by
//! parent-child (`/`) or ancestor-descendant (`//`) edges, optionally with
//! text predicates. A *match* embeds the whole pattern into a document.
//!
//! This crate provides:
//!
//! * [`pattern::TwigPattern`] — the pattern AST plus an XPath-subset parser
//!   covering the paper's query workload (Table III),
//! * [`resolve::ResolvedPattern`] — a pattern bound to a document, where
//!   each query node carries a *set* of accepted labels (this is how
//!   query rewriting across schema mappings is realised upstream),
//! * [`naive`] — an exhaustive backtracking matcher (the test oracle),
//! * [`matcher`] — the production matcher: bottom-up semi-join pruning in
//!   the style of TwigList, followed by enumeration over pruned candidates,
//! * [`structural_join`] — the stack-based binary structural join of
//!   Al-Khalifa et al., used by the block-tree PTQ evaluator when it splits
//!   a query and re-joins sub-results (paper §IV-B).

pub mod matcher;
pub mod naive;
pub mod pattern;
pub mod resolve;
pub mod structural_join;

pub use matcher::match_twig;
pub use naive::match_twig_naive;
pub use pattern::{
    Axis, PatternNodeId, PredOp, PredTarget, TwigParseError, TwigPattern, ValuePred,
};
pub use resolve::{ResolvedPattern, TwigMatch};
