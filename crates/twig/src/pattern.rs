//! Twig pattern AST and parser.
//!
//! The grammar covers the queries in the paper's Table III plus value
//! predicates and the wildcard label (see `docs/query-language.md`):
//!
//! ```text
//! query     := ('/' | '//')? step ( ('/' | '//') step )*
//! step      := label predicate*
//! label     := name | '*'
//! predicate := '[' relpath ']' | '[' valuepred ']'
//! relpath   := ('./' | './/') step ( ('/' | '//') step )*
//! valuepred := target '=' quoted
//!            | target cmp number
//!            | 'contains(' target ',' quoted ')'
//! target    := '.' | 'text()' | '@' name
//! cmp       := '<' | '<=' | '>' | '>='
//! quoted    := '\'' value '\''
//! ```
//!
//! Examples: `Order/DeliverTo/Address[./City][./Country]/Street`,
//! `Order[./Buyer/Contact][./DeliverTo//City]//BPID`, `//IP//ICN`,
//! `Order//UP[.>=10]`, `//*[@id='b7']/Quantity`,
//! `Order//City[contains(.,'Ber')]`.
//!
//! `text()` is a synonym for `.`; the canonical rendering (what
//! [`TwigPattern`]'s `Display` emits) always uses `.`. Numeric literals
//! render via Rust's shortest-round-trip `f64` formatting, so one
//! parse→display trip is a fixpoint (`[.<3.50]` canonicalizes to
//! `[.<3.5]` and stays there).

use std::fmt;

/// Index of a node within a [`TwigPattern`]; the root is 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PatternNodeId(pub u32);

impl PatternNodeId {
    /// Widens to a `usize` for arena indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Structural relation between a pattern node and its parent (or, for the
/// root, between the root and the document).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Axis {
    /// `/`: parent-child. For the root: must be the document root.
    Child,
    /// `//`: ancestor-descendant. For the root: may occur anywhere.
    Descendant,
}

/// What a value predicate reads off the matched document node.
#[derive(Clone, Debug, PartialEq)]
pub enum PredTarget {
    /// The element's text content (`.` / `text()` in the grammar).
    Text,
    /// The named attribute's value (`@name` in the grammar).
    Attr(String),
}

/// The comparison a value predicate applies to the read value.
///
/// String comparisons ([`PredOp::Eq`], [`PredOp::Contains`]) are exact
/// byte comparisons. Numeric comparisons parse the document value as an
/// `f64` first; a value that is absent, non-numeric, or `NaN` never
/// satisfies a numeric comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum PredOp {
    /// `= 'v'` — the value equals the literal exactly.
    Eq(String),
    /// `contains(_, 'v')` — the value contains the literal as a substring.
    Contains(String),
    /// `< n` — the value parses as a number strictly below `n`.
    Lt(f64),
    /// `<= n`.
    Le(f64),
    /// `> n`.
    Gt(f64),
    /// `>= n`.
    Ge(f64),
}

/// A value predicate attached to one pattern node: a read target plus a
/// comparison. A node may carry several; all must hold (conjunction).
#[derive(Clone, Debug, PartialEq)]
pub struct ValuePred {
    /// What to read from the matched document node.
    pub target: PredTarget,
    /// The comparison to apply.
    pub op: PredOp,
}

/// One node of a twig pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternNode {
    /// Element label this node requires (before any query rewriting), or
    /// `"*"` for the wildcard, which matches any label.
    pub label: String,
    /// Relation to the parent pattern node (or to the document, for root).
    pub axis: Axis,
    /// Parent pattern node; `None` for the root.
    pub parent: Option<PatternNodeId>,
    /// Child pattern nodes (spine continuation and predicate branches).
    pub children: Vec<PatternNodeId>,
    /// Value predicates on the matched node (conjunction; empty = none).
    pub preds: Vec<ValuePred>,
}

impl PatternNode {
    /// True for the wildcard label `*`, which matches any element label.
    #[inline]
    pub fn is_wildcard(&self) -> bool {
        self.label == "*"
    }

    /// The node's text-equality literal, when its predicates are exactly
    /// the classic `[.='v']` form (compatibility accessor).
    pub fn text_eq(&self) -> Option<&str> {
        self.preds.iter().find_map(|p| match (&p.target, &p.op) {
            (PredTarget::Text, PredOp::Eq(v)) => Some(v.as_str()),
            _ => None,
        })
    }
}

/// A parsed twig pattern.
///
/// ```
/// use uxm_twig::TwigPattern;
/// let q = TwigPattern::parse("Order/POLine[./LineNo]//UP").unwrap();
/// assert_eq!(q.len(), 4);
/// assert_eq!(q.node(q.root()).label, "Order");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TwigPattern {
    nodes: Vec<PatternNode>,
}

impl TwigPattern {
    /// The root pattern node (always id 0).
    #[inline]
    pub fn root(&self) -> PatternNodeId {
        PatternNodeId(0)
    }

    /// Number of query nodes (the paper's `l`).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the pattern is a single node.
    #[inline]
    pub fn is_leaf_only(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Never true — a pattern has at least its root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: PatternNodeId) -> &PatternNode {
        &self.nodes[id.idx()]
    }

    /// All node ids in pre-order (parents before children).
    pub fn ids(&self) -> impl Iterator<Item = PatternNodeId> + '_ {
        (0..self.nodes.len() as u32).map(PatternNodeId)
    }

    /// The distinct labels used by the pattern.
    pub fn labels(&self) -> Vec<&str> {
        let mut ls: Vec<&str> = self.nodes.iter().map(|n| n.label.as_str()).collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Number of edges (`|E|` in the paper's cost analysis).
    pub fn edge_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Builds a single-node pattern.
    pub fn single(label: impl Into<String>, axis: Axis) -> Self {
        TwigPattern {
            nodes: vec![PatternNode {
                label: label.into(),
                axis,
                parent: None,
                children: Vec::new(),
                preds: Vec::new(),
            }],
        }
    }

    /// Appends a child query node and returns its id.
    pub fn add_child(
        &mut self,
        parent: PatternNodeId,
        label: impl Into<String>,
        axis: Axis,
    ) -> PatternNodeId {
        let id = PatternNodeId(self.nodes.len() as u32);
        self.nodes.push(PatternNode {
            label: label.into(),
            axis,
            parent: Some(parent),
            children: Vec::new(),
            preds: Vec::new(),
        });
        self.nodes[parent.idx()].children.push(id);
        id
    }

    /// Attaches a value predicate to a node (conjunction with any
    /// predicates already present).
    pub fn add_pred(&mut self, id: PatternNodeId, pred: ValuePred) {
        self.nodes[id.idx()].preds.push(pred);
    }

    /// Sets a text-equality predicate on a node — shorthand for
    /// [`TwigPattern::add_pred`] with the classic `[.='v']` form.
    pub fn set_text_eq(&mut self, id: PatternNodeId, value: impl Into<String>) {
        self.add_pred(
            id,
            ValuePred {
                target: PredTarget::Text,
                op: PredOp::Eq(value.into()),
            },
        );
    }

    /// The spine leaf: from the root, repeatedly the last child — the
    /// node the canonical rendering ends on. Aggregate queries read
    /// their value (text content) off this node's match.
    pub fn spine_leaf(&self) -> PatternNodeId {
        let mut at = self.root();
        while let Some(&last) = self.node(at).children.last() {
            at = last;
        }
        at
    }

    /// Overrides a node's axis. Query decomposition uses this to relax an
    /// extracted subquery's root to `//` (the parent edge is re-imposed by
    /// the structural join).
    pub fn set_axis(&mut self, id: PatternNodeId, axis: Axis) {
        self.nodes[id.idx()].axis = axis;
    }

    /// Extracts the subpattern rooted at `id` as a standalone pattern
    /// (used by the block-tree evaluator's query splitting). The extracted
    /// root keeps `id`'s axis.
    pub fn subpattern(&self, id: PatternNodeId) -> TwigPattern {
        self.subpattern_with_map(id).0
    }

    /// Like [`TwigPattern::subpattern`], also returning, for each node of
    /// the extracted pattern, its id in `self` — so sub-results can be
    /// stitched back into whole-pattern matches.
    pub fn subpattern_with_map(&self, id: PatternNodeId) -> (TwigPattern, Vec<PatternNodeId>) {
        let mut out = TwigPattern::single(self.node(id).label.clone(), self.node(id).axis);
        out.nodes[0].preds = self.node(id).preds.clone();
        let mut map = vec![id];
        self.copy_children_mapped(id, &mut out, PatternNodeId(0), &mut map);
        (out, map)
    }

    fn copy_children_mapped(
        &self,
        from: PatternNodeId,
        out: &mut TwigPattern,
        to: PatternNodeId,
        map: &mut Vec<PatternNodeId>,
    ) {
        for &c in &self.node(from).children {
            let n = self.node(c);
            let new_id = out.add_child(to, n.label.clone(), n.axis);
            out.nodes[new_id.idx()].preds = n.preds.clone();
            map.push(c);
            self.copy_children_mapped(c, out, new_id, map);
        }
    }

    /// A pattern containing only `id`'s label/axis/predicates (used for
    /// the `q0` root-only subquery in Algorithm 4).
    pub fn node_only(&self, id: PatternNodeId) -> TwigPattern {
        let mut out = TwigPattern::single(self.node(id).label.clone(), self.node(id).axis);
        out.nodes[0].preds = self.node(id).preds.clone();
        out
    }

    /// Parses the XPath subset described in the module docs.
    pub fn parse(input: &str) -> Result<Self, TwigParseError> {
        let mut p = PatternParser {
            input: input.as_bytes(),
            pos: 0,
        };
        let pattern = p.parse_query()?;
        if p.pos < p.input.len() {
            return Err(TwigParseError::Trailing(p.pos));
        }
        Ok(pattern)
    }
}

impl fmt::Display for TwigPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_node(self, self.root(), f, true)
    }
}

fn write_node(
    q: &TwigPattern,
    id: PatternNodeId,
    f: &mut fmt::Formatter<'_>,
    is_root: bool,
) -> fmt::Result {
    let n = q.node(id);
    if is_root {
        if n.axis == Axis::Descendant {
            write!(f, "//")?;
        }
    } else {
        match n.axis {
            Axis::Child => write!(f, "/")?,
            Axis::Descendant => write!(f, "//")?,
        }
    }
    write!(f, "{}", n.label)?;
    for p in &n.preds {
        write!(f, "[{p}]")?;
    }
    // All children but the last render as predicates; the last continues
    // the spine. (A canonical, re-parseable rendering.)
    let kids = &n.children;
    if kids.is_empty() {
        return Ok(());
    }
    for &c in &kids[..kids.len() - 1] {
        write!(f, "[.")?;
        write_node(q, c, f, false)?;
        write!(f, "]")?;
    }
    write_node(q, kids[kids.len() - 1], f, false)
}

impl fmt::Display for PredTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredTarget::Text => write!(f, "."),
            PredTarget::Attr(name) => write!(f, "@{name}"),
        }
    }
}

impl fmt::Display for ValuePred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = &self.target;
        match &self.op {
            PredOp::Eq(v) => write!(f, "{t}='{v}'"),
            PredOp::Contains(v) => write!(f, "contains({t},'{v}')"),
            PredOp::Lt(n) => write!(f, "{t}<{n}"),
            PredOp::Le(n) => write!(f, "{t}<={n}"),
            PredOp::Gt(n) => write!(f, "{t}>{n}"),
            PredOp::Ge(n) => write!(f, "{t}>={n}"),
        }
    }
}

/// Errors from [`TwigPattern::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwigParseError {
    /// A label was expected at the given byte offset.
    ExpectedLabel(usize),
    /// `]` was expected at the given byte offset.
    ExpectedClose(usize),
    /// Malformed text predicate at the given byte offset.
    BadPredicate(usize),
    /// Input continued past a complete query.
    Trailing(usize),
    /// The query string was empty.
    Empty,
}

impl fmt::Display for TwigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwigParseError::ExpectedLabel(p) => write!(f, "expected label at byte {p}"),
            TwigParseError::ExpectedClose(p) => write!(f, "expected ']' at byte {p}"),
            TwigParseError::BadPredicate(p) => write!(f, "malformed predicate at byte {p}"),
            TwigParseError::Trailing(p) => write!(f, "trailing input at byte {p}"),
            TwigParseError::Empty => write!(f, "empty query"),
        }
    }
}

impl std::error::Error for TwigParseError {}

struct PatternParser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> PatternParser<'a> {
    fn parse_query(&mut self) -> Result<TwigPattern, TwigParseError> {
        let root_axis = self.read_axis().unwrap_or(Axis::Child);
        let label = self.read_label()?;
        let mut q = TwigPattern::single(label, root_axis);
        self.parse_step_suffix(&mut q, PatternNodeId(0))?;
        self.parse_spine(&mut q, PatternNodeId(0))?;
        Ok(q)
    }

    /// Parses the rest of a path after `at`: (`/`|`//`) step ...
    fn parse_spine(
        &mut self,
        q: &mut TwigPattern,
        mut at: PatternNodeId,
    ) -> Result<(), TwigParseError> {
        while let Some(axis) = self.read_axis() {
            let label = self.read_label()?;
            at = q.add_child(at, label, axis);
            self.parse_step_suffix(q, at)?;
        }
        Ok(())
    }

    /// Parses zero or more `[...]` predicates attached to `at`.
    fn parse_step_suffix(
        &mut self,
        q: &mut TwigPattern,
        at: PatternNodeId,
    ) -> Result<(), TwigParseError> {
        while self.peek() == Some(b'[') {
            self.pos += 1;
            self.parse_predicate(q, at)?;
            if self.peek() != Some(b']') {
                return Err(TwigParseError::ExpectedClose(self.pos));
            }
            self.pos += 1;
        }
        Ok(())
    }

    fn parse_predicate(
        &mut self,
        q: &mut TwigPattern,
        at: PatternNodeId,
    ) -> Result<(), TwigParseError> {
        // contains(target,'v')
        if self.try_consume("contains(") {
            let target = self
                .try_read_pred_target()?
                .ok_or(TwigParseError::BadPredicate(self.pos))?;
            if !self.try_consume(",") {
                return Err(TwigParseError::BadPredicate(self.pos));
            }
            let v = self.read_quoted()?;
            if !self.try_consume(")") {
                return Err(TwigParseError::BadPredicate(self.pos));
            }
            q.add_pred(
                at,
                ValuePred {
                    target,
                    op: PredOp::Contains(v),
                },
            );
            return Ok(());
        }
        // value predicate: target ('=' quoted | cmp number)
        if let Some(target) = self.try_read_pred_target()? {
            let op = self.read_pred_op()?;
            q.add_pred(at, ValuePred { target, op });
            return Ok(());
        }
        // relative path: ./step...  or  .//step...  or  //step  or  step
        let axis = if self.try_consume(".//") || self.try_consume("//") {
            Axis::Descendant
        } else if self.try_consume("./")
            || self.try_consume("/")
            || self.peek().is_some_and(is_label_byte)
            || self.peek() == Some(b'*')
        {
            Axis::Child
        } else {
            return Err(TwigParseError::BadPredicate(self.pos));
        };
        let label = self.read_label()?;
        let child = q.add_child(at, label, axis);
        self.parse_step_suffix(q, child)?;
        self.parse_spine(q, child)?;
        Ok(())
    }

    /// Consumes a value-predicate read target (`@name` always; `.` or
    /// `text()` only when a comparison operator follows, so `./step`
    /// relative paths stay untouched). Returns `Ok(None)` when the input
    /// is not a value target.
    fn try_read_pred_target(&mut self) -> Result<Option<PredTarget>, TwigParseError> {
        if self.peek() == Some(b'@') {
            self.pos += 1;
            let name = self
                .read_label()
                .map_err(|_| TwigParseError::BadPredicate(self.pos))?;
            return Ok(Some(PredTarget::Attr(name)));
        }
        let at = |n: usize| self.input.get(self.pos + n).copied();
        let op_or_comma = |c: Option<u8>| matches!(c, Some(b'=' | b'<' | b'>' | b','));
        if self.input[self.pos..].starts_with(b"text()") && op_or_comma(at(6)) {
            self.pos += 6;
            return Ok(Some(PredTarget::Text));
        }
        if self.peek() == Some(b'.') && op_or_comma(at(1)) {
            self.pos += 1;
            return Ok(Some(PredTarget::Text));
        }
        Ok(None)
    }

    /// Consumes a value-predicate comparison: `=` with a quoted string,
    /// or `<` / `<=` / `>` / `>=` with a number literal.
    fn read_pred_op(&mut self) -> Result<PredOp, TwigParseError> {
        if self.try_consume("=") {
            return Ok(PredOp::Eq(self.read_quoted()?));
        }
        for (token, make) in [
            ("<=", PredOp::Le as fn(f64) -> PredOp),
            ("<", PredOp::Lt),
            (">=", PredOp::Ge),
            (">", PredOp::Gt),
        ] {
            if self.try_consume(token) {
                return Ok(make(self.read_number()?));
            }
        }
        Err(TwigParseError::BadPredicate(self.pos))
    }

    /// Reads a number literal: optional `-`, digits, optional `.` digits.
    fn read_number(&mut self) -> Result<f64, TwigParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .ok_or(TwigParseError::BadPredicate(start))
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn try_consume(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn read_axis(&mut self) -> Option<Axis> {
        if self.try_consume("//") {
            Some(Axis::Descendant)
        } else if self.try_consume("/") {
            Some(Axis::Child)
        } else {
            None
        }
    }

    fn read_label(&mut self) -> Result<String, TwigParseError> {
        if self.peek() == Some(b'*') {
            self.pos += 1;
            return Ok("*".to_string());
        }
        let start = self.pos;
        while self.peek().is_some_and(is_label_byte) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(if self.input.is_empty() {
                TwigParseError::Empty
            } else {
                TwigParseError::ExpectedLabel(start)
            });
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn read_quoted(&mut self) -> Result<String, TwigParseError> {
        let start = self.pos;
        if self.peek() != Some(b'\'') {
            return Err(TwigParseError::BadPredicate(start));
        }
        self.pos += 1;
        let vstart = self.pos;
        while let Some(c) = self.peek() {
            if c == b'\'' {
                let v = String::from_utf8_lossy(&self.input[vstart..self.pos]).into_owned();
                self.pos += 1;
                return Ok(v);
            }
            self.pos += 1;
        }
        Err(TwigParseError::BadPredicate(start))
    }
}

fn is_label_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') && c != b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_linear_path() {
        let q = TwigPattern::parse("Order/DeliverTo/Contact/EMail").unwrap();
        assert_eq!(q.len(), 4);
        let labels: Vec<_> = q.ids().map(|id| q.node(id).label.clone()).collect();
        assert_eq!(labels, ["Order", "DeliverTo", "Contact", "EMail"]);
        assert!(q.ids().skip(1).all(|id| q.node(id).axis == Axis::Child));
    }

    #[test]
    fn parses_descendant_axis() {
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        assert_eq!(q.node(q.root()).axis, Axis::Descendant);
        let icn = PatternNodeId(1);
        assert_eq!(q.node(icn).axis, Axis::Descendant);
    }

    #[test]
    fn parses_predicates_as_branches() {
        let q = TwigPattern::parse("Order/DeliverTo/Address[./City][./Country]/Street").unwrap();
        assert_eq!(q.len(), 6);
        let address = q.ids().find(|&id| q.node(id).label == "Address").unwrap();
        assert_eq!(q.node(address).children.len(), 3); // City, Country, Street
    }

    #[test]
    fn parses_nested_predicate_paths() {
        let q = TwigPattern::parse("Order[./Buyer/Contact][./DeliverTo//City]//BPID").unwrap();
        assert_eq!(q.len(), 6);
        let buyer = q.ids().find(|&id| q.node(id).label == "Buyer").unwrap();
        assert_eq!(q.node(buyer).children.len(), 1);
        let city = q.ids().find(|&id| q.node(id).label == "City").unwrap();
        assert_eq!(q.node(city).axis, Axis::Descendant);
        let bpid = q.ids().find(|&id| q.node(id).label == "BPID").unwrap();
        assert_eq!(q.node(bpid).axis, Axis::Descendant);
        assert_eq!(q.node(bpid).parent, Some(q.root()));
    }

    #[test]
    fn parses_all_table3_queries() {
        let queries = [
            "Order/DeliverTo/Address[./City][./Country]/Street",
            "Order/DeliverTo/Contact/EMail",
            "Order/DeliverTo[./Address/City]/Contact/EMail",
            "Order/POLine[./LineNo]//UP",
            "Order/POLine[./LineNo][.//UP]/Quantity",
            "Order/POLine[./BPID][./LineNO][//UP]/Quantity",
            "Order[./DeliverTo//Street]/POLine[.//BPID][.//UP]/Quantity",
            "Order[./DeliverTo[.//EMail]//Street]/POLine[.//UP]/Quantity",
            "Order[./Buyer/Contact]/POLine[.//BPID]/Quantity",
            "Order[./Buyer/Contact][./DeliverTo//City]//BPID",
        ];
        for s in queries {
            let q = TwigPattern::parse(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(q.len() >= 3, "{s}");
        }
    }

    #[test]
    fn parses_text_predicate() {
        let q = TwigPattern::parse("Order//City[.='Berlin']").unwrap();
        let city = q.ids().find(|&id| q.node(id).label == "City").unwrap();
        assert_eq!(q.node(city).text_eq(), Some("Berlin"));
        let q2 = TwigPattern::parse("Order//City[text()='Berlin']").unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parses_value_predicates() {
        let q = TwigPattern::parse("Order//UP[.>=10.5]").unwrap();
        let up = q.ids().find(|&id| q.node(id).label == "UP").unwrap();
        assert_eq!(
            q.node(up).preds,
            vec![ValuePred {
                target: PredTarget::Text,
                op: PredOp::Ge(10.5),
            }]
        );
        let q = TwigPattern::parse("A[@id='b7']").unwrap();
        assert_eq!(
            q.node(q.root()).preds,
            vec![ValuePred {
                target: PredTarget::Attr("id".into()),
                op: PredOp::Eq("b7".into()),
            }]
        );
        let q = TwigPattern::parse("A[contains(.,'Ber')][@n<-2]").unwrap();
        assert_eq!(
            q.node(q.root()).preds,
            vec![
                ValuePred {
                    target: PredTarget::Text,
                    op: PredOp::Contains("Ber".into()),
                },
                ValuePred {
                    target: PredTarget::Attr("n".into()),
                    op: PredOp::Lt(-2.0),
                },
            ]
        );
        // text() is a synonym for `.` in every value-predicate form.
        assert_eq!(
            TwigPattern::parse("A[text()<3]").unwrap(),
            TwigPattern::parse("A[.<3]").unwrap()
        );
        assert_eq!(
            TwigPattern::parse("A[contains(text(),'x')]").unwrap(),
            TwigPattern::parse("A[contains(.,'x')]").unwrap()
        );
    }

    #[test]
    fn parses_wildcard_steps() {
        let q = TwigPattern::parse("Order/*/UP").unwrap();
        assert_eq!(q.len(), 3);
        assert!(q.node(PatternNodeId(1)).is_wildcard());
        let q = TwigPattern::parse("//*[@id='x']").unwrap();
        assert!(q.node(q.root()).is_wildcard());
        let q = TwigPattern::parse("A[./*]/B").unwrap();
        assert_eq!(q.len(), 3);
        assert!(q.node(PatternNodeId(1)).is_wildcard());
    }

    #[test]
    fn numeric_literals_canonicalize_to_a_fixpoint() {
        for (s, want) in [
            ("A[.<3.50]", "A[.<3.5]"),
            ("A[.>=010]", "A[.>=10]"),
            ("A[@n<=-0.25]", "A[@n<=-0.25]"),
            ("A[.>2.0]", "A[.>2]"),
        ] {
            let rendered = TwigPattern::parse(s).unwrap().to_string();
            assert_eq!(rendered, want, "{s}");
            assert_eq!(
                TwigPattern::parse(&rendered).unwrap().to_string(),
                rendered,
                "fixpoint for {s}"
            );
        }
    }

    #[test]
    fn display_reparses_to_same_pattern() {
        for s in [
            "Order/POLine[./LineNo][.//UP]/Quantity",
            "//IP//ICN",
            "Order//City[.='Berlin']",
            "A[./B/C]//D",
            "Order//UP[.>=10.5]",
            "A[@id='b7']/B[contains(.,'x')]",
            "//*[@n<3]/B",
            "A[contains(@k,'v')][.<=2.5]//*",
        ] {
            let q = TwigPattern::parse(s).unwrap();
            let rendered = q.to_string();
            let q2 = TwigPattern::parse(&rendered)
                .unwrap_or_else(|e| panic!("rendered {rendered:?}: {e}"));
            assert_eq!(q, q2, "{s} -> {rendered}");
        }
    }

    #[test]
    fn subpattern_extraction() {
        let q = TwigPattern::parse("Order/POLine[./LineNo]//UP").unwrap();
        let poline = q.ids().find(|&id| q.node(id).label == "POLine").unwrap();
        let sub = q.subpattern(poline);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.node(sub.root()).label, "POLine");
    }

    #[test]
    fn node_only_keeps_predicate() {
        let mut q = TwigPattern::parse("A/B").unwrap();
        q.set_text_eq(q.root(), "v");
        let only = q.node_only(q.root());
        assert_eq!(only.len(), 1);
        assert_eq!(only.node(only.root()).text_eq(), Some("v"));
    }

    #[test]
    fn subpattern_keeps_value_predicates() {
        let q = TwigPattern::parse("A/B[@id='7'][.>=2]/C[contains(.,'x')]").unwrap();
        let b = q.ids().find(|&id| q.node(id).label == "B").unwrap();
        let sub = q.subpattern(b);
        assert_eq!(sub.to_string(), "B[@id='7'][.>=2]/C[contains(.,'x')]");
        let only = q.node_only(b);
        assert_eq!(only.to_string(), "B[@id='7'][.>=2]");
    }

    #[test]
    fn spine_leaf_follows_last_children() {
        let q = TwigPattern::parse("Order/POLine[./LineNo]//UP").unwrap();
        assert_eq!(q.node(q.spine_leaf()).label, "UP");
        let q = TwigPattern::parse("A[./B/C]").unwrap();
        assert_eq!(q.node(q.spine_leaf()).label, "C");
        let q = TwigPattern::parse("A").unwrap();
        assert_eq!(q.spine_leaf(), q.root());
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(TwigPattern::parse(""), Err(TwigParseError::Empty)));
        assert!(matches!(
            TwigPattern::parse("A/"),
            Err(TwigParseError::ExpectedLabel(_))
        ));
        assert!(matches!(
            TwigPattern::parse("A[./B"),
            Err(TwigParseError::ExpectedClose(_))
        ));
        assert!(matches!(
            TwigPattern::parse("A[]"),
            Err(TwigParseError::BadPredicate(_))
        ));
        assert!(matches!(
            TwigPattern::parse("A]B"),
            Err(TwigParseError::Trailing(_))
        ));
        assert!(matches!(
            TwigPattern::parse("A[.='x]"),
            Err(TwigParseError::BadPredicate(_))
        ));
        // Malformed value predicates.
        for bad in [
            "A[.<]",             // comparison without a number
            "A[.<'x']",          // quoted value where a number is due
            "A[@]",              // attribute without a name
            "A[@a]",             // attribute without a comparison
            "A[contains(.)]",    // contains without a literal
            "A[contains(.,'x']", // unclosed contains
            "A[.<NaN]",          // only finite literals
            "A[.=x]",            // equality needs quotes
        ] {
            assert!(
                matches!(
                    TwigPattern::parse(bad),
                    Err(TwigParseError::BadPredicate(_) | TwigParseError::ExpectedClose(_))
                ),
                "{bad}"
            );
        }
        // `**` is not a label.
        assert!(TwigPattern::parse("A/**").is_err());
    }

    #[test]
    fn labels_are_deduped_and_sorted() {
        let q = TwigPattern::parse("A[./B]/B").unwrap();
        assert_eq!(q.labels(), vec!["A", "B"]);
        assert_eq!(q.edge_count(), 2);
    }
}
