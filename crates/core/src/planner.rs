//! The cost-aware query planner behind
//! [`QueryEngine::run`](crate::engine::QueryEngine::run).
//!
//! The paper exposes *two* PTQ evaluation strategies — naive per-mapping
//! rewriting (Algorithm 3) and block-tree sharing (Algorithm 4) — and its
//! experiments (§VI, Fig. 9f/10a–c) show neither dominates: the block
//! tree wins when many mappings share c-blocks, the naive path wins on
//! small relevant sets where the tree's split/join machinery is pure
//! overhead. Under the unified [`crate::api::Query`] surface that choice
//! is no longer the caller's problem: the planner picks an [`Evaluator`]
//! from cheap per-query engine statistics ([`PlannerStats`]) unless the
//! query pins one via [`EvaluatorHint`].
//!
//! Both evaluators return answers that are **identical by construction**
//! (pinned by `tests/engine_equivalence.rs` and the planner differential
//! suite), so the plan choice is a pure performance decision — it can
//! never change a result.
//!
//! # Examples
//!
//! The planner is a pure function from hint + statistics to a [`Plan`];
//! a query's [`crate::api::ExecStats`] reports what it picked and why:
//!
//! ```
//! use uxm_core::api::EvaluatorHint;
//! use uxm_core::planner::{choose, Evaluator, Plan, PlanReason, PlannerStats};
//!
//! let stats = PlannerStats {
//!     relevant_mappings: 40,
//!     block_count: 12,
//!     avg_block_fanout: 3.5, // block answers replicate across mappings
//!     cache_warm: false,
//! };
//! assert_eq!(
//!     choose(EvaluatorHint::Auto, &stats),
//!     Plan { evaluator: Evaluator::BlockTree, reason: PlanReason::SharedBlocks },
//! );
//!
//! // A tiny relevant set flips the choice: the tree cannot pay for itself.
//! let few = PlannerStats { relevant_mappings: 3, ..stats };
//! assert_eq!(choose(EvaluatorHint::Auto, &few).evaluator, Evaluator::Naive);
//!
//! // A pinned hint always wins.
//! let pinned = choose(EvaluatorHint::Naive, &stats);
//! assert_eq!(
//!     (pinned.evaluator, pinned.reason),
//!     (Evaluator::Naive, PlanReason::Pinned),
//! );
//! ```

use crate::api::EvaluatorHint;
use std::fmt;

/// How many relevant mappings the naive evaluator handles so cheaply
/// that the block tree's bookkeeping cannot pay for itself.
pub const FEW_MAPPINGS_CUTOFF: usize = 8;

/// Minimum average c-block fan-out (mappings sharing a block) for the
/// tree's answer replication to beat per-mapping evaluation outright.
pub const SHARED_FANOUT_CUTOFF: f64 = 2.0;

/// A PTQ evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Evaluator {
    /// Algorithm 3: rewrite and evaluate per mapping.
    Naive,
    /// Algorithm 4: share work through the block tree.
    BlockTree,
}

impl Evaluator {
    /// The kebab-case wire name (`naive` / `block-tree`).
    pub fn wire_name(self) -> &'static str {
        match self {
            Evaluator::Naive => "naive",
            Evaluator::BlockTree => "block-tree",
        }
    }
}

impl fmt::Display for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Why the planner picked its evaluator (reported in
/// [`crate::api::ExecStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanReason {
    /// The query's [`EvaluatorHint`] pinned the evaluator.
    Pinned,
    /// The session has no c-blocks; the tree cannot share anything.
    NoBlocks,
    /// The relevant mapping set is at most [`FEW_MAPPINGS_CUTOFF`].
    FewMappings,
    /// Average c-block fan-out ≥ [`SHARED_FANOUT_CUTOFF`]: block answers
    /// replicate across many mappings.
    SharedBlocks,
    /// The session caches already hold this query's rewrites, removing
    /// most of what the tree would have saved.
    WarmCache,
    /// Default for large relevant sets with modest sharing.
    ManyMappings,
    /// The query kind has a single evaluator (keyword queries).
    OnlyEvaluator,
}

impl PlanReason {
    /// The kebab-case wire name.
    pub fn wire_name(self) -> &'static str {
        match self {
            PlanReason::Pinned => "pinned",
            PlanReason::NoBlocks => "no-blocks",
            PlanReason::FewMappings => "few-mappings",
            PlanReason::SharedBlocks => "shared-blocks",
            PlanReason::WarmCache => "warm-cache",
            PlanReason::ManyMappings => "many-mappings",
            PlanReason::OnlyEvaluator => "only-evaluator",
        }
    }
}

impl fmt::Display for PlanReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// The planner's decision: which evaluator, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Plan {
    /// The strategy the engine will run.
    pub evaluator: Evaluator,
    /// Why it was chosen.
    pub reason: PlanReason,
}

impl Plan {
    /// The fixed plan for query kinds with one evaluator.
    pub fn only(evaluator: Evaluator) -> Plan {
        Plan {
            evaluator,
            reason: PlanReason::OnlyEvaluator,
        }
    }
}

/// The per-query engine statistics the planner decides from. All of them
/// are O(1) to read off a [`crate::engine::QueryEngine`] session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannerStats {
    /// `|M_q|` — mappings relevant to this query (after the paper's
    /// `filter_mappings`; for top-k, after the k-pruning too).
    pub relevant_mappings: usize,
    /// Total c-blocks in the session's block tree.
    pub block_count: usize,
    /// Average mappings per c-block — the replication factor block
    /// answers enjoy. `0.0` when there are no blocks.
    pub avg_block_fanout: f64,
    /// Whether the session caches already hold this query (its relevant
    /// set, and with it the memoized rewrites of a previous evaluation).
    pub cache_warm: bool,
}

/// Picks the evaluator for one PTQ-shaped query.
///
/// A pinned hint always wins. Under [`EvaluatorHint::Auto`] the rules,
/// in order:
///
/// 1. no c-blocks → [`Evaluator::Naive`] (nothing to share);
/// 2. `relevant_mappings ≤ `[`FEW_MAPPINGS_CUTOFF`] → `Naive` (the
///    tree's split/join overhead exceeds the work it saves);
/// 3. `avg_block_fanout ≥ `[`SHARED_FANOUT_CUTOFF`] → `BlockTree`
///    (block answers replicate across ≥2 mappings on average);
/// 4. warm caches → `Naive` (rewrites are already memoized, which is
///    most of what the tree would have shared);
/// 5. otherwise → `BlockTree` (large `|M_q|`, let rewrite-group sharing
///    work).
pub fn choose(hint: EvaluatorHint, stats: &PlannerStats) -> Plan {
    let pin = |evaluator| Plan {
        evaluator,
        reason: PlanReason::Pinned,
    };
    let auto = |evaluator, reason| Plan { evaluator, reason };
    match hint {
        EvaluatorHint::Naive => pin(Evaluator::Naive),
        EvaluatorHint::BlockTree => pin(Evaluator::BlockTree),
        EvaluatorHint::Auto => {
            if stats.block_count == 0 {
                auto(Evaluator::Naive, PlanReason::NoBlocks)
            } else if stats.relevant_mappings <= FEW_MAPPINGS_CUTOFF {
                auto(Evaluator::Naive, PlanReason::FewMappings)
            } else if stats.avg_block_fanout >= SHARED_FANOUT_CUTOFF {
                auto(Evaluator::BlockTree, PlanReason::SharedBlocks)
            } else if stats.cache_warm {
                auto(Evaluator::Naive, PlanReason::WarmCache)
            } else {
                auto(Evaluator::BlockTree, PlanReason::ManyMappings)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(relevant: usize, blocks: usize, fanout: f64, warm: bool) -> PlannerStats {
        PlannerStats {
            relevant_mappings: relevant,
            block_count: blocks,
            avg_block_fanout: fanout,
            cache_warm: warm,
        }
    }

    #[test]
    fn pinned_hints_always_win() {
        let s = stats(1000, 0, 0.0, true); // auto would say Naive
        assert_eq!(
            choose(EvaluatorHint::BlockTree, &s),
            Plan {
                evaluator: Evaluator::BlockTree,
                reason: PlanReason::Pinned
            }
        );
        assert_eq!(
            choose(EvaluatorHint::Naive, &stats(1000, 50, 10.0, false)).evaluator,
            Evaluator::Naive
        );
    }

    #[test]
    fn auto_rules_in_order() {
        let c = |s: &PlannerStats| choose(EvaluatorHint::Auto, s);
        assert_eq!(c(&stats(100, 0, 0.0, false)).reason, PlanReason::NoBlocks);
        assert_eq!(
            c(&stats(FEW_MAPPINGS_CUTOFF, 40, 10.0, false)).reason,
            PlanReason::FewMappings
        );
        assert_eq!(
            c(&stats(100, 40, 5.0, true)).reason,
            PlanReason::SharedBlocks
        );
        assert_eq!(c(&stats(100, 40, 1.2, true)).reason, PlanReason::WarmCache);
        assert_eq!(
            c(&stats(100, 40, 1.2, false)).reason,
            PlanReason::ManyMappings
        );
    }

    #[test]
    fn reasons_map_to_evaluators() {
        let c = |s: &PlannerStats| choose(EvaluatorHint::Auto, s);
        assert_eq!(c(&stats(100, 0, 0.0, false)).evaluator, Evaluator::Naive);
        assert_eq!(c(&stats(2, 40, 10.0, false)).evaluator, Evaluator::Naive);
        assert_eq!(
            c(&stats(100, 40, 5.0, false)).evaluator,
            Evaluator::BlockTree
        );
        assert_eq!(c(&stats(100, 40, 1.0, true)).evaluator, Evaluator::Naive);
        assert_eq!(
            c(&stats(100, 40, 1.0, false)).evaluator,
            Evaluator::BlockTree
        );
    }

    #[test]
    fn wire_names_are_kebab_case() {
        assert_eq!(Evaluator::BlockTree.wire_name(), "block-tree");
        assert_eq!(PlanReason::SharedBlocks.to_string(), "shared-blocks");
    }
}
