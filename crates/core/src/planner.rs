//! The cost-aware query planner behind
//! [`QueryEngine::run`](crate::engine::QueryEngine::run).
//!
//! The paper exposes *two* PTQ evaluation strategies — naive per-mapping
//! rewriting (Algorithm 3) and block-tree sharing (Algorithm 4) — and its
//! experiments (§VI, Fig. 9f/10a–c) show neither dominates: the block
//! tree wins when many mappings share c-blocks, the naive path wins on
//! small relevant sets where the tree's split/join machinery is pure
//! overhead. The engine adds a third strategy on top of the paper's two:
//! a [`crate::exec`] backend that lowers the query into a flat compiled
//! [`Program`](crate::exec::Program) replayed from a per-engine cache.
//! Under the unified [`crate::api::Query`] surface that choice is no
//! longer the caller's problem: the planner picks an [`Evaluator`] from
//! cheap per-query engine statistics ([`PlannerStats`]) unless the query
//! pins one via [`EvaluatorHint`].
//!
//! All evaluators return answers that are **identical by construction**
//! (pinned by `tests/engine_equivalence.rs`, `tests/prop_exec.rs`, and
//! the planner differential suite), so the plan choice is a pure
//! performance decision — it can never change a result.
//!
//! # Examples
//!
//! The planner is a pure function from hint + statistics to a [`Plan`];
//! a query's [`crate::api::ExecStats`] reports what it picked and why:
//!
//! ```
//! use uxm_core::api::EvaluatorHint;
//! use uxm_core::planner::{choose, Evaluator, Plan, PlanReason, PlannerStats};
//!
//! let stats = PlannerStats {
//!     relevant_mappings: 40,
//!     block_count: 12,
//!     avg_block_fanout: 3.5, // block answers replicate across mappings
//!     min_rewrite_postings: 40,   // cheapest per-label candidate stream
//!     total_rewrite_postings: 120, // summed over the query's nodes
//!     value_predicates: 0,
//!     wildcard_nodes: 0,
//!     pred_selectivity: 1.0, // no predicates: nothing filters
//!     cache_warm: false,
//! };
//! assert_eq!(
//!     choose(EvaluatorHint::Auto, &stats),
//!     Plan { evaluator: Evaluator::BlockTree, reason: PlanReason::SharedBlocks },
//! );
//!
//! // A tiny relevant set flips the choice: the tree cannot pay for
//! // itself, and the flat compiled program wins outright.
//! let few = PlannerStats { relevant_mappings: 3, ..stats };
//! assert_eq!(choose(EvaluatorHint::Auto, &few).evaluator, Evaluator::Compiled);
//!
//! // So does an empty candidate stream: when some query label can never
//! // match a document node, every evaluation is near-free.
//! let tiny = PlannerStats { min_rewrite_postings: 0, ..stats };
//! assert_eq!(
//!     choose(EvaluatorHint::Auto, &tiny).reason,
//!     PlanReason::TinyPostings,
//! );
//!
//! // A pinned hint always wins.
//! let pinned = choose(EvaluatorHint::Naive, &stats);
//! assert_eq!(
//!     (pinned.evaluator, pinned.reason),
//!     (Evaluator::Naive, PlanReason::Pinned),
//! );
//! ```

use crate::api::EvaluatorHint;
use std::fmt;
use uxm_twig::{PredOp, TwigPattern};

/// How many relevant mappings the per-mapping evaluators handle so
/// cheaply that the block tree's bookkeeping cannot pay for itself.
pub const FEW_MAPPINGS_CUTOFF: usize = 8;

/// Minimum average c-block fan-out (mappings sharing a block) for the
/// tree's answer replication to beat per-mapping evaluation outright.
pub const SHARED_FANOUT_CUTOFF: f64 = 2.0;

/// Posting-list budget under which warm per-mapping evaluation is the
/// winner: with a compiled program cached (and rewrites memoized on the
/// recursive path), match work over candidate streams totalling at most
/// this many document nodes is cheaper than the tree's split/join
/// machinery. Above it, match work dominates and block sharing still
/// pays even when warm.
pub const WARM_POSTINGS_CUTOFF: usize = 1024;

/// Estimated predicate selectivity at or below which the compiled
/// backend wins outright: the predicates prune the candidate stream so
/// hard that block-tree sharing has almost nothing left to share, while
/// the flat program skips the tree's split/join machinery entirely.
pub const SELECTIVE_PRED_CUTOFF: f64 = 0.25;

/// The static selectivity estimate of one value predicate — the classic
/// System R constants, since the engine keeps no value histograms:
/// equality keeps 1 in 10 candidates, substring containment 1 in 4, a
/// one-sided numeric range 1 in 3.
pub fn pred_factor(op: &PredOp) -> f64 {
    match op {
        PredOp::Eq(_) => 0.1,
        PredOp::Contains(_) => 0.25,
        PredOp::Lt(_) | PredOp::Le(_) | PredOp::Gt(_) | PredOp::Ge(_) => 1.0 / 3.0,
    }
}

/// Estimated fraction of label-eligible candidates surviving **all** of
/// the query's value predicates: the product of each predicate's
/// [`pred_factor`], floored at `0.01` (stacked predicates stop paying
/// below a percent), and exactly `1.0` for a predicate-free query.
pub fn estimate_selectivity(q: &TwigPattern) -> f64 {
    let mut sel = 1.0;
    for id in q.ids() {
        for pred in &q.node(id).preds {
            sel *= pred_factor(&pred.op);
        }
    }
    if sel < 1.0 {
        sel.max(0.01)
    } else {
        sel
    }
}

/// A PTQ evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Evaluator {
    /// Algorithm 3: rewrite and evaluate per mapping.
    Naive,
    /// Algorithm 4: share work through the block tree.
    BlockTree,
    /// The [`crate::exec`] backend: the query is lowered to a flat
    /// [`Program`](crate::exec::Program) over the columnar arenas and
    /// replayed from the engine's program cache. Answer-identical to
    /// [`Evaluator::Naive`] by construction.
    Compiled,
}

impl Evaluator {
    /// The kebab-case wire name (`naive` / `block-tree` / `compiled`).
    pub fn wire_name(self) -> &'static str {
        match self {
            Evaluator::Naive => "naive",
            Evaluator::BlockTree => "block-tree",
            Evaluator::Compiled => "compiled",
        }
    }
}

impl fmt::Display for Evaluator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// Why the planner picked its evaluator (reported in
/// [`crate::api::ExecStats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanReason {
    /// The query's [`EvaluatorHint`] pinned the evaluator.
    Pinned,
    /// The session has no c-blocks; the tree cannot share anything.
    NoBlocks,
    /// The relevant mapping set is at most [`FEW_MAPPINGS_CUTOFF`].
    FewMappings,
    /// Some query node's measured candidate stream is empty: no document
    /// node can ever match it, every answer is provably empty, and the
    /// tree's split/join machinery would be pure overhead.
    TinyPostings,
    /// The query carries value predicates whose estimated selectivity is
    /// at most [`SELECTIVE_PRED_CUTOFF`]: most candidates are filtered
    /// before structural matching, so per-mapping work is small and the
    /// flat compiled program wins.
    SelectivePredicate,
    /// Average c-block fan-out ≥ [`SHARED_FANOUT_CUTOFF`]: block answers
    /// replicate across many mappings.
    SharedBlocks,
    /// The session caches already hold this query (a compiled program
    /// and/or memoized rewrites) **and** the measured candidate streams
    /// are small (≤ [`WARM_POSTINGS_CUTOFF`] document nodes in total),
    /// so replaying per-mapping evaluation beats the tree's machinery.
    WarmCache,
    /// Default for large relevant sets with modest sharing.
    ManyMappings,
    /// The query kind has a single evaluator (keyword queries).
    OnlyEvaluator,
}

impl PlanReason {
    /// The kebab-case wire name.
    pub fn wire_name(self) -> &'static str {
        match self {
            PlanReason::Pinned => "pinned",
            PlanReason::NoBlocks => "no-blocks",
            PlanReason::FewMappings => "few-mappings",
            PlanReason::TinyPostings => "tiny-postings",
            PlanReason::SelectivePredicate => "selective-predicate",
            PlanReason::SharedBlocks => "shared-blocks",
            PlanReason::WarmCache => "warm-cache",
            PlanReason::ManyMappings => "many-mappings",
            PlanReason::OnlyEvaluator => "only-evaluator",
        }
    }
}

impl fmt::Display for PlanReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// The planner's decision: which evaluator, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Plan {
    /// The strategy the engine will run.
    pub evaluator: Evaluator,
    /// Why it was chosen.
    pub reason: PlanReason,
}

impl Plan {
    /// The fixed plan for query kinds with one evaluator.
    pub fn only(evaluator: Evaluator) -> Plan {
        Plan {
            evaluator,
            reason: PlanReason::OnlyEvaluator,
        }
    }
}

/// The per-query engine statistics the planner decides from. All of them
/// are O(1) to read off a [`crate::engine::QueryEngine`] session.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannerStats {
    /// `|M_q|` — mappings relevant to this query (after the paper's
    /// `filter_mappings`; for top-k, after the k-pruning too).
    pub relevant_mappings: usize,
    /// Total c-blocks in the session's block tree.
    pub block_count: usize,
    /// Average mappings per c-block — the replication factor block
    /// answers enjoy. `0.0` when there are no blocks.
    pub avg_block_fanout: f64,
    /// The smallest *rewritten-label* posting-list length among the
    /// query's nodes: per query label, the total document postings of
    /// every source label it can rewrite to under any mapping. Zero means
    /// some query node can never match a document node, so every answer
    /// is empty. Measured from the session's posting table.
    pub min_rewrite_postings: usize,
    /// The summed rewritten-label posting-list lengths over all query
    /// nodes — an upper bound on the candidate stream a single twig
    /// evaluation scans.
    pub total_rewrite_postings: usize,
    /// Number of value predicates across the query's nodes.
    pub value_predicates: usize,
    /// Number of wildcard (`*`) query nodes — each one's candidate
    /// stream is the whole document.
    pub wildcard_nodes: usize,
    /// Estimated fraction of candidates surviving the query's value
    /// predicates (see [`estimate_selectivity`]); exactly `1.0` for a
    /// predicate-free query.
    pub pred_selectivity: f64,
    /// Whether the session caches already hold this query (its relevant
    /// set, and with it the memoized rewrites or compiled program of a
    /// previous evaluation).
    pub cache_warm: bool,
}

/// Picks the evaluator for one PTQ-shaped query.
///
/// A pinned hint always wins. Under [`EvaluatorHint::Auto`] the rules,
/// in order — every per-mapping outcome routes to the flat
/// [`Evaluator::Compiled`] backend (which replaces the recursive naive
/// walk without changing answers), while block-tree outcomes keep
/// Algorithm 4's cross-mapping sharing:
///
/// 1. no c-blocks → [`Evaluator::Compiled`] (nothing to share);
/// 2. `relevant_mappings ≤ `[`FEW_MAPPINGS_CUTOFF`] → `Compiled` (the
///    tree's split/join overhead exceeds the work it saves);
/// 3. `min_rewrite_postings == 0` → `Compiled` (some query node's
///    measured candidate stream is empty, so every answer is provably
///    empty and there is nothing to share);
/// 4. value predicates with estimated selectivity ≤
///    [`SELECTIVE_PRED_CUTOFF`] → `Compiled` (the predicates prune the
///    candidate stream before structural matching; block sharing has
///    little left to amortize);
/// 5. `avg_block_fanout ≥ `[`SHARED_FANOUT_CUTOFF`] → `BlockTree`
///    (block answers replicate across ≥2 mappings on average);
/// 6. warm caches and `total_rewrite_postings ≤
///    `[`WARM_POSTINGS_CUTOFF`] → `Compiled` (the program is cached and
///    the measured match work is small — most of what the tree would
///    have shared is already free);
/// 7. otherwise → `BlockTree` (large `|M_q|`, let rewrite-group sharing
///    work).
pub fn choose(hint: EvaluatorHint, stats: &PlannerStats) -> Plan {
    let pin = |evaluator| Plan {
        evaluator,
        reason: PlanReason::Pinned,
    };
    let auto = |evaluator, reason| Plan { evaluator, reason };
    match hint {
        EvaluatorHint::Naive => pin(Evaluator::Naive),
        EvaluatorHint::BlockTree => pin(Evaluator::BlockTree),
        EvaluatorHint::Compiled => pin(Evaluator::Compiled),
        EvaluatorHint::Auto => {
            if stats.block_count == 0 {
                auto(Evaluator::Compiled, PlanReason::NoBlocks)
            } else if stats.relevant_mappings <= FEW_MAPPINGS_CUTOFF {
                auto(Evaluator::Compiled, PlanReason::FewMappings)
            } else if stats.min_rewrite_postings == 0 {
                auto(Evaluator::Compiled, PlanReason::TinyPostings)
            } else if stats.value_predicates > 0 && stats.pred_selectivity <= SELECTIVE_PRED_CUTOFF
            {
                auto(Evaluator::Compiled, PlanReason::SelectivePredicate)
            } else if stats.avg_block_fanout >= SHARED_FANOUT_CUTOFF {
                auto(Evaluator::BlockTree, PlanReason::SharedBlocks)
            } else if stats.cache_warm && stats.total_rewrite_postings <= WARM_POSTINGS_CUTOFF {
                auto(Evaluator::Compiled, PlanReason::WarmCache)
            } else {
                auto(Evaluator::BlockTree, PlanReason::ManyMappings)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(relevant: usize, blocks: usize, fanout: f64, warm: bool) -> PlannerStats {
        PlannerStats {
            relevant_mappings: relevant,
            block_count: blocks,
            avg_block_fanout: fanout,
            min_rewrite_postings: 100,
            total_rewrite_postings: 1000,
            value_predicates: 0,
            wildcard_nodes: 0,
            pred_selectivity: 1.0,
            cache_warm: warm,
        }
    }

    #[test]
    fn pinned_hints_always_win() {
        let s = stats(1000, 0, 0.0, true); // auto would say Compiled
        assert_eq!(
            choose(EvaluatorHint::BlockTree, &s),
            Plan {
                evaluator: Evaluator::BlockTree,
                reason: PlanReason::Pinned
            }
        );
        assert_eq!(
            choose(EvaluatorHint::Naive, &stats(1000, 50, 10.0, false)).evaluator,
            Evaluator::Naive
        );
        assert_eq!(
            choose(EvaluatorHint::Compiled, &stats(1000, 50, 10.0, false)),
            Plan {
                evaluator: Evaluator::Compiled,
                reason: PlanReason::Pinned
            }
        );
    }

    #[test]
    fn auto_rules_in_order() {
        let c = |s: &PlannerStats| choose(EvaluatorHint::Auto, s);
        assert_eq!(c(&stats(100, 0, 0.0, false)).reason, PlanReason::NoBlocks);
        assert_eq!(
            c(&stats(FEW_MAPPINGS_CUTOFF, 40, 10.0, false)).reason,
            PlanReason::FewMappings
        );
        assert_eq!(
            c(&PlannerStats {
                min_rewrite_postings: 0,
                ..stats(100, 40, 10.0, false)
            }),
            Plan {
                evaluator: Evaluator::Compiled,
                reason: PlanReason::TinyPostings
            }
        );
        assert_eq!(
            c(&PlannerStats {
                total_rewrite_postings: WARM_POSTINGS_CUTOFF + 1,
                ..stats(100, 40, 1.2, true)
            })
            .reason,
            PlanReason::ManyMappings,
            "huge streams keep the tree even when warm"
        );
        assert_eq!(
            c(&PlannerStats {
                value_predicates: 1,
                pred_selectivity: 0.1,
                ..stats(100, 40, 10.0, false)
            }),
            Plan {
                evaluator: Evaluator::Compiled,
                reason: PlanReason::SelectivePredicate
            },
            "selective predicates beat block sharing"
        );
        assert_eq!(
            c(&PlannerStats {
                value_predicates: 1,
                pred_selectivity: 1.0 / 3.0,
                ..stats(100, 40, 10.0, false)
            })
            .reason,
            PlanReason::SharedBlocks,
            "a lone range predicate is not selective enough"
        );
        assert_eq!(
            c(&stats(100, 40, 5.0, true)).reason,
            PlanReason::SharedBlocks
        );
        assert_eq!(c(&stats(100, 40, 1.2, true)).reason, PlanReason::WarmCache);
        assert_eq!(
            c(&stats(100, 40, 1.2, false)).reason,
            PlanReason::ManyMappings
        );
    }

    #[test]
    fn selectivity_estimate_multiplies_static_factors() {
        let sel = |q: &str| estimate_selectivity(&TwigPattern::parse(q).unwrap());
        assert_eq!(sel("A/B"), 1.0);
        assert_eq!(sel("A//*"), 1.0, "wildcards filter nothing");
        assert!((sel("A[.='v']/B") - 0.1).abs() < 1e-12);
        assert!((sel("A[contains(@k,'v')]") - 0.25).abs() < 1e-12);
        assert!((sel("A[.<3]") - 1.0 / 3.0).abs() < 1e-12);
        // Stacked predicates multiply, floored at 0.01.
        assert!((sel("A[.='v'][@k='w']/B[.='x']") - 0.01).abs() < 1e-12);
    }

    #[test]
    fn reasons_map_to_evaluators() {
        let c = |s: &PlannerStats| choose(EvaluatorHint::Auto, s);
        assert_eq!(c(&stats(100, 0, 0.0, false)).evaluator, Evaluator::Compiled);
        assert_eq!(c(&stats(2, 40, 10.0, false)).evaluator, Evaluator::Compiled);
        assert_eq!(
            c(&stats(100, 40, 5.0, false)).evaluator,
            Evaluator::BlockTree
        );
        assert_eq!(c(&stats(100, 40, 1.0, true)).evaluator, Evaluator::Compiled);
        assert_eq!(
            c(&stats(100, 40, 1.0, false)).evaluator,
            Evaluator::BlockTree
        );
    }

    #[test]
    fn wire_names_are_kebab_case() {
        assert_eq!(Evaluator::BlockTree.wire_name(), "block-tree");
        assert_eq!(Evaluator::Compiled.wire_name(), "compiled");
        assert_eq!(PlanReason::SharedBlocks.to_string(), "shared-blocks");
        assert_eq!(PlanReason::TinyPostings.to_string(), "tiny-postings");
    }
}
