//! PTQ evaluation with the block tree (paper §IV-B, Algorithm 4).
//!
//! The evaluator looks up the query root in the block-tree index. On a hit,
//! each c-block anchored there is evaluated *once* — the block's
//! correspondence set acts as a mini-mapping — and the result is replicated
//! to every mapping sharing the block (`query_subtree`). On a miss, the
//! query splits into a root-only query plus one subquery per child; the
//! subqueries recurse and the per-mapping results are recombined with the
//! stack-based structural join.
//!
//! One refinement over the paper's sketch: a block at anchor `t` is only a
//! safe shortcut when every label the (sub)query uses occurs *exclusively*
//! inside `t`'s subtree — otherwise a full mapping could rewrite a query
//! label through an occurrence outside the block's coverage and the
//! replicated answer would be wrong. The anchor check in [`crate::engine`]
//! enforces this, so `ptq_with_tree` always agrees exactly with
//! [`crate::ptq::ptq_basic`].
//!
//! The algorithm itself lives in [`crate::engine`]; these free functions
//! wrap it with a throwaway session state.

use crate::block_tree::BlockTree;
use crate::engine::{eval_tree_over, SessionState};
use crate::mapping::{MappingId, PossibleMappings};
use crate::ptq::PtqResult;
use uxm_twig::TwigPattern;
use uxm_xml::Document;

/// Algorithm 4: PTQ evaluation accelerated by the block tree.
///
/// Produces exactly the same result as the legacy `ptq_basic`.
///
/// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run)
/// with [`Query::ptq`](crate::api::Query::ptq) pinned to
/// [`EvaluatorHint::BlockTree`](crate::api::EvaluatorHint::BlockTree).
#[deprecated(note = "build an api::Query (evaluator hint BlockTree) and call QueryEngine::run")]
pub fn ptq_with_tree(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
) -> PtqResult {
    let state = SessionState::build(pm, doc);
    let ids = state.relevant(q, &q.to_string());
    eval_tree_over(q, pm, doc, tree, &state, &ids)
}

/// [`ptq_with_tree`] over a pre-filtered mapping subset (shared with the
/// top-k evaluator).
///
/// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run)
/// with [`Query::topk`](crate::api::Query::topk).
#[deprecated(note = "build an api::Query and call QueryEngine::run")]
pub fn ptq_with_tree_over(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
    ids: &[MappingId],
) -> PtqResult {
    let state = SessionState::build(pm, doc);
    eval_tree_over(q, pm, doc, tree, &state, ids)
}

#[cfg(test)]
#[allow(deprecated)] // shim coverage: the legacy wrappers stay under test
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use crate::engine::{anchor_for, SessionState};
    use crate::ptq::ptq_basic;
    use uxm_xml::{parse_document, Schema, SchemaNodeId};

    fn paper_setup() -> (PossibleMappings, Document, BlockTree) {
        let source =
            Schema::parse_outline("Order(BP(BOC(BCN) ROC(RCN) OOC(OCN)) SP(SCN_src))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN) SP2(SCN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("BCN"), t("ICN")),
                        (s("RCN"), t("SCN")),
                    ],
                    3.0,
                ),
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("BCN"), t("ICN")),
                        (s("OCN"), t("SCN")),
                    ],
                    2.5,
                ),
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("SP"), t("IP")),
                        (s("RCN"), t("ICN")),
                        (s("OCN"), t("SCN")),
                    ],
                    2.0,
                ),
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("RCN"), t("ICN")),
                        (s("BCN"), t("SCN")),
                    ],
                    1.5,
                ),
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("OCN"), t("ICN")),
                        (s("BCN"), t("SCN")),
                    ],
                    1.0,
                ),
            ],
        );
        let doc = parse_document(
            "<Order><BP><BOC><BCN>Cathy</BCN></BOC><ROC><RCN>Bob</RCN></ROC>\
             <OOC><OCN>Alice</OCN></OOC></BP><SP><SCN_src>Dave</SCN_src></SP></Order>",
        )
        .unwrap();
        let cfg = BlockTreeConfig {
            tau: 0.4,
            ..BlockTreeConfig::default()
        };
        let tree = BlockTree::build(&target, &pm, &cfg);
        (pm, doc, tree)
    }

    fn assert_same(q: &str, pm: &PossibleMappings, doc: &Document, tree: &BlockTree) {
        let q = TwigPattern::parse(q).unwrap();
        let mut basic = ptq_basic(&q, pm, doc);
        let mut with_tree = ptq_with_tree(&q, pm, doc, tree);
        basic.normalize();
        with_tree.normalize();
        assert_eq!(basic, with_tree, "query {q}");
    }

    /// Resolves the anchor the engine would use for `q` (test shim over
    /// the internal anchor rule).
    fn anchor_of(
        q: &TwigPattern,
        pm: &PossibleMappings,
        doc: &Document,
        tree: &BlockTree,
    ) -> Option<SchemaNodeId> {
        let state = SessionState::build(pm, doc);
        let qsyms = state.query_syms(q);
        anchor_for(q, &qsyms, pm, &state, tree)
    }

    #[test]
    fn agrees_with_basic_on_paper_example() {
        let (pm, doc, tree) = paper_setup();
        for q in [
            "//IP//ICN",
            "//ICN",
            "ORDER//ICN",
            "ORDER/IP/ICN",
            "ORDER[./IP/ICN]//SCN",
            "ORDER",
            "//SCN",
        ] {
            assert_same(q, &pm, &doc, &tree);
        }
    }

    #[test]
    fn block_path_is_taken_for_anchored_query() {
        let (pm, doc, tree) = paper_setup();
        // //IP//ICN anchors at IP (unique label, has blocks, all labels in
        // subtree).
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let t_ip = pm.target.nodes_with_label("IP")[0];
        assert_eq!(anchor_of(&q, &pm, &doc, &tree), Some(t_ip));
        let res = ptq_with_tree(&q, &pm, &doc, &tree);
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn anchor_rejected_when_label_leaks_outside_subtree() {
        // A query whose label also occurs outside the anchored subtree.
        let (pm, doc, tree) = paper_setup();
        let q = TwigPattern::parse("ORDER//ICN").unwrap();
        // ORDER is the root; root has no blocks -> no anchor, fine.
        assert_eq!(anchor_of(&q, &pm, &doc, &tree), None);
    }

    #[test]
    fn replication_uses_block_mappings() {
        let (pm, doc, tree) = paper_setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = ptq_with_tree(&q, &pm, &doc, &tree);
        // m1, m2 share (BP~IP, BCN~ICN): identical "Cathy" answers.
        let a0 = &res.answers[0];
        let a1 = &res.answers[1];
        assert_eq!(a0.matches, a1.matches);
        assert_eq!(doc.text(a0.matches[0].nodes[1]), Some("Cathy"));
    }

    #[test]
    fn agrees_on_generated_documents_random_mappings() {
        use uxm_matching::Matcher;
        let source = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) DeliverTo(Address(City Street) Contact(EMail)) \
             POLine*(LineNo Quantity UP))",
        )
        .unwrap();
        let target = Schema::parse_outline(
            "PO(Purchaser(PName PContact(PEMail)) ShipTo(Addr(Town Road)) \
             Line(No Qty UnitPrice))",
        )
        .unwrap();
        let matching = Matcher::context().match_schemas(&source, &target);
        let pm = PossibleMappings::top_h(&matching, 24);
        let doc = uxm_xml::Document::generate(
            &source,
            &uxm_xml::DocGenConfig {
                target_nodes: 200,
                max_repeat: 3,
                text_prob: 0.7,
            },
            5,
        );
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        for q in [
            "PO/Line/Qty",
            "PO//PEMail",
            "PO[./Purchaser/PContact]/Line[./No]/Qty",
            "//Line[./UnitPrice]//No",
            "PO/ShipTo/Addr[./Town]/Road",
            "//Addr/Town",
        ] {
            assert_same(q, &pm, &doc, &tree);
        }
    }
}
