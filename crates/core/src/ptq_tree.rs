//! PTQ evaluation with the block tree (paper §IV-B, Algorithm 4).
//!
//! The evaluator looks up the query root in the block-tree index. On a hit,
//! each c-block anchored there is evaluated *once* — the block's
//! correspondence set acts as a mini-mapping — and the result is replicated
//! to every mapping sharing the block (`query_subtree`). On a miss, the
//! query splits into a root-only query plus one subquery per child; the
//! subqueries recurse and the per-mapping results are recombined with the
//! stack-based structural join.
//!
//! One refinement over the paper's sketch: a block at anchor `t` is only a
//! safe shortcut when every label the (sub)query uses occurs *exclusively*
//! inside `t`'s subtree — otherwise a full mapping could rewrite a query
//! label through an occurrence outside the block's coverage and the
//! replicated answer would be wrong. The private `anchor_for` check
//! enforces this, so
//! `ptq_with_tree` always agrees exactly with [`crate::ptq::ptq_basic`].

use crate::block_tree::BlockTree;
use crate::mapping::{MappingId, PossibleMappings};
use crate::ptq::{PtqAnswer, PtqResult};
use crate::rewrite::{filter_mappings, rewrite_with_mapping, rewrite_with_pairs};
use std::collections::HashMap;
use uxm_twig::structural_join::structural_join;
use uxm_twig::{match_twig, Axis, ResolvedPattern, TwigMatch, TwigPattern};
use uxm_xml::{DocNodeId, Document, Schema, SchemaNodeId};

/// Algorithm 4: PTQ evaluation accelerated by the block tree.
///
/// Produces exactly the same result as [`crate::ptq::ptq_basic`].
pub fn ptq_with_tree(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
) -> PtqResult {
    let ids = filter_mappings(q, pm);
    ptq_with_tree_over(q, pm, doc, tree, &ids)
}

/// [`ptq_with_tree`] over a pre-filtered mapping subset (shared with the
/// top-k evaluator).
pub fn ptq_with_tree_over(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
    ids: &[MappingId],
) -> PtqResult {
    let per = eval(q, pm, doc, tree, ids);
    let answers = ids
        .iter()
        .zip(per)
        .map(|(&id, matches)| PtqAnswer {
            mapping: id,
            probability: pm.mapping(id).prob,
            matches,
        })
        .collect();
    PtqResult { answers }
}

/// Recursive evaluation (the paper's `twig_query_tree`): per mapping in
/// `ids`, the match set of `q`.
fn eval(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
    ids: &[MappingId],
) -> Vec<Vec<TwigMatch>> {
    if let Some(t) = anchor_for(q, &pm.target, tree) {
        return query_subtree(q, t, pm, doc, tree, ids);
    }
    if q.len() == 1 || !any_subquery_anchors(q, &pm.target, tree) {
        // No decomposition can reach a c-block: splitting would only pay
        // join overhead. Evaluate directly (the paper's `twig_query`).
        return direct(q, pm, doc, ids);
    }

    // Split: root-only query + one subquery per child (`split_query`).
    let q0 = q.node_only(q.root());
    let r0 = direct(&q0, pm, doc, ids);

    let children = q.node(q.root()).children.clone();
    let mut child_results: Vec<Vec<Vec<TwigMatch>>> = Vec::with_capacity(children.len());
    let mut child_maps = Vec::with_capacity(children.len());
    let mut child_axes = Vec::with_capacity(children.len());
    for &c in &children {
        let (mut sub, map) = q.subpattern_with_map(c);
        child_axes.push(q.node(c).axis);
        // The parent edge is re-imposed by the join below; standalone the
        // subquery may root anywhere.
        sub.set_axis(sub.root(), Axis::Descendant);
        child_results.push(eval(&sub, pm, doc, tree, ids));
        child_maps.push(map);
    }

    // Per mapping: stack-join the root candidates with each child's
    // sub-matches, then stitch combined matches.
    (0..ids.len())
        .map(|k| {
            let child_matches: Vec<&[TwigMatch]> =
                child_results.iter().map(|cr| cr[k].as_slice()).collect();
            join_at_root(q, doc, &r0[k], &child_matches, &child_maps, &child_axes)
        })
        .collect()
}

/// Finds a block-tree anchor usable for the whole (sub)query: the query
/// root's label must denote a unique target element `t`, `t` must carry
/// c-blocks, and every query label must occur only inside `t`'s subtree.
fn anchor_for(q: &TwigPattern, target: &Schema, tree: &BlockTree) -> Option<SchemaNodeId> {
    let roots = target.nodes_with_label(&q.node(q.root()).label);
    let [t] = roots.as_slice() else { return None };
    let t = *t;
    if !tree.has_blocks(t) {
        return None;
    }
    let mut subtree = target.subtree(t);
    subtree.sort_unstable();
    for label in q.labels() {
        for n in target.nodes_with_label(label) {
            if subtree.binary_search(&n).is_err() {
                return None;
            }
        }
    }
    Some(t)
}

/// True iff some proper subquery of `q` would find a usable anchor — the
/// condition under which splitting can pay off.
fn any_subquery_anchors(q: &TwigPattern, target: &Schema, tree: &BlockTree) -> bool {
    q.ids().skip(1).any(|n| {
        let (sub, _) = q.subpattern_with_map(n);
        anchor_for(&sub, target, tree).is_some()
    })
}

/// The paper's `query_subtree`: answer once per c-block, replicate to the
/// block's mappings, evaluate the rest directly.
fn query_subtree(
    q: &TwigPattern,
    t: SchemaNodeId,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
    ids: &[MappingId],
) -> Vec<Vec<TwigMatch>> {
    let pos: HashMap<MappingId, usize> =
        ids.iter().enumerate().map(|(k, &id)| (id, k)).collect();
    let mut out: Vec<Option<Vec<TwigMatch>>> = vec![None; ids.len()];

    for &bid in tree.blocks_at(t) {
        let b = tree.block(bid);
        // Evaluate q once against the block's correspondence set.
        let y = match rewrite_with_pairs(q, &pm.source, &pm.target, &b.corrs) {
            Some(sets) => match ResolvedPattern::with_label_sets(q, doc, &sets) {
                Some(resolved) => match_twig(doc, &resolved),
                None => Vec::new(),
            },
            None => Vec::new(),
        };
        // Replicate to all mappings sharing the block.
        for mid in &b.mappings {
            if let Some(&k) = pos.get(mid) {
                out[k] = Some(y.clone());
            }
        }
    }

    // Mappings not covered by any block: evaluate directly (with rewrite
    // sharing among them).
    let uncovered: Vec<MappingId> = out
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(k, _)| ids[k])
        .collect();
    let mut rest = direct(q, pm, doc, &uncovered).into_iter();
    out.into_iter()
        .map(|slot| match slot {
            Some(m) => m,
            None => rest.next().expect("one result per uncovered mapping"),
        })
        .collect()
}

/// Direct evaluation inside the block-tree algorithm, sharing work across
/// mappings whose *rewrites agree* — the generalization of c-block
/// replication to query fragments without an anchor. (`query_basic` keeps
/// its faithful one-evaluation-per-mapping loop; this sharing is part of
/// the block-tree algorithm's advantage.)
fn direct(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    ids: &[MappingId],
) -> Vec<Vec<TwigMatch>> {
    let mut groups: HashMap<Vec<Vec<String>>, Vec<usize>> = HashMap::new();
    let mut out: Vec<Vec<TwigMatch>> = vec![Vec::new(); ids.len()];
    for (k, &id) in ids.iter().enumerate() {
        if let Some(sets) = rewrite_with_mapping(q, pm, id) {
            groups.entry(sets).or_default().push(k);
        }
    }
    for (sets, members) in groups {
        let matches = match ResolvedPattern::with_label_sets(q, doc, &sets) {
            Some(resolved) => match_twig(doc, &resolved),
            None => Vec::new(),
        };
        let (last, rest) = members.split_last().expect("non-empty group");
        for &k in rest {
            out[k] = matches.clone();
        }
        out[*last] = matches;
    }
    out
}

/// Combines root-only matches with per-child sub-matches using the
/// structural join on root document nodes, then stitches full matches.
fn join_at_root(
    q: &TwigPattern,
    doc: &Document,
    r0: &[TwigMatch],
    child_matches: &[&[TwigMatch]],
    child_maps: &[Vec<uxm_twig::PatternNodeId>],
    child_axes: &[Axis],
) -> Vec<TwigMatch> {
    if r0.is_empty() || child_matches.iter().any(|c| c.is_empty()) {
        return Vec::new();
    }
    // Root candidates (single-node matches, already sorted and unique).
    let roots: Vec<DocNodeId> = r0.iter().map(|m| m.nodes[0]).collect();

    // For each child: sorted (root, child-match indices) association built
    // from the structural join — no hashing on the per-mapping hot path.
    let mut per_child: Vec<Vec<(DocNodeId, Vec<usize>)>> =
        Vec::with_capacity(child_matches.len());
    for (j, cms) in child_matches.iter().enumerate() {
        // Child matches are sorted, so their roots arrive non-decreasing.
        let mut child_roots: Vec<DocNodeId> = Vec::new();
        let mut back_refs: Vec<Vec<usize>> = Vec::new();
        for (i, m) in cms.iter().enumerate() {
            if child_roots.last() == Some(&m.nodes[0]) {
                back_refs.last_mut().expect("parallel").push(i);
            } else {
                child_roots.push(m.nodes[0]);
                back_refs.push(vec![i]);
            }
        }
        let pairs = structural_join(doc, &roots, &child_roots, child_axes[j]);
        // Group by ancestor.
        let mut assoc: Vec<(DocNodeId, Vec<usize>)> = Vec::new();
        let mut sorted_pairs = pairs;
        sorted_pairs.sort_unstable_by_key(|&(a, d)| (a, d));
        for (a, d) in sorted_pairs {
            let refs = &back_refs[child_roots.binary_search(&d).expect("joined root")];
            if assoc.last().map(|(x, _)| *x) == Some(a) {
                assoc.last_mut().expect("grouped").1.extend_from_slice(refs);
            } else {
                assoc.push((a, refs.clone()));
            }
        }
        per_child.push(assoc);
    }

    // Per root: cross product of joinable child matches.
    let mut out = Vec::new();
    let empty: Vec<usize> = Vec::new();
    for &root in &roots {
        let lists: Vec<&Vec<usize>> = per_child
            .iter()
            .map(|assoc| {
                assoc
                    .binary_search_by_key(&root, |&(a, _)| a)
                    .map(|i| &assoc[i].1)
                    .unwrap_or(&empty)
            })
            .collect();
        if lists.iter().any(|l| l.is_empty()) {
            continue;
        }
        let mut idx = vec![0usize; lists.len()];
        loop {
            let mut nodes = vec![DocNodeId(0); q.len()];
            nodes[0] = root;
            for (j, list) in lists.iter().enumerate() {
                let cm = &child_matches[j][list[idx[j]]];
                for (i, &orig) in child_maps[j].iter().enumerate() {
                    nodes[orig.idx()] = cm.nodes[i];
                }
            }
            out.push(TwigMatch { nodes });
            // Advance odometer.
            let mut j = 0;
            loop {
                if j == idx.len() {
                    break;
                }
                idx[j] += 1;
                if idx[j] < lists[j].len() {
                    break;
                }
                idx[j] = 0;
                j += 1;
            }
            if j == idx.len() {
                break;
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use crate::ptq::ptq_basic;
    use uxm_xml::parse_document;

    fn paper_setup() -> (PossibleMappings, Document, BlockTree) {
        let source = Schema::parse_outline(
            "Order(BP(BOC(BCN) ROC(RCN) OOC(OCN)) SP(SCN_src))",
        )
        .unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN) SP2(SCN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(s("Order"), t("ORDER")), (s("BP"), t("IP")), (s("BCN"), t("ICN")), (s("RCN"), t("SCN"))], 3.0),
                (vec![(s("Order"), t("ORDER")), (s("BP"), t("IP")), (s("BCN"), t("ICN")), (s("OCN"), t("SCN"))], 2.5),
                (vec![(s("Order"), t("ORDER")), (s("SP"), t("IP")), (s("RCN"), t("ICN")), (s("OCN"), t("SCN"))], 2.0),
                (vec![(s("Order"), t("ORDER")), (s("BP"), t("IP")), (s("RCN"), t("ICN")), (s("BCN"), t("SCN"))], 1.5),
                (vec![(s("Order"), t("ORDER")), (s("BP"), t("IP")), (s("OCN"), t("ICN")), (s("BCN"), t("SCN"))], 1.0),
            ],
        );
        let doc = parse_document(
            "<Order><BP><BOC><BCN>Cathy</BCN></BOC><ROC><RCN>Bob</RCN></ROC>\
             <OOC><OCN>Alice</OCN></OOC></BP><SP><SCN_src>Dave</SCN_src></SP></Order>",
        )
        .unwrap();
        let cfg = BlockTreeConfig {
            tau: 0.4,
            ..BlockTreeConfig::default()
        };
        let tree = BlockTree::build(&target, &pm, &cfg);
        (pm, doc, tree)
    }

    fn assert_same(q: &str, pm: &PossibleMappings, doc: &Document, tree: &BlockTree) {
        let q = TwigPattern::parse(q).unwrap();
        let mut basic = ptq_basic(&q, pm, doc);
        let mut with_tree = ptq_with_tree(&q, pm, doc, tree);
        basic.normalize();
        with_tree.normalize();
        assert_eq!(basic, with_tree, "query {q}");
    }

    #[test]
    fn agrees_with_basic_on_paper_example() {
        let (pm, doc, tree) = paper_setup();
        for q in [
            "//IP//ICN",
            "//ICN",
            "ORDER//ICN",
            "ORDER/IP/ICN",
            "ORDER[./IP/ICN]//SCN",
            "ORDER",
            "//SCN",
        ] {
            assert_same(q, &pm, &doc, &tree);
        }
    }

    #[test]
    fn block_path_is_taken_for_anchored_query() {
        let (pm, doc, tree) = paper_setup();
        // //IP//ICN anchors at IP (unique label, has blocks, all labels in
        // subtree).
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let t_ip = pm.target.nodes_with_label("IP")[0];
        assert_eq!(anchor_for(&q, &pm.target, tree_ref(&tree)), Some(t_ip));
        let res = ptq_with_tree(&q, &pm, &doc, &tree);
        assert_eq!(res.len(), 5);
    }

    fn tree_ref(t: &BlockTree) -> &BlockTree {
        t
    }

    #[test]
    fn anchor_rejected_when_label_leaks_outside_subtree() {
        // A query whose label also occurs outside the anchored subtree.
        let (pm, _, tree) = paper_setup();
        let q = TwigPattern::parse("ORDER//ICN").unwrap();
        // ORDER is the root; root has no blocks -> no anchor, fine.
        assert_eq!(anchor_for(&q, &pm.target, &tree), None);
    }

    #[test]
    fn replication_uses_block_mappings() {
        let (pm, doc, tree) = paper_setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = ptq_with_tree(&q, &pm, &doc, &tree);
        // m1, m2 share (BP~IP, BCN~ICN): identical "Cathy" answers.
        let a0 = &res.answers[0];
        let a1 = &res.answers[1];
        assert_eq!(a0.matches, a1.matches);
        assert_eq!(doc.text(a0.matches[0].nodes[1]), Some("Cathy"));
    }

    #[test]
    fn agrees_on_generated_documents_random_mappings() {
        use uxm_matching::Matcher;
        let source = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) DeliverTo(Address(City Street) Contact(EMail)) \
             POLine*(LineNo Quantity UP))",
        )
        .unwrap();
        let target = Schema::parse_outline(
            "PO(Purchaser(PName PContact(PEMail)) ShipTo(Addr(Town Road)) \
             Line(No Qty UnitPrice))",
        )
        .unwrap();
        let matching = Matcher::context().match_schemas(&source, &target);
        let pm = PossibleMappings::top_h(&matching, 24);
        let doc = uxm_xml::Document::generate(
            &source,
            &uxm_xml::DocGenConfig {
                target_nodes: 200,
                max_repeat: 3,
                text_prob: 0.7,
            },
            5,
        );
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        for q in [
            "PO/Line/Qty",
            "PO//PEMail",
            "PO[./Purchaser/PContact]/Line[./No]/Qty",
            "//Line[./UnitPrice]//No",
            "PO/ShipTo/Addr[./Town]/Road",
            "//Addr/Town",
        ] {
            assert_same(q, &pm, &doc, &tree);
        }
    }
}
