//! Keyword queries under uncertain schema matching — the paper's §VII
//! future work ("we would consider how the block tree can facilitate the
//! evaluation of other types of XML queries (e.g., XQuery and keyword
//! query)").
//!
//! A keyword query is a bag of terms; following the standard XML keyword
//! search semantics, its answers are the *smallest lowest common
//! ancestors* (SLCA): document nodes whose subtree contains every keyword
//! while no proper descendant's subtree does.
//!
//! Keywords are interpreted in the *target* vocabulary where possible: a
//! term equal to a target element label is rewritten, per possible
//! mapping, to the mapped source elements' labels (vocabulary terms);
//! terms that match no target label are *value* terms and match document
//! text directly, independent of the mapping. Like PTQ, the result is one
//! SLCA set per relevant mapping, weighted by the mapping's probability —
//! and mappings whose rewrites agree share one evaluation.

use crate::mapping::{MappingId, PossibleMappings};
use std::collections::HashMap;
use uxm_xml::{DocNodeId, Document};

/// One per-mapping keyword answer.
#[derive(Clone, Debug, PartialEq)]
pub struct KeywordAnswer {
    /// The mapping this answer was computed under.
    pub mapping: MappingId,
    /// The probability that the mapping (and hence the answer) is correct.
    pub probability: f64,
    /// SLCA nodes, in document order.
    pub slcas: Vec<DocNodeId>,
}

/// Evaluates a keyword query over every possible mapping.
///
/// A mapping is *irrelevant* (and skipped) when some vocabulary keyword
/// has no correspondence under it. Value keywords (terms matching no
/// target label) never filter mappings.
pub fn keyword_query(
    keywords: &[&str],
    pm: &PossibleMappings,
    doc: &Document,
) -> Vec<KeywordAnswer> {
    assert!(!keywords.is_empty(), "at least one keyword");
    assert!(keywords.len() <= 64, "at most 64 keywords (bitmask width)");

    // Split vocabulary terms from value terms once.
    let is_vocab: Vec<bool> = keywords
        .iter()
        .map(|k| !pm.target.nodes_with_label(k).is_empty())
        .collect();

    // Group mappings by the rewritten label sets of the vocabulary terms.
    let mut groups: HashMap<Vec<Vec<String>>, Vec<MappingId>> = HashMap::new();
    'mapping: for id in pm.ids() {
        let mut key = Vec::new();
        for (k, &vocab) in keywords.iter().zip(&is_vocab) {
            if vocab {
                let labels = pm.source_labels_for(id, k);
                if labels.is_empty() {
                    continue 'mapping; // irrelevant
                }
                key.push(labels);
            }
        }
        groups.entry(key).or_default().push(id);
    }

    let mut answers = Vec::new();
    for (key, ids) in groups {
        let slcas = slca(keywords, &is_vocab, &key, doc);
        for id in ids {
            answers.push(KeywordAnswer {
                mapping: id,
                probability: pm.mapping(id).prob,
                slcas: slcas.clone(),
            });
        }
    }
    answers.sort_by_key(|a| a.mapping);
    answers
}

/// Computes the SLCA set for one rewrite. `rewrites` holds, in order, the
/// source-label sets of the vocabulary keywords.
fn slca(
    keywords: &[&str],
    is_vocab: &[bool],
    rewrites: &[Vec<String>],
    doc: &Document,
) -> Vec<DocNodeId> {
    let k = keywords.len();
    // Per node: bitmask of keywords matched *at* the node.
    let mut own = vec![0u64; doc.len()];
    let mut rewrite_iter = rewrites.iter();
    for (bit, (term, &vocab)) in keywords.iter().zip(is_vocab).enumerate() {
        let mask = 1u64 << bit;
        if vocab {
            let labels = rewrite_iter.next().expect("one rewrite per vocab term");
            for label in labels {
                for &n in doc.nodes_with_label(label) {
                    own[n.idx()] |= mask;
                }
            }
        } else {
            // Value term: whole-word containment in text content.
            for n in doc.ids() {
                if doc.text(n).is_some_and(|t| contains_word(t, term)) {
                    own[n.idx()] |= mask;
                }
            }
        }
    }

    // Subtree masks bottom-up (children have larger ids).
    let full = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
    let mut subtree = own;
    for i in (0..doc.len()).rev() {
        if let Some(p) = doc.parent(DocNodeId(i as u32)) {
            let m = subtree[i];
            subtree[p.idx()] |= m;
        }
    }

    // SLCA: full mask, and no child with a full mask.
    doc.ids()
        .filter(|&n| {
            subtree[n.idx()] == full
                && !doc.children(n).iter().any(|c| subtree[c.idx()] == full)
        })
        .collect()
}

/// Case-insensitive whole-word containment.
fn contains_word(text: &str, word: &str) -> bool {
    text.split(|c: char| !c.is_alphanumeric())
        .any(|w| w.eq_ignore_ascii_case(word))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uxm_xml::{parse_document, Schema};

    fn setup() -> (PossibleMappings, Document) {
        let source = Schema::parse_outline("Order(BP(BCN RCN) SP(SCN))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(s("BP"), t("IP")), (s("BCN"), t("ICN"))], 0.5),
                (vec![(s("BP"), t("IP")), (s("RCN"), t("ICN"))], 0.3),
                (vec![(s("SP"), t("IP")), (s("SCN"), t("ICN"))], 0.2),
            ],
        );
        let doc = parse_document(
            "<Order><BP><BCN>Cathy</BCN><RCN>Bob</RCN></BP><SP><SCN>Dave</SCN></SP></Order>",
        )
        .unwrap();
        (pm, doc)
    }

    #[test]
    fn vocabulary_keyword_rewrites_per_mapping() {
        let (pm, doc) = setup();
        // "ICN" is a target label; each mapping sends it elsewhere.
        let answers = keyword_query(&["ICN"], &pm, &doc);
        assert_eq!(answers.len(), 3);
        // m0: ICN -> BCN: SLCA is the BCN node itself.
        let bcn = doc.nodes_with_label("BCN")[0];
        assert_eq!(answers[0].slcas, vec![bcn]);
        let scn = doc.nodes_with_label("SCN")[0];
        assert_eq!(answers[2].slcas, vec![scn]);
    }

    #[test]
    fn value_keyword_is_mapping_independent() {
        let (pm, doc) = setup();
        let answers = keyword_query(&["Bob"], &pm, &doc);
        assert_eq!(answers.len(), 3, "no filtering by value terms");
        let rcn = doc.nodes_with_label("RCN")[0];
        for a in &answers {
            assert_eq!(a.slcas, vec![rcn]);
        }
    }

    #[test]
    fn mixed_terms_compute_slca() {
        let (pm, doc) = setup();
        // "IP" rewrites to BP (m0, m1) or SP (m2); "Bob" sits under BP.
        let answers = keyword_query(&["IP", "Bob"], &pm, &doc);
        assert_eq!(answers.len(), 3);
        let bp = doc.nodes_with_label("BP")[0];
        // Under m0/m1 both keywords are inside BP; the RCN node holds
        // "Bob" but not the IP-rewrite, so the SLCA is BP itself.
        assert_eq!(answers[0].slcas, vec![bp]);
        assert_eq!(answers[1].slcas, vec![bp]);
        // Under m2, IP -> SP but Bob is under BP: the only common subtree
        // is the root.
        assert_eq!(answers[2].slcas, vec![doc.root()]);
    }

    #[test]
    fn slca_prefers_deepest_cover() {
        let (pm, doc) = setup();
        // Both terms match the same node: SLCA is that node, not its
        // ancestors.
        let answers = keyword_query(&["ICN", "Cathy"], &pm, &doc);
        let bcn = doc.nodes_with_label("BCN")[0];
        assert_eq!(answers[0].slcas, vec![bcn]);
        // m1 (ICN->RCN): RCN doesn't contain "Cathy" -> SLCA is BP.
        let bp = doc.nodes_with_label("BP")[0];
        assert_eq!(answers[1].slcas, vec![bp]);
    }

    #[test]
    fn missing_keyword_yields_empty_slca() {
        let (pm, doc) = setup();
        let answers = keyword_query(&["zzz-not-present"], &pm, &doc);
        assert_eq!(answers.len(), 3);
        assert!(answers.iter().all(|a| a.slcas.is_empty()));
    }

    #[test]
    fn shared_rewrites_share_results() {
        let (pm, doc) = setup();
        // "IP" rewrites identically for m0 and m1 -> identical SLCA sets.
        let answers = keyword_query(&["IP"], &pm, &doc);
        assert_eq!(answers[0].slcas, answers[1].slcas);
        assert_ne!(answers[0].slcas, answers[2].slcas);
    }

    #[test]
    fn probabilities_carried_through() {
        let (pm, doc) = setup();
        let answers = keyword_query(&["ICN"], &pm, &doc);
        let total: f64 = answers.iter().map(|a| a.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn whole_word_matching() {
        assert!(contains_word("Bob Smith", "bob"));
        assert!(!contains_word("Bobby", "bob"));
        assert!(contains_word("a,bob;c", "Bob"));
    }
}
