//! Keyword queries under uncertain schema matching — the paper's §VII
//! future work ("we would consider how the block tree can facilitate the
//! evaluation of other types of XML queries (e.g., XQuery and keyword
//! query)").
//!
//! A keyword query is a bag of terms; following the standard XML keyword
//! search semantics, its answers are the *smallest lowest common
//! ancestors* (SLCA): document nodes whose subtree contains every keyword
//! while no proper descendant's subtree does.
//!
//! Keywords are interpreted in the *target* vocabulary where possible: a
//! term equal to a target element label is rewritten, per possible
//! mapping, to the mapped source elements' labels (vocabulary terms);
//! terms that match no target label are *value* terms and match document
//! text directly, independent of the mapping. Like PTQ, the result is one
//! SLCA set per relevant mapping, weighted by the mapping's probability —
//! and mappings whose rewrites agree share one evaluation.
//!
//! Evaluation happens in [`crate::engine`]; [`keyword_query`] is the
//! free-function wrapper over a throwaway session, and malformed inputs
//! surface as [`KeywordError`] instead of panicking.

use crate::engine::{eval_keyword, SessionState};
use crate::mapping::{MappingId, PossibleMappings};
use std::fmt;
use uxm_xml::{DocNodeId, Document};

/// One per-mapping keyword answer.
#[derive(Clone, Debug, PartialEq)]
pub struct KeywordAnswer {
    /// The mapping this answer was computed under.
    pub mapping: MappingId,
    /// The probability that the mapping (and hence the answer) is correct.
    pub probability: f64,
    /// SLCA nodes, in document order.
    pub slcas: Vec<DocNodeId>,
}

/// Rejected keyword queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeywordError {
    /// The keyword list was empty — no SLCA is defined.
    Empty,
    /// More keywords than the 64-bit coverage bitmask can track.
    TooMany {
        /// How many keywords were supplied.
        count: usize,
    },
}

impl fmt::Display for KeywordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeywordError::Empty => write!(f, "keyword query needs at least one keyword"),
            KeywordError::TooMany { count } => {
                write!(
                    f,
                    "keyword query has {count} keywords; at most 64 are supported"
                )
            }
        }
    }
}

impl std::error::Error for KeywordError {}

impl KeywordError {
    /// Validates a keyword list against the evaluator's limits.
    pub fn check(keywords: &[&str]) -> Result<(), KeywordError> {
        if keywords.is_empty() {
            return Err(KeywordError::Empty);
        }
        if keywords.len() > 64 {
            return Err(KeywordError::TooMany {
                count: keywords.len(),
            });
        }
        Ok(())
    }
}

/// Evaluates a keyword query over every possible mapping.
///
/// A mapping is *irrelevant* (and skipped) when some vocabulary keyword
/// has no correspondence under it. Value keywords (terms matching no
/// target label) never filter mappings.
///
/// Errors with [`KeywordError::Empty`] on an empty keyword list and
/// [`KeywordError::TooMany`] beyond 64 keywords.
///
/// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run)
/// with [`Query::keyword`](crate::api::Query::keyword).
#[deprecated(note = "build an api::Query::keyword and call QueryEngine::run")]
pub fn keyword_query(
    keywords: &[&str],
    pm: &PossibleMappings,
    doc: &Document,
) -> Result<Vec<KeywordAnswer>, KeywordError> {
    // Validate before paying for session construction.
    KeywordError::check(keywords)?;
    let state = SessionState::build(pm, doc);
    eval_keyword(keywords, pm, doc, &state)
}

#[cfg(test)]
#[allow(deprecated)] // shim coverage: the legacy wrapper stays under test
mod tests {
    use super::*;
    use crate::engine::contains_word;
    use uxm_xml::{parse_document, Schema};

    fn setup() -> (PossibleMappings, Document) {
        let source = Schema::parse_outline("Order(BP(BCN RCN) SP(SCN))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(s("BP"), t("IP")), (s("BCN"), t("ICN"))], 0.5),
                (vec![(s("BP"), t("IP")), (s("RCN"), t("ICN"))], 0.3),
                (vec![(s("SP"), t("IP")), (s("SCN"), t("ICN"))], 0.2),
            ],
        );
        let doc = parse_document(
            "<Order><BP><BCN>Cathy</BCN><RCN>Bob</RCN></BP><SP><SCN>Dave</SCN></SP></Order>",
        )
        .unwrap();
        (pm, doc)
    }

    #[test]
    fn vocabulary_keyword_rewrites_per_mapping() {
        let (pm, doc) = setup();
        // "ICN" is a target label; each mapping sends it elsewhere.
        let answers = keyword_query(&["ICN"], &pm, &doc).unwrap();
        assert_eq!(answers.len(), 3);
        // m0: ICN -> BCN: SLCA is the BCN node itself.
        let bcn = doc.nodes_with_label("BCN")[0];
        assert_eq!(answers[0].slcas, vec![bcn]);
        let scn = doc.nodes_with_label("SCN")[0];
        assert_eq!(answers[2].slcas, vec![scn]);
    }

    #[test]
    fn value_keyword_is_mapping_independent() {
        let (pm, doc) = setup();
        let answers = keyword_query(&["Bob"], &pm, &doc).unwrap();
        assert_eq!(answers.len(), 3, "no filtering by value terms");
        let rcn = doc.nodes_with_label("RCN")[0];
        for a in &answers {
            assert_eq!(a.slcas, vec![rcn]);
        }
    }

    #[test]
    fn mixed_terms_compute_slca() {
        let (pm, doc) = setup();
        // "IP" rewrites to BP (m0, m1) or SP (m2); "Bob" sits under BP.
        let answers = keyword_query(&["IP", "Bob"], &pm, &doc).unwrap();
        assert_eq!(answers.len(), 3);
        let bp = doc.nodes_with_label("BP")[0];
        // Under m0/m1 both keywords are inside BP; the RCN node holds
        // "Bob" but not the IP-rewrite, so the SLCA is BP itself.
        assert_eq!(answers[0].slcas, vec![bp]);
        assert_eq!(answers[1].slcas, vec![bp]);
        // Under m2, IP -> SP but Bob is under BP: the only common subtree
        // is the root.
        assert_eq!(answers[2].slcas, vec![doc.root()]);
    }

    #[test]
    fn slca_prefers_deepest_cover() {
        let (pm, doc) = setup();
        // Both terms match the same node: SLCA is that node, not its
        // ancestors.
        let answers = keyword_query(&["ICN", "Cathy"], &pm, &doc).unwrap();
        let bcn = doc.nodes_with_label("BCN")[0];
        assert_eq!(answers[0].slcas, vec![bcn]);
        // m1 (ICN->RCN): RCN doesn't contain "Cathy" -> SLCA is BP.
        let bp = doc.nodes_with_label("BP")[0];
        assert_eq!(answers[1].slcas, vec![bp]);
    }

    #[test]
    fn missing_keyword_yields_empty_slca() {
        let (pm, doc) = setup();
        let answers = keyword_query(&["zzz-not-present"], &pm, &doc).unwrap();
        assert_eq!(answers.len(), 3);
        assert!(answers.iter().all(|a| a.slcas.is_empty()));
    }

    #[test]
    fn shared_rewrites_share_results() {
        let (pm, doc) = setup();
        // "IP" rewrites identically for m0 and m1 -> identical SLCA sets.
        let answers = keyword_query(&["IP"], &pm, &doc).unwrap();
        assert_eq!(answers[0].slcas, answers[1].slcas);
        assert_ne!(answers[0].slcas, answers[2].slcas);
    }

    #[test]
    fn probabilities_carried_through() {
        let (pm, doc) = setup();
        let answers = keyword_query(&["ICN"], &pm, &doc).unwrap();
        let total: f64 = answers.iter().map(|a| a.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_keyword_list_is_an_error() {
        let (pm, doc) = setup();
        assert_eq!(
            keyword_query(&[], &pm, &doc).unwrap_err(),
            KeywordError::Empty
        );
    }

    #[test]
    fn too_many_keywords_is_an_error() {
        let (pm, doc) = setup();
        let many: Vec<&str> = vec!["ICN"; 65];
        assert_eq!(
            keyword_query(&many, &pm, &doc).unwrap_err(),
            KeywordError::TooMany { count: 65 }
        );
        // 64 keywords is still fine (the bitmask boundary).
        let at_limit: Vec<&str> = vec!["ICN"; 64];
        assert!(keyword_query(&at_limit, &pm, &doc).is_ok());
    }

    #[test]
    fn whole_word_matching() {
        assert!(contains_word("Bob Smith", "bob"));
        assert!(!contains_word("Bobby", "bob"));
        assert!(contains_word("a,bob;c", "Bob"));
    }
}
