//! Multi-engine serving: the [`EngineRegistry`].
//!
//! A [`crate::engine::QueryEngine`] is one session over one
//! `(schema pair, document)`; a service serves *many* such sessions at
//! once. The registry manages named engines behind `Arc`s so any number
//! of threads can query them concurrently (the engine is `Send + Sync`),
//! answers whole request batches in one call — with the `parallel`
//! feature, batch items evaluate on scoped threads — and keeps resident
//! memory under a configurable budget by evicting the least-recently-used
//! engines. Because engines are shared, so are their caches: every
//! client benefits from every other client's warm rewrite caches and
//! compiled-program cache ([`crate::exec`]).
//!
//! The registry speaks the unified query surface of [`crate::api`]: a
//! batch item is an engine name plus a typed [`Query`] ([`BatchQuery`]),
//! every answer is a [`QueryResponse`], every failure a
//! [`UxmError`] — exactly the wire format `uxm batch` files carry (see
//! [`BatchQuery::from_json`]).
//!
//! Engines can also live on disk as snapshots (see
//! [`crate::storage::encode_engine_snapshot`]): point the registry at a
//! snapshot directory and [`EngineRegistry::fetch`] lazily hydrates
//! `name` from `<dir>/<name>.uxm` on first use, so a restarted service
//! warms up from disk instead of re-matching schemas. To serve a
//! registry over the network, see [`crate::server`].
//!
//! # Examples
//!
//! ```
//! use uxm_core::api::Query;
//! use uxm_core::block_tree::BlockTreeConfig;
//! use uxm_core::engine::QueryEngine;
//! use uxm_core::mapping::PossibleMappings;
//! use uxm_core::registry::{BatchQuery, EngineRegistry};
//! use uxm_matching::Matcher;
//! use uxm_twig::TwigPattern;
//! use uxm_xml::{DocGenConfig, Document, Schema};
//!
//! fn engine(src: &str, tgt: &str, seed: u64) -> QueryEngine {
//!     let source = Schema::parse_outline(src).unwrap();
//!     let target = Schema::parse_outline(tgt).unwrap();
//!     let matching = Matcher::context().match_schemas(&source, &target);
//!     let pm = PossibleMappings::top_h(&matching, 8);
//!     let doc = Document::generate(&source, &DocGenConfig::small(), seed);
//!     QueryEngine::build(pm, doc, &BlockTreeConfig::default())
//! }
//!
//! let registry = EngineRegistry::new();
//! registry.insert(
//!     "orders",
//!     engine(
//!         "Order(Buyer(Name) POLine(Quantity UnitPrice))",
//!         "PO(Purchaser(PName) Line(Qty UnitPrice))",
//!         7,
//!     ),
//! );
//! registry.insert(
//!     "invoices",
//!     engine("Invoice(Payer(PayerName) Total)", "Bill(Customer(CName) Total)", 11),
//! );
//!
//! // One batch, many engines; answers come back in request order.
//! let answers = registry.batch(&[
//!     BatchQuery::new("orders", Query::ptq(TwigPattern::parse("//UnitPrice").unwrap())),
//!     BatchQuery::new("orders", Query::topk(TwigPattern::parse("//Line//Qty").unwrap(), 2)),
//!     BatchQuery::new("invoices", Query::ptq(TwigPattern::parse("//Total").unwrap())),
//! ]);
//! assert_eq!(answers.len(), 3);
//! for a in &answers {
//!     let response = a.as_ref().unwrap();
//!     assert!(response.total_probability() > 0.0);
//! }
//! ```

use crate::api::{Query, QueryResponse};
use crate::engine::{par_run, QueryEngine};
use crate::error::UxmError;
use crate::json::Json;
use crate::storage::{
    decode_engine_snapshot, encode_engine_snapshot, encode_engine_snapshot_as, snapshot_version,
};
use crate::sync;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use uxm_twig::TwigPattern;

/// Registry tuning knobs.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Upper bound, in approximate bytes (see
    /// [`QueryEngine::approx_bytes`]), on the resident engine set; `0`
    /// means unlimited. When an insert or hydration pushes the total over
    /// budget, least-recently-used engines other than the newcomer are
    /// evicted until the total fits (the newest engine is always kept, so
    /// one engine larger than the whole budget still serves).
    pub memory_budget: usize,
    /// Hydration admission gate: when at least this many evictions
    /// happened within the last [`RegistryConfig::thrash_window`] LRU
    /// clock ticks, cold [`EngineRegistry::fetch`]es are refused with
    /// [`UxmError::Overloaded`] instead of decoding yet another snapshot
    /// that the budget would immediately evict something for. `0`
    /// disables the gate. Already-resident engines always serve.
    pub thrash_evictions: usize,
    /// Width of the thrash-detection window, in LRU clock ticks (every
    /// touch, insert, or hydration advances the clock by one).
    pub thrash_window: u64,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig {
            memory_budget: 0,
            thrash_evictions: 0,
            thrash_window: 256,
        }
    }
}

/// A point-in-time accounting summary of a registry — the numbers
/// behind the server's `GET /stats` `"registry"` section and the soak
/// harness's drift tracking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryStats {
    /// Number of resident engines.
    pub resident_engines: usize,
    /// Sum of [`QueryEngine::approx_bytes`] over resident engines.
    pub resident_bytes: usize,
    /// Bytes belonging to engines the budget evicted that are still
    /// alive because callers hold `Arc` handles — memory the budget
    /// thinks it freed but the process still pays for. See
    /// [`EngineRegistry::unreclaimed_bytes`].
    pub unreclaimed_bytes: usize,
    /// Total engines evicted by the memory budget so far.
    pub evictions: u64,
    /// Cold hydrations refused by the thrash gate so far.
    pub shed_hydrations: u64,
    /// Total snapshot hydrations performed so far.
    pub hydrations: u64,
    /// Median measured hydration wall time over the most recent
    /// hydrations (a bounded window), in microseconds; `0` before the
    /// first hydration.
    pub hydrate_p50_us: u64,
    /// Maximum measured hydration wall time so far, in microseconds.
    pub hydrate_max_us: u64,
}

impl RegistryStats {
    /// [`RegistryStats::resident_bytes`] plus
    /// [`RegistryStats::unreclaimed_bytes`]: what the engine set
    /// actually costs the process right now, evicted-but-referenced
    /// engines included.
    pub fn footprint_bytes(&self) -> usize {
        self.resident_bytes + self.unreclaimed_bytes
    }
}

/// The registry's old error type, absorbed into the crate-wide
/// [`UxmError`] (variant for variant).
///
/// Use instead: [`UxmError`] (and match its variants directly — they
/// carry the same data).
#[deprecated(note = "use uxm_core::UxmError")]
pub type RegistryError = UxmError;

/// The request shape a registry batch carries: the typed [`Query`] of
/// [`crate::api`].
pub type Request = Query;

/// The answer shape: the uniform [`QueryResponse`] of [`crate::api`].
pub type Response = QueryResponse;

/// One request of a [`EngineRegistry::batch`] call: an engine name plus
/// the typed [`Query`] to ask it.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchQuery {
    /// Which engine serves this request.
    pub engine: String,
    /// The query itself.
    pub query: Query,
}

impl BatchQuery {
    /// Pairs an engine name with a query.
    pub fn new(engine: impl Into<String>, query: Query) -> BatchQuery {
        BatchQuery {
            engine: engine.into(),
            query,
        }
    }

    /// A PTQ request pinned to the block tree (Algorithm 4) — the legacy
    /// `ptq` request kind.
    pub fn ptq(engine: impl Into<String>, q: TwigPattern) -> BatchQuery {
        BatchQuery::new(
            engine,
            Query::ptq(q).with_evaluator(crate::api::EvaluatorHint::BlockTree),
        )
    }

    /// A PTQ request pinned to naive evaluation (Algorithm 3) — the
    /// legacy `basic` request kind.
    pub fn basic(engine: impl Into<String>, q: TwigPattern) -> BatchQuery {
        BatchQuery::new(
            engine,
            Query::ptq(q).with_evaluator(crate::api::EvaluatorHint::Naive),
        )
    }

    /// A top-k PTQ request.
    pub fn topk(engine: impl Into<String>, q: TwigPattern, k: usize) -> BatchQuery {
        BatchQuery::new(engine, Query::topk(q, k))
    }

    /// A keyword (SLCA) request.
    pub fn keyword(engine: impl Into<String>, terms: Vec<String>) -> BatchQuery {
        BatchQuery::new(engine, Query::keyword(terms))
    }

    /// The canonical JSON form: `{"engine":...,"query":{...}}` — one
    /// line of a `uxm batch` file.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("engine".into(), Json::str(&self.engine)),
            ("query".into(), self.query.to_json()),
        ])
    }

    /// [`BatchQuery::to_json`] rendered canonically.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses the canonical JSON form (strict: unknown keys rejected).
    pub fn from_json(v: &Json) -> Result<BatchQuery, UxmError> {
        let members = v
            .as_obj()
            .ok_or_else(|| UxmError::Json("batch request must be an object".into()))?;
        let mut engine: Option<String> = None;
        let mut query: Option<Query> = None;
        for (key, val) in members {
            match key.as_str() {
                "engine" => {
                    engine = Some(
                        val.as_str()
                            .ok_or_else(|| UxmError::Json("engine must be a string".into()))?
                            .to_string(),
                    )
                }
                "query" => query = Some(Query::from_json(val)?),
                other => {
                    return Err(UxmError::Json(format!(
                        "unknown batch request key {other:?}"
                    )))
                }
            }
        }
        Ok(BatchQuery {
            engine: engine
                .ok_or_else(|| UxmError::Json("batch request needs an \"engine\"".into()))?,
            query: query.ok_or_else(|| UxmError::Json("batch request needs a \"query\"".into()))?,
        })
    }

    /// Parses one batch-file line.
    pub fn from_json_str(text: &str) -> Result<BatchQuery, UxmError> {
        BatchQuery::from_json(&Json::parse(text)?)
    }
}

struct Entry {
    engine: Arc<QueryEngine>,
    bytes: usize,
    last_used: AtomicU64,
}

/// Per-engine hydration record (see
/// [`EngineRegistry::hydration_stats`]): what `GET /stats` and
/// `uxm stats` surface per engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineHydration {
    /// Wall time of this engine's most recent hydration, in
    /// microseconds.
    pub last_us: u64,
    /// How many times this engine has been hydrated from disk.
    pub count: u64,
    /// Snapshot format version of the most recently hydrated file.
    pub snapshot_version: u64,
}

/// How many of the most recent hydration timings feed the p50 (a ring
/// buffer — old samples are overwritten deterministically).
const HYDRATION_WINDOW: usize = 4096;

/// Measured hydration telemetry: a bounded ring of recent wall times
/// plus per-engine last-hydration records.
#[derive(Default)]
struct HydrationLog {
    /// Ring of the most recent hydration wall times, µs; the slot for
    /// hydration `i` is `i % HYDRATION_WINDOW`.
    samples: Vec<u64>,
    /// Total hydrations recorded (may exceed the ring length).
    total: u64,
    /// Maximum wall time ever recorded, µs.
    max_us: u64,
    /// Last hydration per engine name.
    engines: HashMap<String, EngineHydration>,
}

impl HydrationLog {
    fn record(&mut self, name: &str, us: u64, version: u64) {
        let slot = (self.total % HYDRATION_WINDOW as u64) as usize;
        if slot < self.samples.len() {
            self.samples[slot] = us;
        } else {
            self.samples.push(us);
        }
        self.total += 1;
        self.max_us = self.max_us.max(us);
        let entry = self
            .engines
            .entry(name.to_string())
            .or_insert(EngineHydration {
                last_us: 0,
                count: 0,
                snapshot_version: 0,
            });
        entry.last_us = us;
        entry.count += 1;
        entry.snapshot_version = version;
    }

    /// Median of the retained window; `0` with no samples.
    fn p50_us(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut window = self.samples.clone();
        window.sort_unstable();
        window[window.len() / 2]
    }
}

/// An engine the budget evicted while callers still held `Arc` handles:
/// its bytes left the budget's ledger but not the process. The `Weak`
/// lets accounting notice when the last handle finally drops.
struct Zombie {
    bytes: usize,
    engine: Weak<QueryEngine>,
}

/// A concurrent collection of named [`QueryEngine`]s with LRU eviction
/// under a memory budget and lazy hydration from snapshot files.
///
/// All methods take `&self`; the registry is `Send + Sync` and meant to
/// be shared (e.g. in an `Arc`) across serving threads. See the [module
/// docs](self) for a worked example.
pub struct EngineRegistry {
    config: RegistryConfig,
    snapshot_dir: Option<PathBuf>,
    engines: RwLock<HashMap<String, Entry>>,
    /// Logical LRU clock: bumped on every touch, never wraps in practice.
    clock: AtomicU64,
    evictions: AtomicU64,
    /// Clock stamps of recent evictions, oldest first — the thrash
    /// gate's evidence. Bounded by pruning against `thrash_window`.
    recent_evictions: Mutex<VecDeque<u64>>,
    /// Evicted-but-still-referenced engines (see [`Zombie`]).
    zombies: Mutex<Vec<Zombie>>,
    shed_hydrations: AtomicU64,
    /// Measured hydration wall times (see [`HydrationLog`]).
    hydration_log: Mutex<HydrationLog>,
}

impl Default for EngineRegistry {
    fn default() -> EngineRegistry {
        EngineRegistry::new()
    }
}

impl EngineRegistry {
    /// An empty registry with no memory budget and no snapshot directory.
    pub fn new() -> EngineRegistry {
        EngineRegistry::with_config(RegistryConfig::default())
    }

    /// An empty registry with the given configuration.
    pub fn with_config(config: RegistryConfig) -> EngineRegistry {
        EngineRegistry {
            config,
            snapshot_dir: None,
            engines: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            recent_evictions: Mutex::new(VecDeque::new()),
            zombies: Mutex::new(Vec::new()),
            shed_hydrations: AtomicU64::new(0),
            hydration_log: Mutex::new(HydrationLog::default()),
        }
    }

    /// Sets the directory used for snapshot persistence and lazy
    /// hydration (`<dir>/<name>.uxm`).
    pub fn snapshot_dir(mut self, dir: impl Into<PathBuf>) -> EngineRegistry {
        self.snapshot_dir = Some(dir.into());
        self
    }

    fn touch(&self, entry: &Entry) {
        entry.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
    }

    /// Registers (or replaces) `name`, returning the shared handle.
    /// May evict colder engines to honor the memory budget; the engine
    /// just inserted is never the victim.
    pub fn insert(&self, name: impl Into<String>, engine: QueryEngine) -> Arc<QueryEngine> {
        let name = name.into();
        let engine = Arc::new(engine);
        let entry = Entry {
            engine: Arc::clone(&engine),
            bytes: engine.approx_bytes(),
            last_used: AtomicU64::new(self.clock.fetch_add(1, Ordering::Relaxed) + 1),
        };
        let mut map = sync::write(&self.engines);
        map.insert(name.clone(), entry);
        self.evict_over_budget(&mut map, &name);
        engine
    }

    /// The resident engine under `name`, if any; touches its LRU stamp.
    /// Does **not** read from disk — see [`EngineRegistry::fetch`].
    pub fn get(&self, name: &str) -> Option<Arc<QueryEngine>> {
        let map = sync::read(&self.engines);
        map.get(name).map(|entry| {
            self.touch(entry);
            Arc::clone(&entry.engine)
        })
    }

    /// The engine under `name`, hydrating `<dir>/<name>.uxm` when it is
    /// not resident. Two threads racing on the same cold name may both
    /// decode the snapshot; the engines are identical and one wins the
    /// map slot — harmless beyond the duplicated work.
    /// Cold fetches additionally pass the hydration admission gate:
    /// when [`RegistryConfig::thrash_evictions`] is set and the budget
    /// has evicted that many engines within the last
    /// [`RegistryConfig::thrash_window`] clock ticks, the working set
    /// no longer fits and decoding another snapshot would only thrash —
    /// the fetch is refused with [`UxmError::Overloaded`] instead.
    pub fn fetch(&self, name: &str) -> Result<Arc<QueryEngine>, UxmError> {
        if let Some(engine) = self.get(name) {
            return Ok(engine);
        }
        self.admit_hydration()?;
        let path = match self.snapshot_path(name) {
            // Nowhere to hydrate from: the name is simply unknown.
            Err(UxmError::NoSnapshotDir) => return Err(UxmError::UnknownEngine(name.to_string())),
            other => other?,
        };
        let start = std::time::Instant::now();
        let bytes = read_snapshot(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                UxmError::UnknownEngine(name.to_string())
            } else {
                UxmError::io(path.display(), e)
            }
        })?;
        let version = snapshot_version(&bytes).unwrap_or(0);
        let engine = decode_engine_snapshot(&bytes)?;
        drop(bytes);
        let us = start.elapsed().as_micros() as u64;
        sync::lock(&self.hydration_log).record(name, us, version);
        Ok(self.insert(name, engine))
    }

    /// Writes `name`'s snapshot to `<dir>/<name>.uxm` in the current
    /// format version, creating the directory if needed. Returns the
    /// file path.
    pub fn save(&self, name: &str) -> Result<PathBuf, UxmError> {
        let engine = self
            .get(name)
            .ok_or_else(|| UxmError::UnknownEngine(name.to_string()))?;
        self.write_snapshot(name, &encode_engine_snapshot(&engine))
    }

    /// Writes `name`'s snapshot in an explicitly chosen format version
    /// (1, 2, or 3) — the CLI's `registry save --snapshot-version` path.
    pub fn save_as(&self, name: &str, version: u64) -> Result<PathBuf, UxmError> {
        let engine = self
            .get(name)
            .ok_or_else(|| UxmError::UnknownEngine(name.to_string()))?;
        let bytes = encode_engine_snapshot_as(&engine, version).ok_or_else(|| {
            UxmError::Input(format!(
                "unsupported snapshot version {version} (use 1, 2, or 3)"
            ))
        })?;
        self.write_snapshot(name, &bytes)
    }

    fn write_snapshot(&self, name: &str, bytes: &[u8]) -> Result<PathBuf, UxmError> {
        let path = self.snapshot_path(name)?;
        let dir = path.parent().expect("snapshot path has a directory");
        std::fs::create_dir_all(dir).map_err(|e| UxmError::io(dir.display(), e))?;
        std::fs::write(&path, bytes).map_err(|e| UxmError::io(path.display(), e))?;
        Ok(path)
    }

    /// Snapshots every resident engine; returns the written paths in
    /// name order. Engines that cannot be snapshotted by name are
    /// skipped, not errors: one evicted by another thread mid-call
    /// (`UnknownEngine`), or one registered under a name unusable as a
    /// file stem (`InvalidName` — `insert` accepts any name).
    pub fn save_all(&self) -> Result<Vec<PathBuf>, UxmError> {
        let mut out = Vec::new();
        for name in self.names() {
            match self.save(&name) {
                Ok(path) => out.push(path),
                Err(UxmError::UnknownEngine(_) | UxmError::InvalidName(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Drops the resident engine under `name` (its snapshot, if any,
    /// stays on disk). Returns whether it was resident. Outstanding
    /// `Arc` handles keep serving until dropped.
    pub fn remove(&self, name: &str) -> bool {
        sync::write(&self.engines).remove(name).is_some()
    }

    /// Resident engine names, sorted.
    pub fn names(&self) -> Vec<String> {
        let map = sync::read(&self.engines);
        let mut names: Vec<String> = map.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of resident engines.
    pub fn len(&self) -> usize {
        sync::read(&self.engines).len()
    }

    /// True when no engine is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of [`QueryEngine::approx_bytes`] over resident engines.
    pub fn resident_bytes(&self) -> usize {
        let map = sync::read(&self.engines);
        map.values().map(|e| e.bytes).sum()
    }

    /// Resident engines with their approximate sizes
    /// ([`QueryEngine::approx_bytes`]), name-sorted — the listing
    /// behind the server's `GET /engines`.
    pub fn resident(&self) -> Vec<(String, usize)> {
        let map = sync::read(&self.engines);
        let mut entries: Vec<(String, usize)> = map
            .iter()
            .map(|(name, entry)| (name.clone(), entry.bytes))
            .collect();
        entries.sort();
        entries
    }

    /// Stems of the `*.uxm` snapshot files in the snapshot directory,
    /// sorted; empty when no directory is configured or it cannot be
    /// read (a service listing hydratable names must not fail on a
    /// missing directory).
    pub fn snapshot_names(&self) -> Vec<String> {
        let Some(dir) = self.snapshot_dir.as_deref() else {
            return Vec::new();
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "uxm"))
            .filter_map(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        names
    }

    /// How many engines the memory budget has evicted so far.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// How many cold hydrations the thrash gate has refused so far.
    pub fn shed_hydration_count(&self) -> u64 {
        self.shed_hydrations.load(Ordering::Relaxed)
    }

    /// Bytes held by engines the budget evicted whose `Arc` handles are
    /// still alive somewhere — memory [`EngineRegistry::resident_bytes`]
    /// no longer counts but the process has not actually reclaimed.
    /// Engines whose last handle has since dropped are pruned here.
    pub fn unreclaimed_bytes(&self) -> usize {
        let mut zombies = sync::lock(&self.zombies);
        zombies.retain(|z| z.engine.strong_count() > 0);
        zombies.iter().map(|z| z.bytes).sum()
    }

    /// A point-in-time accounting summary (see [`RegistryStats`]).
    pub fn stats(&self) -> RegistryStats {
        let (hydrations, hydrate_p50_us, hydrate_max_us) = {
            let log = sync::lock(&self.hydration_log);
            (log.total, log.p50_us(), log.max_us)
        };
        RegistryStats {
            resident_engines: self.len(),
            resident_bytes: self.resident_bytes(),
            unreclaimed_bytes: self.unreclaimed_bytes(),
            evictions: self.eviction_count(),
            shed_hydrations: self.shed_hydration_count(),
            hydrations,
            hydrate_p50_us,
            hydrate_max_us,
        }
    }

    /// Per-engine hydration records, name-sorted: the most recent
    /// measured hydration wall time, lifetime hydration count, and the
    /// snapshot format version last read for each engine that has ever
    /// hydrated from disk.
    pub fn hydration_stats(&self) -> Vec<(String, EngineHydration)> {
        let log = sync::lock(&self.hydration_log);
        let mut out: Vec<(String, EngineHydration)> = log
            .engines
            .iter()
            .map(|(name, h)| (name.clone(), h.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The configured memory budget in bytes (`0` = unlimited).
    pub fn memory_budget(&self) -> usize {
        self.config.memory_budget
    }

    /// The hydration admission gate (see [`EngineRegistry::fetch`]).
    fn admit_hydration(&self) -> Result<(), UxmError> {
        let threshold = self.config.thrash_evictions;
        if threshold == 0 || self.config.memory_budget == 0 {
            return Ok(());
        }
        let now = self.clock.load(Ordering::Relaxed);
        let horizon = now.saturating_sub(self.config.thrash_window);
        let mut recent = sync::lock(&self.recent_evictions);
        while recent.front().is_some_and(|&stamp| stamp < horizon) {
            recent.pop_front();
        }
        if recent.len() >= threshold {
            let seen = recent.len();
            drop(recent);
            self.shed_hydrations.fetch_add(1, Ordering::Relaxed);
            return Err(UxmError::Overloaded {
                reason: format!(
                    "hydration gate: {seen} evictions in the last {} operations \
                     (working set exceeds the memory budget)",
                    self.config.thrash_window
                ),
                retry_after_ms: 500,
            });
        }
        Ok(())
    }

    /// Answers a whole batch through
    /// [`QueryEngine::run`](crate::engine::QueryEngine::run); answers
    /// come back in request order. Each distinct engine is resolved once
    /// (hydrating cold ones from disk).
    ///
    /// With no memory budget, engines hydrate and requests evaluate with
    /// full fan-out (scoped threads under the `parallel` feature;
    /// per-request evaluation also parallelizes internally — the brief
    /// oversubscription is benign since total work is fixed). With a
    /// budget configured, engines are served **one group at a time** and
    /// each engine's handle is dropped before the next hydrates, so
    /// resident memory stays bounded by the budget plus the engine
    /// currently being served — a batch naming more engines than the
    /// budget fits cannot blow past it.
    pub fn batch(&self, queries: &[BatchQuery]) -> Vec<Result<QueryResponse, UxmError>> {
        // One group of request indices per distinct engine, in
        // first-appearance order.
        let mut groups: Vec<(&str, Vec<usize>)> = Vec::new();
        let mut group_of: HashMap<&str, usize> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            match group_of.get(q.engine.as_str()) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    group_of.insert(q.engine.as_str(), groups.len());
                    groups.push((q.engine.as_str(), vec![i]));
                }
            }
        }

        if self.config.memory_budget == 0 {
            // Unlimited: hydrate engines and evaluate ALL requests with
            // full fan-out, across engines as well as within them.
            let engines = par_run(groups.len(), |g| self.fetch(groups[g].0));
            return par_run(queries.len(), |i| {
                match &engines[group_of[queries[i].engine.as_str()]] {
                    Err(e) => Err(e.clone()),
                    Ok(engine) => engine.run(&queries[i].query),
                }
            });
        }

        // Budgeted: one engine group at a time; the handle drops before
        // the next group hydrates, so only the registry's (budgeted)
        // residency carries engines between groups.
        let mut out: Vec<Option<Result<QueryResponse, UxmError>>> = vec![None; queries.len()];
        for (name, idxs) in &groups {
            let engine = self.fetch(name);
            let answers = par_run(idxs.len(), |k| match &engine {
                Err(e) => Err(e.clone()),
                Ok(engine) => engine.run(&queries[idxs[k]].query),
            });
            for (&i, a) in idxs.iter().zip(answers) {
                out[i] = Some(a);
            }
        }
        out.into_iter()
            .map(|a| a.expect("every request answered"))
            .collect()
    }

    /// `<dir>/<name>.uxm`, rejecting names that would escape the
    /// directory.
    fn snapshot_path(&self, name: &str) -> Result<PathBuf, UxmError> {
        // ':' also guards Windows drive-prefixed names ("C:evil"), whose
        // join would replace the base directory outright.
        if name.is_empty() || name.contains(['/', '\\', ':']) || name.contains("..") {
            return Err(UxmError::InvalidName(name.to_string()));
        }
        let dir: &Path = self
            .snapshot_dir
            .as_deref()
            .ok_or(UxmError::NoSnapshotDir)?;
        Ok(dir.join(format!("{name}.uxm")))
    }

    fn evict_over_budget(&self, map: &mut HashMap<String, Entry>, keep: &str) {
        let budget = self.config.memory_budget;
        if budget == 0 {
            return;
        }
        let mut total: usize = map.values().map(|e| e.bytes).sum();
        while map.len() > 1 && total > budget {
            // Oldest stamp wins; ties break by name for determinism.
            let victim = map
                .iter()
                .filter(|(name, _)| name.as_str() != keep)
                .min_by(|(an, a), (bn, b)| {
                    let (sa, sb) = (
                        a.last_used.load(Ordering::Relaxed),
                        b.last_used.load(Ordering::Relaxed),
                    );
                    sa.cmp(&sb).then_with(|| an.as_str().cmp(bn.as_str()))
                })
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    if let Some(entry) = map.remove(&name) {
                        total -= entry.bytes;
                        // Removal drops the map's Arc below; any count
                        // beyond it is an outstanding caller handle, so
                        // the bytes just subtracted are not actually
                        // free yet — record the drift.
                        if Arc::strong_count(&entry.engine) > 1 {
                            sync::lock(&self.zombies).push(Zombie {
                                bytes: entry.bytes,
                                engine: Arc::downgrade(&entry.engine),
                            });
                        }
                    }
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    sync::lock(&self.recent_evictions)
                        .push_back(self.clock.load(Ordering::Relaxed));
                }
                None => return,
            }
        }
    }
}

impl fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("engines", &self.names())
            .field("resident_bytes", &self.resident_bytes())
            .field("memory_budget", &self.config.memory_budget)
            .field("snapshot_dir", &self.snapshot_dir)
            .finish()
    }
}

/// Reads a snapshot file for hydration. With the `mmap` feature on
/// Linux the file is memory-mapped — v3 sections are page-aligned, so
/// the decoder's bulk copies run straight out of the page cache instead
/// of a freshly filled heap buffer.
#[cfg(all(
    feature = "mmap",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn read_snapshot(path: &Path) -> std::io::Result<crate::storage::mmap::Mmap> {
    let file = std::fs::File::open(path)?;
    crate::storage::mmap::Mmap::map(&file)
}

/// Fallback snapshot read: one buffered `fs::read`.
#[cfg(not(all(
    feature = "mmap",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn read_snapshot(path: &Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use crate::keyword::KeywordError;
    use crate::mapping::PossibleMappings;
    use uxm_matching::Matcher;
    use uxm_xml::{DocGenConfig, Document, Schema};

    fn engine(seed: u64) -> QueryEngine {
        let source = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) POLine*(LineNo Quantity UnitPrice))",
        )
        .unwrap();
        let target =
            Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))")
                .unwrap();
        let matching = Matcher::context().match_schemas(&source, &target);
        let pm = PossibleMappings::top_h(&matching, 12);
        let doc = Document::generate(&source, &DocGenConfig::small(), seed);
        QueryEngine::build(pm, doc, &BlockTreeConfig::default())
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uxm-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_get_remove() {
        let registry = EngineRegistry::new();
        assert!(registry.is_empty());
        registry.insert("a", engine(1));
        registry.insert("b", engine(2));
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(registry.get("a").is_some());
        assert!(registry.get("missing").is_none());
        assert!(registry.remove("a"));
        assert!(!registry.remove("a"));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn batch_matches_direct_runs() {
        let registry = EngineRegistry::new();
        let handle = registry.insert("po", engine(3));
        let q = uxm_twig::TwigPattern::parse("PO//Qty").unwrap();
        let requests = [
            BatchQuery::ptq("po", q.clone()),
            BatchQuery::basic("po", q.clone()),
            BatchQuery::topk("po", q.clone(), 3),
            BatchQuery::keyword("po", vec!["Qty".to_string()]),
            BatchQuery::ptq("nope", q.clone()),
        ];
        let answers = registry.batch(&requests);
        for (req, answer) in requests.iter().take(4).zip(&answers) {
            let direct = handle.run(&req.query).unwrap();
            assert_eq!(
                answer.as_ref().unwrap().answers,
                direct.answers,
                "batch {} differs from direct run",
                req.query
            );
        }
        assert_eq!(
            answers[4].clone().unwrap_err(),
            UxmError::UnknownEngine("nope".to_string())
        );
    }

    #[test]
    fn keyword_errors_surface_per_request() {
        let registry = EngineRegistry::new();
        registry.insert("po", engine(4));
        let answers = registry.batch(&[BatchQuery::keyword("po", vec![])]);
        assert_eq!(
            answers[0].clone().unwrap_err(),
            UxmError::Keyword(KeywordError::Empty)
        );
    }

    #[test]
    fn batch_query_json_roundtrip_is_byte_stable() {
        let q = uxm_twig::TwigPattern::parse("PO/Line[./No]//Qty").unwrap();
        for request in [
            BatchQuery::ptq("po", q.clone()),
            BatchQuery::basic("orders", q.clone()),
            BatchQuery::topk("po", q.clone(), 7),
            BatchQuery::keyword("po", vec!["Qty".into(), "order".into()]),
        ] {
            let once = request.to_json_string();
            let parsed = BatchQuery::from_json_str(&once).unwrap();
            assert_eq!(parsed, request);
            assert_eq!(parsed.to_json_string(), once, "byte-stable: {once}");
        }
        assert!(BatchQuery::from_json_str("{\"engine\":\"po\"}").is_err());
        assert!(BatchQuery::from_json_str("{\"query\":{},\"engine\":\"po\",\"x\":1}").is_err());
    }

    #[test]
    fn memory_budget_evicts_lru() {
        let one = engine(5).approx_bytes();
        // Room for two engines, not three.
        let registry = EngineRegistry::with_config(RegistryConfig {
            memory_budget: one * 2 + one / 2,
            ..RegistryConfig::default()
        });
        registry.insert("a", engine(5));
        registry.insert("b", engine(6));
        // Touch "a" so "b" is the LRU when "c" arrives.
        assert!(registry.get("a").is_some());
        registry.insert("c", engine(7));
        assert_eq!(registry.names(), vec!["a".to_string(), "c".to_string()]);
        assert_eq!(registry.eviction_count(), 1);
        assert!(registry.resident_bytes() <= one * 2 + one / 2);
    }

    #[test]
    fn eviction_with_live_handle_counts_as_unreclaimed() {
        let one = engine(5).approx_bytes();
        let registry = EngineRegistry::with_config(RegistryConfig {
            memory_budget: one + one / 2,
            ..RegistryConfig::default()
        });
        // Hold a handle to "a" across its eviction.
        let held = registry.insert("a", engine(5));
        registry.insert("b", engine(6));
        assert_eq!(registry.names(), vec!["b".to_string()]);
        assert_eq!(registry.eviction_count(), 1);
        // The budget's ledger dropped "a", but the process still pays
        // for it as long as `held` lives.
        assert_eq!(registry.unreclaimed_bytes(), one);
        let stats = registry.stats();
        assert_eq!(stats.footprint_bytes(), stats.resident_bytes + one);
        drop(held);
        assert_eq!(registry.unreclaimed_bytes(), 0, "last handle dropped");
        assert_eq!(
            registry.stats().footprint_bytes(),
            registry.resident_bytes()
        );
    }

    #[test]
    fn thrash_gate_refuses_cold_hydrations() {
        let dir = scratch_dir("thrash");
        // Build snapshots for three engines the budget can hold one of.
        let builder = EngineRegistry::new().snapshot_dir(&dir);
        let one = engine(20).approx_bytes();
        for (name, seed) in [("a", 20), ("b", 21), ("c", 22)] {
            builder.insert(name, engine(seed));
            builder.save(name).unwrap();
        }
        drop(builder);

        let registry = EngineRegistry::with_config(RegistryConfig {
            memory_budget: one + one / 2,
            thrash_evictions: 2,
            thrash_window: 1_000,
        })
        .snapshot_dir(&dir);
        // Cycling cold names evicts on every hydration; after two
        // evictions land in the window, the gate closes.
        registry.fetch("a").unwrap();
        registry.fetch("b").unwrap();
        registry.fetch("c").unwrap();
        let err = registry.fetch("a").unwrap_err();
        assert_eq!(err.kind(), "overloaded");
        assert!(registry.shed_hydration_count() >= 1);
        // Resident engines still serve through the gate.
        assert!(registry.fetch("c").is_ok(), "warm fetch is never gated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_engine_survives_alone() {
        let registry = EngineRegistry::with_config(RegistryConfig {
            memory_budget: 1,
            ..RegistryConfig::default()
        });
        registry.insert("big", engine(8));
        assert_eq!(registry.len(), 1, "the newest engine is never evicted");
        registry.insert("bigger", engine(9));
        assert_eq!(registry.names(), vec!["bigger".to_string()]);
    }

    #[test]
    fn snapshot_save_and_lazy_hydration() {
        let dir = scratch_dir("hydrate");
        let saved = EngineRegistry::new().snapshot_dir(&dir);
        let original = saved.insert("po", engine(10));
        let path = saved.save("po").unwrap();
        assert!(path.ends_with("po.uxm"));

        // A fresh registry (a restarted process) hydrates lazily.
        let restarted = EngineRegistry::new().snapshot_dir(&dir);
        assert!(restarted.get("po").is_none(), "not resident yet");
        let q = uxm_twig::TwigPattern::parse("PO//Amount").unwrap();
        let request = BatchQuery::ptq("po", q.clone());
        let answers = restarted.batch(std::slice::from_ref(&request));
        assert_eq!(
            answers[0].as_ref().unwrap().answers,
            original.run(&request.query).unwrap().answers
        );
        assert_eq!(restarted.len(), 1, "hydrated engine is now resident");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_requires_dir_and_valid_names() {
        let registry = EngineRegistry::new();
        registry.insert("po", engine(11));
        assert_eq!(registry.save("po"), Err(UxmError::NoSnapshotDir));
        let with_dir = EngineRegistry::new().snapshot_dir(scratch_dir("names"));
        with_dir.insert("../evil", engine(12));
        assert_eq!(
            with_dir.save("../evil"),
            Err(UxmError::InvalidName("../evil".to_string()))
        );
        assert_eq!(
            with_dir.fetch("a/b").unwrap_err(),
            UxmError::InvalidName("a/b".to_string())
        );
    }

    #[test]
    fn corrupt_snapshot_reports_decode_error() {
        let dir = scratch_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.uxm"), b"UXMSgarbage").unwrap();
        let registry = EngineRegistry::new().snapshot_dir(&dir);
        assert!(matches!(
            registry.fetch("bad").unwrap_err(),
            UxmError::Decode(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
