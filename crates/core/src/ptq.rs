//! The probabilistic twig query and its basic evaluation (Definition 4,
//! Algorithm 3).
//!
//! A PTQ returns, per relevant mapping `m_i`, the match set `R_i` of the
//! rewritten query on the source document together with `p_i` — the
//! probability that `R_i` is the correct answer.

use crate::engine::{eval_basic_over, SessionState};
use crate::mapping::{MappingId, PossibleMappings};
use uxm_twig::{TwigMatch, TwigPattern};
use uxm_xml::Document;

/// One `(R_i, pr(R_i))` tuple of a PTQ result.
#[derive(Clone, Debug, PartialEq)]
pub struct PtqAnswer {
    /// The mapping this answer was computed under.
    pub mapping: MappingId,
    /// `p_i` — the probability the mapping (and hence this answer) is
    /// correct.
    pub probability: f64,
    /// The matches of the rewritten query on the document (may be empty:
    /// the mapping is relevant but the document has no occurrence).
    pub matches: Vec<TwigMatch>,
}

/// A full PTQ result: one answer per relevant mapping, in mapping order.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PtqResult {
    /// The per-mapping answers.
    pub answers: Vec<PtqAnswer>,
}

impl PtqResult {
    /// Iterate over answers.
    pub fn iter(&self) -> std::slice::Iter<'_, PtqAnswer> {
        self.answers.iter()
    }

    /// Number of answers (relevant mappings).
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when no mapping was relevant.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// Total probability mass of the answers.
    pub fn total_probability(&self) -> f64 {
        self.answers.iter().map(|a| a.probability).sum()
    }

    /// Groups identical match sets, summing their probabilities — the
    /// "distinct answers" view of the paper's introduction example
    /// (`{("Cathy", .3), ("Bob", .3), ("Alice", .2)}`). Sorted by
    /// probability descending.
    pub fn aggregate(&self) -> Vec<(Vec<TwigMatch>, f64)> {
        let mut groups: Vec<(Vec<TwigMatch>, f64)> = Vec::new();
        for a in &self.answers {
            match groups.iter_mut().find(|(m, _)| *m == a.matches) {
                Some((_, p)) => *p += a.probability,
                None => groups.push((a.matches.clone(), a.probability)),
            }
        }
        groups.sort_by(|a, b| b.1.total_cmp(&a.1));
        groups
    }

    /// Sorts answers by mapping id (the canonical order for comparisons).
    pub fn normalize(&mut self) {
        self.answers.sort_by_key(|a| a.mapping);
    }
}

/// Algorithm 3 (`query_basic`): filter irrelevant mappings, then rewrite
/// and evaluate the query independently per mapping.
///
/// Deprecated shim over [`crate::engine`] with a throwaway session;
/// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run)
/// with [`Query::ptq`](crate::api::Query::ptq) pinned to
/// [`EvaluatorHint::Naive`](crate::api::EvaluatorHint::Naive).
#[deprecated(note = "build an api::Query (evaluator hint Naive) and call QueryEngine::run")]
pub fn ptq_basic(q: &TwigPattern, pm: &PossibleMappings, doc: &Document) -> PtqResult {
    let state = SessionState::build(pm, doc);
    let ids = state.relevant(q, &q.to_string());
    eval_basic_over(q, pm, doc, &state, &ids)
}

/// Algorithm 3 restricted to a pre-filtered mapping subset (shared by the
/// top-k evaluator).
///
/// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run)
/// with [`Query::topk`](crate::api::Query::topk) (the one caller that
/// needed a pre-filtered subset).
#[deprecated(note = "build an api::Query and call QueryEngine::run")]
pub fn ptq_basic_over(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    ids: &[MappingId],
) -> PtqResult {
    let state = SessionState::build(pm, doc);
    eval_basic_over(q, pm, doc, &state, ids)
}

#[cfg(test)]
#[allow(deprecated)] // shim coverage: the legacy wrappers stay under test
mod tests {
    use super::*;
    use uxm_xml::{parse_document, Schema, SchemaNodeId};

    /// The paper's introduction example: query //IP//ICN over Fig. 2's
    /// document with three mappings for ICN.
    fn intro_example() -> (PossibleMappings, Document) {
        let source =
            Schema::parse_outline("Order(BP(BOC(BCN) ROC(RCN) OOC(OCN)) SP(SCN))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        // probabilities .3, .3, .2 (plus .2 of an irrelevant mapping)
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(s("BP"), t("IP")), (s("BCN"), t("ICN"))], 0.3),
                (vec![(s("BP"), t("IP")), (s("RCN"), t("ICN"))], 0.3),
                (vec![(s("BP"), t("IP")), (s("OCN"), t("ICN"))], 0.2),
                (vec![(s("Order"), t("ORDER"))], 0.2),
            ],
        );
        let doc = parse_document(
            "<Order><BP><BOC><BCN>Cathy</BCN></BOC><ROC><RCN>Bob</RCN></ROC>\
             <OOC><OCN>Alice</OCN></OOC></BP><SP><SCN>Dave</SCN></SP></Order>",
        )
        .unwrap();
        (pm, doc)
    }

    #[test]
    fn intro_example_answers() {
        let (pm, doc) = intro_example();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = ptq_basic(&q, &pm, &doc);
        assert_eq!(res.len(), 3, "irrelevant mapping filtered");
        // Answers carry the mapping probabilities and find one name each.
        let names: Vec<(&str, f64)> = res
            .iter()
            .map(|a| {
                assert_eq!(a.matches.len(), 1);
                let icn_node = a.matches[0].nodes[1];
                (doc.text(icn_node).unwrap(), a.probability)
            })
            .collect();
        assert_eq!(names[0].0, "Cathy");
        assert_eq!(names[1].0, "Bob");
        assert_eq!(names[2].0, "Alice");
        assert!((names[0].1 - 0.3).abs() < 1e-9);
        assert!((names[2].1 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn aggregate_groups_identical_answers() {
        let (pm, doc) = intro_example();
        let q = TwigPattern::parse("//IP").unwrap();
        let res = ptq_basic(&q, &pm, &doc);
        // All three relevant mappings rewrite IP to BP: identical answers.
        let agg = res.aggregate();
        assert_eq!(agg.len(), 1);
        assert!((agg[0].1 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_match_answers_are_kept() {
        let (pm, _) = intro_example();
        let doc = parse_document("<Order><Other/></Order>").unwrap();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = ptq_basic(&q, &pm, &doc);
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(|a| a.matches.is_empty()));
    }

    #[test]
    fn total_probability_bounded_by_one() {
        let (pm, doc) = intro_example();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = ptq_basic(&q, &pm, &doc);
        let p = res.total_probability();
        assert!(p > 0.0 && p <= 1.0 + 1e-9);
    }

    #[test]
    fn unknown_query_label_yields_empty_result() {
        let (pm, doc) = intro_example();
        let q = TwigPattern::parse("//IP//MISSING").unwrap();
        assert!(ptq_basic(&q, &pm, &doc).is_empty());
    }

    #[test]
    fn text_predicate_respected_through_rewrite() {
        let (pm, doc) = intro_example();
        let mut q = TwigPattern::parse("//IP//ICN").unwrap();
        q.set_text_eq(uxm_twig::PatternNodeId(1), "Bob");
        let res = ptq_basic(&q, &pm, &doc);
        // only the RCN mapping finds "Bob"
        let non_empty: Vec<_> = res.iter().filter(|a| !a.matches.is_empty()).collect();
        assert_eq!(non_empty.len(), 1);
        assert!((non_empty[0].probability - 0.3).abs() < 1e-9);
    }

    #[test]
    fn schema_node_ids_are_stable_in_pairs() {
        // guard: from_pairs + source_for_target interact correctly
        let (pm, _) = intro_example();
        let t_icn = pm.target.nodes_with_label("ICN")[0];
        let m0 = pm.mapping(MappingId(0));
        assert_eq!(
            m0.source_for_target(t_icn),
            Some(pm.source.nodes_with_label("BCN")[0] as SchemaNodeId)
        );
    }
}
